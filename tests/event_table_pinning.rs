//! Pins the [`EventTable`] index assignment across every consumer.
//!
//! The table is the single interning point shared by the verify
//! engine's compiled CSR automata, the simulation engine's owner
//! ordering, and the runtime's wire codec. Its contract: indices are
//! assigned by ascending event *name*, never by interner id, so two
//! processes (a gateway and a remote load generator, say) built from
//! the same specification agree on the wire encoding of every event.
//! These tests fail if any consumer drifts off that assignment.

use protoquot_core::solve;
use protoquot_protocols::{colocated_configuration, exactly_once};
use protoquot_runtime::{Frame, WireCodec};
use protoquot_sim::{Action, ExternalPolicy, Runner, System};
use protoquot_spec::{compile_composite, Alphabet, EventTable, Spec};

/// Indices depend only on names: the same name set yields the same
/// table regardless of the order events were inserted (and hence of
/// interner history).
#[test]
fn indices_are_name_sorted_and_insertion_order_free() {
    let forward = Alphabet::from_names(["send", "ack", "deliver", "nak"]);
    let backward = Alphabet::from_names(["nak", "deliver", "ack", "send"]);
    let a = EventTable::new(&forward);
    let b = EventTable::new(&backward);

    let names: Vec<String> = a.events.iter().map(|e| e.name()).collect();
    assert_eq!(names, ["ack", "deliver", "nak", "send"]);
    assert_eq!(a.events, b.events, "insertion order leaked into the table");
    for (i, &e) in a.events.iter().enumerate() {
        assert_eq!(a.idx(e), i as u32);
        assert_eq!(b.idx(e), i as u32);
        assert_eq!(a.event(i as u32), Some(e));
    }
}

/// Bitset rows round-trip through the pinned indices.
#[test]
fn alphabet_bitsets_round_trip() {
    let tbl = EventTable::new(&Alphabet::from_names(["send", "ack", "deliver"]));
    let subset = Alphabet::from_names(["deliver", "send"]);
    let bits = tbl.alphabet_bits(&subset);
    assert_eq!(tbl.to_alphabet(&bits), subset);
    assert_eq!(tbl.alphabet_bits(&tbl.to_alphabet(&bits)), bits);
}

fn derived_system() -> (Spec, Spec, Spec) {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("builtin configuration must solve");
    (cfg.b, q.converter, service)
}

/// The wire codec and the compiled verify engine assign the same index
/// to every service event: a frame index produced by the codec is
/// exactly the `ext_ev` index the compiled `B ‖ C` product steps on.
#[test]
fn codec_and_verify_engine_share_the_mapping() {
    let (b, converter, service) = derived_system();
    let tbl = EventTable::new(service.alphabet());
    let codec = WireCodec::new(service.alphabet()).expect("service alphabet fits the wire");

    for (i, &e) in tbl.events.iter().enumerate() {
        let frame = codec
            .event_frame(7, e)
            .expect("every service event is encodable");
        match frame {
            Frame::Event { session, event } => {
                assert_eq!(session, 7);
                assert_eq!(event, i as u16, "codec index for {} drifted", e.name());
            }
            other => panic!("expected an event frame, got {other:?}"),
        }
        assert_eq!(codec.event_of(i as u16), Some(e));
    }

    let comp = compile_composite(&[&b, &converter], &tbl).expect("compilable system");
    for &ev in &comp.ext_ev {
        let e = tbl
            .event(ev)
            .unwrap_or_else(|| panic!("compiled edge carries out-of-table index {ev}"));
        assert!(
            service.alphabet().contains(e),
            "compiled external edge {} is not a service event",
            e.name()
        );
    }
}

/// The simulation engine enumerates enabled events in table order, so
/// identical seeds produce identical schedules in every process.
#[test]
fn sim_engine_enumerates_events_in_table_order() {
    let (b, converter, _service) = derived_system();
    let system = System::new(vec![b, converter], ExternalPolicy::AlwaysEnabled);
    let runner = Runner::new(system, 0);
    let names: Vec<String> = runner
        .enabled_actions()
        .into_iter()
        .filter_map(|a| match a {
            Action::Event { event, .. } => Some(event.name()),
            _ => None,
        })
        .collect();
    assert!(!names.is_empty(), "initial state enables no events");
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "sim enumeration is not in table order");
}
