//! The shipped `specs/paper.pq` file must stay in lockstep with the
//! programmatic machines in `protoquot-protocols`, and the CLI must be
//! able to re-derive the paper's results from it.

use protoquot_spec::bisimilar;
use protoquot_speclang::parse_file;

fn load_paper_specs() -> Vec<protoquot_spec::Spec> {
    let source = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/specs/paper.pq"))
        .expect("specs/paper.pq ships with the repo");
    parse_file(&source).expect("specs/paper.pq parses")
}

fn find<'a>(specs: &'a [protoquot_spec::Spec], name: &str) -> &'a protoquot_spec::Spec {
    specs
        .iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| panic!("spec `{name}` missing from specs/paper.pq"))
}

#[test]
fn asset_machines_match_programmatic_ones() {
    let specs = load_paper_specs();
    assert!(bisimilar(
        find(&specs, "A0"),
        &protoquot_protocols::ab_sender()
    ));
    assert!(bisimilar(
        find(&specs, "A1"),
        &protoquot_protocols::ab_receiver()
    ));
    assert!(bisimilar(
        find(&specs, "N0"),
        &protoquot_protocols::ns_sender()
    ));
    assert!(bisimilar(
        find(&specs, "N1"),
        &protoquot_protocols::ns_receiver()
    ));
    assert!(bisimilar(
        find(&specs, "Ach"),
        &protoquot_protocols::ab_channel()
    ));
    assert!(bisimilar(
        find(&specs, "Nch"),
        &protoquot_protocols::ns_channel()
    ));
    assert!(bisimilar(
        find(&specs, "S"),
        &protoquot_protocols::exactly_once()
    ));
    assert!(bisimilar(
        find(&specs, "S_weak"),
        &protoquot_protocols::at_least_once()
    ));
}

#[test]
fn asset_file_reproduces_both_configurations() {
    let specs = load_paper_specs();
    let service = find(&specs, "S");
    let int_col: protoquot_spec::Alphabet = ["+d0", "+d1", "-a0", "-a1", "+D", "-A"]
        .into_iter()
        .collect();
    let b_col =
        protoquot_spec::compose_all(&[find(&specs, "A0"), find(&specs, "Ach"), find(&specs, "N1")])
            .unwrap();
    let q = protoquot_core::solve(&b_col, service, &int_col).expect("Fig. 14 from the file");
    protoquot_core::verify_converter(&b_col, service, &q.converter).unwrap();

    let int_sym: protoquot_spec::Alphabet = ["+d0", "+d1", "-a0", "-a1", "-D", "+A", "t_N"]
        .into_iter()
        .collect();
    let b_sym = protoquot_spec::compose_all(&[
        find(&specs, "A0"),
        find(&specs, "Ach"),
        find(&specs, "Nch"),
        find(&specs, "N1"),
    ])
    .unwrap();
    assert!(
        protoquot_core::solve(&b_sym, service, &int_sym).is_err(),
        "Fig. 9 non-existence from the file"
    );
}

#[test]
fn asset_problem_declarations_resolve() {
    let source =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/specs/paper.pq")).unwrap();
    let f = protoquot_speclang::parse_source(&source).unwrap();
    for (name, expect_converter) in [("fig13", true), ("fig9", false), ("fig9_weakened", true)] {
        let d = f
            .problem(name)
            .unwrap_or_else(|| panic!("problem {name} declared"));
        let parts: Vec<&protoquot_spec::Spec> =
            d.components.iter().map(|c| f.spec(c).unwrap()).collect();
        let b = protoquot_spec::compose_all(&parts).unwrap();
        let int: protoquot_spec::Alphabet = d.internal.iter().map(String::as_str).collect();
        let got = protoquot_core::solve(&b, f.spec(&d.service).unwrap(), &int);
        assert_eq!(got.is_ok(), expect_converter, "problem {name}");
    }
}
