//! Differential test between the **live runtime** (the gateway relay
//! with its online conformance guard) and the **static** verifier
//! (`converter_verdict`, i.e. `B ‖ C ⊨ A` by the paper's two-phase
//! check):
//!
//! * every event sequence the runtime *accepts* is a genuine trace of
//!   the reference composite `B ‖ C` (checked with `has_trace` on the
//!   recorded per-session prefixes);
//! * a statically verified converter is never convicted online, at 1
//!   and 8 gateway worker threads alike, and the drive reports are
//!   identical across thread counts;
//! * every single-transition converter mutant is convicted by the
//!   online guard exactly when the static checker rejects it, across
//!   all builtin configurations.

use protoquot_core::{converter_verdict, solve};
use protoquot_protocols::nak::ab_to_nak_configuration;
use protoquot_protocols::{
    at_least_once, colocated_configuration, exactly_once, random_component,
    symmetric_configuration, RandomParams,
};
use protoquot_runtime::{
    drive, drive_mux, Conn, DriveConfig, DriveReport, Frame, Gateway, GatewayConfig, GuardProgram,
    LoopbackConn, LoopbackMux, MuxTransport, Reply, SessionGuard, SessionGuardReference, WireCodec,
};
use protoquot_sim::{redirect_transition, FaultPlan};
use protoquot_spec::{compose_all, has_trace, Alphabet, EventId, Spec, SpecBuilder};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Same budget as the soak differential suite: small enough to stay
/// quick, large enough that every statically rejected mutant below is
/// convicted over the wire.
fn config(threads: usize) -> DriveConfig {
    DriveConfig {
        runs: 40,
        threads,
        seed: 0x50AB_A6EE,
        max_steps: 600,
        faults: FaultPlan::parse("loss,dup,reorder").unwrap(),
        ..DriveConfig::default()
    }
}

type TraceLog = Arc<Mutex<HashMap<u64, Vec<EventId>>>>;

/// A loopback connection that records, per session, the event prefix
/// the gateway *accepted* — the runtime's observable language.
struct RecordingConn {
    inner: LoopbackConn,
    codec: WireCodec,
    log: TraceLog,
}

impl Conn for RecordingConn {
    fn call(&mut self, frame: &Frame) -> io::Result<Reply> {
        let reply = self.inner.call(frame)?;
        if let (Frame::Event { session, event }, Reply::Accepted { .. }) = (frame, &reply) {
            let e = self.codec.event_of(*event).expect("accepted unknown index");
            self.log
                .lock()
                .unwrap()
                .entry(*session)
                .or_default()
                .push(e);
        }
        Ok(reply)
    }
}

/// One drive campaign against a fresh gateway with `threads` workers
/// (server and client alike), returning the report and the accepted
/// per-session prefixes.
fn campaign(components: &[Spec], service: &Spec, threads: usize) -> (DriveReport, TraceLog) {
    campaign_with(components, service, threads, false)
}

/// Like [`campaign`], but selecting the gateway's guard implementation:
/// the compiled DFA (`reference_guard: false`) or the subset-replaying
/// oracle.
fn campaign_with(
    components: &[Spec],
    service: &Spec,
    threads: usize,
    reference_guard: bool,
) -> (DriveReport, TraceLog) {
    let parts: Vec<&Spec> = components.iter().collect();
    let gw = Gateway::new(
        &parts,
        service,
        GatewayConfig {
            workers: threads,
            reference_guard,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway must compile the system");
    let log: TraceLog = Arc::new(Mutex::new(HashMap::new()));
    let report = drive(components, service, &config(threads), || {
        Ok(Box::new(RecordingConn {
            inner: LoopbackConn::new(gw.clone()),
            codec: gw.codec().clone(),
            log: Arc::clone(&log),
        }) as Box<dyn Conn>)
    });
    gw.drain();
    assert_eq!(
        gw.stats().convictions,
        report.convicted_runs,
        "gateway conviction counter disagrees with the drive report"
    );
    (report, log)
}

/// Drives at 1 and 8 threads, asserts the reports are identical,
/// asserts every accepted prefix is a trace of the reference composite,
/// and returns whether the runtime found the system clean.
/// `expect_traffic` is asserted only for systems that should relay
/// events (mutants may be convicted before a single frame lands).
fn runtime_conforms(
    label: &str,
    components: &[Spec],
    service: &Spec,
    expect_traffic: bool,
) -> bool {
    let (one, log1) = campaign(components, service, 1);
    let (eight, _log8) = campaign(components, service, 8);
    assert_eq!(
        one.to_json(),
        eight.to_json(),
        "{label}: drive report differs across thread counts"
    );
    assert_eq!(one.io_errors, 0, "{label}: loopback cannot fail");

    let parts: Vec<&Spec> = components.iter().collect();
    let composite = compose_all(&parts).expect("composable system");
    let log = log1.lock().unwrap();
    if expect_traffic {
        assert!(
            log.values().any(|t| !t.is_empty()),
            "{label}: the drive relayed no events at all"
        );
    }
    for (session, trace) in log.iter() {
        assert!(
            has_trace(&composite, trace),
            "{label}: session {session} accepted a non-trace of B‖C: {trace:?}"
        );
    }
    one.convicted_runs == 0
}

/// The core differential check for one builtin configuration: derive
/// the converter, confirm the clean system is never convicted, then
/// mutate single transitions and insist online convictions coincide
/// with static rejections. Returns how many mutants were convicted.
fn assert_agreement(
    label: &str,
    b: &Spec,
    service: &Spec,
    int: &protoquot_spec::Alphabet,
) -> usize {
    let q =
        solve(b, service, int).unwrap_or_else(|e| panic!("{label}: expected a converter, got {e}"));
    let converter = q.converter;

    let static_ok = converter_verdict(b, service, &converter)
        .unwrap_or_else(|e| panic!("{label}: static check failed to run: {e}"))
        .is_ok();
    assert!(
        static_ok,
        "{label}: derived converter fails the static check"
    );
    assert!(
        runtime_conforms(label, &[b.clone(), converter.clone()], service, true),
        "{label}: statically verified converter was convicted online"
    );

    let mut caught = 0usize;
    for k in 0..4 {
        let Some(mutant) = redirect_transition(&converter, k) else {
            break;
        };
        let mutant_label = format!("{label}/mut{k}");
        let mutant_static_ok = converter_verdict(b, service, &mutant)
            .map(|v| v.is_ok())
            .unwrap_or(false);
        let mutant_runtime_ok =
            runtime_conforms(&mutant_label, &[b.clone(), mutant], service, false);
        assert_eq!(
            mutant_static_ok, mutant_runtime_ok,
            "{mutant_label}: static ({mutant_static_ok}) and online guard \
             ({mutant_runtime_ok}) disagree"
        );
        if !mutant_runtime_ok {
            caught += 1;
        }
    }
    caught
}

#[test]
fn builtin_configurations_agree_online() {
    let mut caught = 0usize;

    // §5, colocated variant: an exactly-once converter exists.
    let cfg = colocated_configuration();
    caught += assert_agreement("colocated/exactly-once", &cfg.b, &exactly_once(), &cfg.int);

    // §5, symmetric variant under the at-least-once weakening.
    let cfg = symmetric_configuration();
    caught += assert_agreement(
        "symmetric/at-least-once",
        &cfg.b,
        &at_least_once(),
        &cfg.int,
    );

    // The AB↔NAK heterogeneous gateway.
    let cfg = ab_to_nak_configuration();
    caught += assert_agreement("ab-nak/exactly-once", &cfg.b, &exactly_once(), &cfg.int);

    assert!(
        caught > 0,
        "no single-transition mutant was convicted across the builtin sweep"
    );
}

#[test]
fn convictions_name_the_violation_kind() {
    // A converted frame stream that breaks the service must be turned
    // away with a semantic reason, not a generic error: drive a known
    // statically-rejected mutant and check the reported reject reasons
    // are drawn from the guard's vocabulary.
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).unwrap();
    for k in 0..4 {
        let Some(mutant) = redirect_transition(&q.converter, k) else {
            break;
        };
        if converter_verdict(&cfg.b, &service, &mutant)
            .map(|v| v.is_ok())
            .unwrap_or(false)
        {
            continue;
        }
        let (report, _) = campaign(&[cfg.b.clone(), mutant], &service, 2);
        assert!(report.convicted_runs > 0, "mut{k}: expected convictions");
        for o in report.outcomes.iter().filter(|o| o.conviction.is_some()) {
            let reason = o.conviction.as_deref().unwrap();
            assert!(
                ["not_a_trace", "service_violation", "stalled", "convicted"].contains(&reason),
                "mut{k}: unexpected conviction reason `{reason}`"
            );
        }
        return;
    }
    panic!("no statically rejected mutant found to drive");
}

// ---------------------------------------------------------------------
// DFA vs. reference guard differential
// ---------------------------------------------------------------------

/// Streams fed to each guard pair per system.
const GUARD_STREAMS: u64 = 6;
/// Frames per stream (conviction usually ends a stream much earlier).
const STREAM_LEN: usize = 200;

/// Deterministic xorshift64* generator so every differential stream is
/// reproducible from its label seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A converter over `int` that declares every interface event but
/// enables none: composing it with a component freezes all interaction
/// on `Int` — the cheap way to steer arbitrary systems down the
/// conviction paths (same trick as the verify differential).
fn stuck_converter(int: &Alphabet) -> Spec {
    let mut cb = SpecBuilder::new("stuck");
    cb.state("c0");
    for e in int.iter() {
        cb.event(&e.name());
    }
    cb.build().expect("stuck converter is well-formed")
}

/// The core bit-identity check: the compiled DFA guard and the
/// subset-replaying reference must agree on every stream — same
/// conviction kind, same offending event index, same frame position
/// (`observed()` at conviction time), same possible-state counts, and
/// same attested-stall verdicts.
///
/// Streams follow a genuine sampled trace up to a random cut, then turn
/// random (with indices one past the table to hit the unknown-index
/// path too), so both the long-accept prefixes and all three conviction
/// kinds are exercised.
fn guards_agree(label: &str, parts: &[&Spec], service: &Spec, seed: u64) {
    guards_agree_scaled(label, parts, service, seed, GUARD_STREAMS, STREAM_LEN)
}

/// [`guards_agree`] with an explicit stream budget: the
/// several-hundred-mutant sweeps run a trimmed budget per mutant (the
/// derived converters already cover the long OK paths at full budget).
fn guards_agree_scaled(
    label: &str,
    parts: &[&Spec],
    service: &Spec,
    seed: u64,
    streams: u64,
    stream_len: usize,
) {
    let prog = match GuardProgram::new(parts, service) {
        Ok(p) => Arc::new(p),
        // Systems the gateway would refuse to load have no online
        // behavior to compare.
        Err(_) => return,
    };
    let nsym = prog.table().len().max(1) as u64;
    let accepted = prog.sample_accepted(stream_len);
    let mut rng = XorShift(seed | 1);
    for round in 0..streams {
        let mut dfa = SessionGuard::new(Arc::clone(&prog));
        let mut reference = SessionGuardReference::new(Arc::clone(&prog));
        assert_eq!(
            dfa.convicted(),
            reference.convicted(),
            "{label}/s{round}: initial verdict differs"
        );
        if dfa.convicted().is_some() {
            break; // start-convicted systems have no further frames
        }
        let cut = if accepted.is_empty() {
            0
        } else {
            rng.next() as usize % (accepted.len() + 1)
        };
        #[allow(clippy::needless_range_loop)] // `pos` indexes past `accepted`'s end
        for pos in 0..STREAM_LEN {
            let ev = if pos < cut {
                accepted[pos]
            } else {
                (rng.next() % (nsym + 1)) as u16
            };
            let d = dfa.observe(ev);
            let r = reference.observe(ev);
            assert_eq!(
                d, r,
                "{label}/s{round}: conviction differs at frame {pos} (event {ev})"
            );
            assert_eq!(
                dfa.observed(),
                reference.observed(),
                "{label}/s{round}: frame position differs at frame {pos}"
            );
            if d.is_err() {
                break;
            }
            assert_eq!(
                dfa.possible_states(),
                reference.possible_states(),
                "{label}/s{round}: possible-state count differs at frame {pos}"
            );
            if rng.next().is_multiple_of(13) {
                let da = dfa.attest_stall();
                let ra = reference.attest_stall();
                assert_eq!(
                    da, ra,
                    "{label}/s{round}: attested-stall verdict differs at frame {pos}"
                );
                if da.is_err() {
                    break;
                }
            }
        }
        assert_eq!(
            dfa.convicted(),
            reference.convicted(),
            "{label}/s{round}: final conviction differs"
        );
        assert_eq!(
            dfa.observed(),
            reference.observed(),
            "{label}/s{round}: final frame position differs"
        );
    }
}

/// The three builtin systems, each with its derived converter and
/// **every** single-transition mutant of it.
#[test]
fn dfa_and_reference_guards_agree_on_builtins_and_all_mutants() {
    let systems: [(&str, Spec, Spec, Alphabet); 3] = {
        let colocated = colocated_configuration();
        let sym = symmetric_configuration();
        let nak = ab_to_nak_configuration();
        [
            ("colocated", colocated.b, exactly_once(), colocated.int),
            ("symmetric", sym.b, at_least_once(), sym.int),
            ("ab-nak", nak.b, exactly_once(), nak.int),
        ]
    };
    for (label, b, service, int) in &systems {
        let q = solve(b, service, int)
            .unwrap_or_else(|e| panic!("{label}: expected a converter, got {e}"));
        guards_agree(
            &format!("{label}/derived"),
            &[b, &q.converter],
            service,
            0xD1FF_0000 ^ label.len() as u64,
        );
        // Every single-transition mutant (the symmetric converter has
        // several hundred); each (build + streams) is independent, so
        // the sweep fans out across threads.
        let mutants: Vec<(usize, Spec)> = (0..)
            .map_while(|k| Some((k, redirect_transition(&q.converter, k)?)))
            .collect();
        assert!(
            !mutants.is_empty(),
            "{label}: converter has no transitions to mutate"
        );
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some((k, mutant)) = mutants.get(i) else {
                        break;
                    };
                    // Trimmed budget: the derived run above already
                    // soaks the long accept paths at full budget, so
                    // each mutant only needs enough frames past the
                    // cut to force its conviction.
                    guards_agree_scaled(
                        &format!("{label}/mut{k}"),
                        &[b, mutant],
                        service,
                        0xD1FF_1000 ^ (*k as u64) << 8,
                        2,
                        64,
                    );
                });
            }
        });
    }
}

/// 40 random components, each frozen by the stuck converter so the
/// progress paths are reachable.
#[test]
fn dfa_and_reference_guards_agree_on_random_components() {
    let service = exactly_once();
    for seed in 0..40u64 {
        let (b, int) = random_component(seed, RandomParams::default());
        let stuck = stuck_converter(&int);
        guards_agree(
            &format!("random({seed})"),
            &[&b, &stuck],
            &service,
            0xC0FF_EE00 ^ seed,
        );
    }
}

/// One multiplexed loopback campaign — the carrier that hands whole
/// readiness batches to [`Gateway::call_batch`] — against a gateway
/// with `threads` workers and batched dispatch on or off.
fn mux_campaign(
    components: &[Spec],
    service: &Spec,
    threads: usize,
    batching: bool,
) -> DriveReport {
    let parts: Vec<&Spec> = components.iter().collect();
    let gw = Gateway::new(
        &parts,
        service,
        GatewayConfig {
            workers: threads,
            batching,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway must compile the system");
    let cfg = DriveConfig {
        sessions_per_conn: 8,
        ..config(threads)
    };
    let report = drive_mux(components, service, &cfg, || {
        Ok(Box::new(LoopbackMux::new(gw.clone())) as Box<dyn MuxTransport>)
    });
    gw.drain();
    assert_eq!(
        gw.stats().convictions,
        report.convicted_runs,
        "gateway conviction counter disagrees with the drive report"
    );
    report
}

/// Batched dispatch against its per-frame oracle at 1 and 8 workers:
/// with `GatewayConfig::batching` off every frame takes the classic
/// `submit` + boxed-responder path, yet fixed-seed multiplexed
/// campaigns must stay byte-identical — for the derived converter and
/// for a statically rejected mutant, so convictions carry over with
/// identical counts and reasons at every worker count.
#[test]
fn batched_campaigns_match_per_frame_campaigns() {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("colocated converter derives");
    let mutant = (0..8)
        .find_map(|k| {
            let m = redirect_transition(&q.converter, k)?;
            let ok = converter_verdict(&cfg.b, &service, &m)
                .map(|v| v.is_ok())
                .unwrap_or(false);
            (!ok).then_some(m)
        })
        .expect("some single-transition mutant is statically rejected");
    for (kind, converter, expect_clean) in
        [("derived", &q.converter, true), ("mutant", &mutant, false)]
    {
        let components = [cfg.b.clone(), converter.clone()];
        for threads in [1usize, 8] {
            let batched = mux_campaign(&components, &service, threads, true);
            let per_frame = mux_campaign(&components, &service, threads, false);
            assert_eq!(
                batched.to_json(),
                per_frame.to_json(),
                "{kind}: batched and per-frame campaigns diverge at {threads} workers"
            );
            assert_eq!(
                batched.is_clean(),
                expect_clean,
                "{kind}: unexpected verdict at {threads} workers: {batched}"
            );
            if !expect_clean {
                assert!(
                    batched.convicted_runs > 0,
                    "{kind}: convictions lost at {threads} workers"
                );
            }
        }
    }
}

/// End-to-end gateway differential at 1 and 8 workers: the drive
/// reports of a DFA-guarded gateway and a reference-guarded gateway
/// must be byte-identical for the derived converter and for a
/// statically rejected mutant of each builtin system — same runs, same
/// convictions, same reject reasons, at every thread count.
#[test]
fn reference_guard_campaigns_match_dfa_campaigns() {
    let systems: [(&str, Spec, Spec, Alphabet); 3] = {
        let colocated = colocated_configuration();
        let sym = symmetric_configuration();
        let nak = ab_to_nak_configuration();
        [
            ("colocated", colocated.b, exactly_once(), colocated.int),
            ("symmetric", sym.b, at_least_once(), sym.int),
            ("ab-nak", nak.b, exactly_once(), nak.int),
        ]
    };
    for (label, b, service, int) in &systems {
        let q = solve(b, service, int)
            .unwrap_or_else(|e| panic!("{label}: expected a converter, got {e}"));
        let rejected_mutant = (0..8).find_map(|k| {
            let m = redirect_transition(&q.converter, k)?;
            let ok = converter_verdict(b, service, &m)
                .map(|v| v.is_ok())
                .unwrap_or(false);
            (!ok).then_some(m)
        });
        let mut variants = vec![("derived", q.converter.clone())];
        if let Some(m) = rejected_mutant {
            variants.push(("mutant", m));
        }
        for (kind, converter) in &variants {
            let components = [b.clone(), converter.clone()];
            for threads in [1usize, 8] {
                let (dfa_report, _) = campaign_with(&components, service, threads, false);
                let (ref_report, _) = campaign_with(&components, service, threads, true);
                assert_eq!(
                    dfa_report.to_json(),
                    ref_report.to_json(),
                    "{label}/{kind}: DFA and reference gateways diverge at {threads} workers"
                );
            }
        }
    }
}
