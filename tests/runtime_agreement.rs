//! Differential test between the **live runtime** (the gateway relay
//! with its online conformance guard) and the **static** verifier
//! (`converter_verdict`, i.e. `B ‖ C ⊨ A` by the paper's two-phase
//! check):
//!
//! * every event sequence the runtime *accepts* is a genuine trace of
//!   the reference composite `B ‖ C` (checked with `has_trace` on the
//!   recorded per-session prefixes);
//! * a statically verified converter is never convicted online, at 1
//!   and 8 gateway worker threads alike, and the drive reports are
//!   identical across thread counts;
//! * every single-transition converter mutant is convicted by the
//!   online guard exactly when the static checker rejects it, across
//!   all builtin configurations.

use protoquot_core::{converter_verdict, solve};
use protoquot_protocols::nak::ab_to_nak_configuration;
use protoquot_protocols::{
    at_least_once, colocated_configuration, exactly_once, symmetric_configuration,
};
use protoquot_runtime::{
    drive, Conn, DriveConfig, DriveReport, Frame, Gateway, GatewayConfig, LoopbackConn, Reply,
    WireCodec,
};
use protoquot_sim::{redirect_transition, FaultPlan};
use protoquot_spec::{compose_all, has_trace, EventId, Spec};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Same budget as the soak differential suite: small enough to stay
/// quick, large enough that every statically rejected mutant below is
/// convicted over the wire.
fn config(threads: usize) -> DriveConfig {
    DriveConfig {
        runs: 40,
        threads,
        seed: 0x50AB_A6EE,
        max_steps: 600,
        faults: FaultPlan::parse("loss,dup,reorder").unwrap(),
        ..DriveConfig::default()
    }
}

type TraceLog = Arc<Mutex<HashMap<u64, Vec<EventId>>>>;

/// A loopback connection that records, per session, the event prefix
/// the gateway *accepted* — the runtime's observable language.
struct RecordingConn {
    inner: LoopbackConn,
    codec: WireCodec,
    log: TraceLog,
}

impl Conn for RecordingConn {
    fn call(&mut self, frame: &Frame) -> io::Result<Reply> {
        let reply = self.inner.call(frame)?;
        if let (Frame::Event { session, event }, Reply::Accepted { .. }) = (frame, &reply) {
            let e = self.codec.event_of(*event).expect("accepted unknown index");
            self.log
                .lock()
                .unwrap()
                .entry(*session)
                .or_default()
                .push(e);
        }
        Ok(reply)
    }
}

/// One drive campaign against a fresh gateway with `threads` workers
/// (server and client alike), returning the report and the accepted
/// per-session prefixes.
fn campaign(components: &[Spec], service: &Spec, threads: usize) -> (DriveReport, TraceLog) {
    let parts: Vec<&Spec> = components.iter().collect();
    let gw = Gateway::new(
        &parts,
        service,
        GatewayConfig {
            workers: threads,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway must compile the system");
    let log: TraceLog = Arc::new(Mutex::new(HashMap::new()));
    let report = drive(components, service, &config(threads), || {
        Ok(Box::new(RecordingConn {
            inner: LoopbackConn::new(gw.clone()),
            codec: gw.codec().clone(),
            log: Arc::clone(&log),
        }) as Box<dyn Conn>)
    });
    gw.drain();
    assert_eq!(
        gw.stats().convictions,
        report.convicted_runs,
        "gateway conviction counter disagrees with the drive report"
    );
    (report, log)
}

/// Drives at 1 and 8 threads, asserts the reports are identical,
/// asserts every accepted prefix is a trace of the reference composite,
/// and returns whether the runtime found the system clean.
/// `expect_traffic` is asserted only for systems that should relay
/// events (mutants may be convicted before a single frame lands).
fn runtime_conforms(
    label: &str,
    components: &[Spec],
    service: &Spec,
    expect_traffic: bool,
) -> bool {
    let (one, log1) = campaign(components, service, 1);
    let (eight, _log8) = campaign(components, service, 8);
    assert_eq!(
        one.to_json(),
        eight.to_json(),
        "{label}: drive report differs across thread counts"
    );
    assert_eq!(one.io_errors, 0, "{label}: loopback cannot fail");

    let parts: Vec<&Spec> = components.iter().collect();
    let composite = compose_all(&parts).expect("composable system");
    let log = log1.lock().unwrap();
    if expect_traffic {
        assert!(
            log.values().any(|t| !t.is_empty()),
            "{label}: the drive relayed no events at all"
        );
    }
    for (session, trace) in log.iter() {
        assert!(
            has_trace(&composite, trace),
            "{label}: session {session} accepted a non-trace of B‖C: {trace:?}"
        );
    }
    one.convicted_runs == 0
}

/// The core differential check for one builtin configuration: derive
/// the converter, confirm the clean system is never convicted, then
/// mutate single transitions and insist online convictions coincide
/// with static rejections. Returns how many mutants were convicted.
fn assert_agreement(
    label: &str,
    b: &Spec,
    service: &Spec,
    int: &protoquot_spec::Alphabet,
) -> usize {
    let q =
        solve(b, service, int).unwrap_or_else(|e| panic!("{label}: expected a converter, got {e}"));
    let converter = q.converter;

    let static_ok = converter_verdict(b, service, &converter)
        .unwrap_or_else(|e| panic!("{label}: static check failed to run: {e}"))
        .is_ok();
    assert!(
        static_ok,
        "{label}: derived converter fails the static check"
    );
    assert!(
        runtime_conforms(label, &[b.clone(), converter.clone()], service, true),
        "{label}: statically verified converter was convicted online"
    );

    let mut caught = 0usize;
    for k in 0..4 {
        let Some(mutant) = redirect_transition(&converter, k) else {
            break;
        };
        let mutant_label = format!("{label}/mut{k}");
        let mutant_static_ok = converter_verdict(b, service, &mutant)
            .map(|v| v.is_ok())
            .unwrap_or(false);
        let mutant_runtime_ok =
            runtime_conforms(&mutant_label, &[b.clone(), mutant], service, false);
        assert_eq!(
            mutant_static_ok, mutant_runtime_ok,
            "{mutant_label}: static ({mutant_static_ok}) and online guard \
             ({mutant_runtime_ok}) disagree"
        );
        if !mutant_runtime_ok {
            caught += 1;
        }
    }
    caught
}

#[test]
fn builtin_configurations_agree_online() {
    let mut caught = 0usize;

    // §5, colocated variant: an exactly-once converter exists.
    let cfg = colocated_configuration();
    caught += assert_agreement("colocated/exactly-once", &cfg.b, &exactly_once(), &cfg.int);

    // §5, symmetric variant under the at-least-once weakening.
    let cfg = symmetric_configuration();
    caught += assert_agreement(
        "symmetric/at-least-once",
        &cfg.b,
        &at_least_once(),
        &cfg.int,
    );

    // The AB↔NAK heterogeneous gateway.
    let cfg = ab_to_nak_configuration();
    caught += assert_agreement("ab-nak/exactly-once", &cfg.b, &exactly_once(), &cfg.int);

    assert!(
        caught > 0,
        "no single-transition mutant was convicted across the builtin sweep"
    );
}

#[test]
fn convictions_name_the_violation_kind() {
    // A converted frame stream that breaks the service must be turned
    // away with a semantic reason, not a generic error: drive a known
    // statically-rejected mutant and check the reported reject reasons
    // are drawn from the guard's vocabulary.
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).unwrap();
    for k in 0..4 {
        let Some(mutant) = redirect_transition(&q.converter, k) else {
            break;
        };
        if converter_verdict(&cfg.b, &service, &mutant)
            .map(|v| v.is_ok())
            .unwrap_or(false)
        {
            continue;
        }
        let (report, _) = campaign(&[cfg.b.clone(), mutant], &service, 2);
        assert!(report.convicted_runs > 0, "mut{k}: expected convictions");
        for o in report.outcomes.iter().filter(|o| o.conviction.is_some()) {
            let reason = o.conviction.as_deref().unwrap();
            assert!(
                ["not_a_trace", "service_violation", "stalled", "convicted"].contains(&reason),
                "mut{k}: unexpected conviction reason `{reason}`"
            );
        }
        return;
    }
    panic!("no statically rejected mutant found to drive");
}
