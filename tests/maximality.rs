//! Tests of the algorithm's maximality guarantees (paper Theorems 1–2,
//! EXP-MAX in DESIGN.md): every alternative solution's trace set is
//! contained in the derived converter's.

use protoquot_core::{solve_with, verify_converter, QuotientOptions};
use protoquot_protocols::{colocated_configuration, exactly_once};
use protoquot_spec::trace::traces_up_to;
use protoquot_spec::{has_trace, Alphabet, Spec, SpecBuilder};

fn relay() -> (Spec, Spec, Alphabet) {
    let mut sb = SpecBuilder::new("S");
    let u0 = sb.state("u0");
    let u1 = sb.state("u1");
    sb.ext(u0, "acc", u1);
    sb.ext(u1, "del", u0);
    let service = sb.build().unwrap();
    let mut bb = SpecBuilder::new("B");
    let b0 = bb.state("b0");
    let b1 = bb.state("b1");
    let b1b = bb.state("b1b");
    let b2 = bb.state("b2");
    bb.ext(b0, "acc", b1);
    bb.ext(b1, "ping", b1b);
    bb.ext(b1b, "pong", b1);
    bb.ext(b1, "fwd", b2);
    bb.ext(b1b, "fwd", b2);
    bb.ext(b2, "del", b0);
    let b = bb.build().unwrap();
    (
        b.clone(),
        service,
        Alphabet::from_names(["ping", "pong", "fwd"]),
    )
}

/// Hand-built alternative converters; all correct, all smaller than
/// the maximal one.
fn alternatives() -> Vec<Spec> {
    // 1: just forward.
    let mut c1 = SpecBuilder::new("alt1");
    let s0 = c1.state("s0");
    c1.ext(s0, "fwd", s0);
    c1.event("ping");
    c1.event("pong");
    // 2: bounce once, then forward.
    let mut c2 = SpecBuilder::new("alt2");
    let s0 = c2.state("s0");
    let s1 = c2.state("s1");
    let s2 = c2.state("s2");
    c2.ext(s0, "ping", s1);
    c2.ext(s1, "pong", s2);
    c2.ext(s2, "fwd", s0);
    c2.ext(s0, "fwd", s0);
    // 3: alternate forwarding styles per cycle.
    let mut c3 = SpecBuilder::new("alt3");
    let s0 = c3.state("s0");
    let s1 = c3.state("s1");
    c3.ext(s0, "fwd", s1);
    c3.ext(s1, "ping", s0); // ping after forwarding (harmless)
    c3.ext(s1, "fwd", s1);
    c3.event("pong");
    vec![
        c1.build().unwrap(),
        c2.build().unwrap(),
        c3.build().unwrap(),
    ]
}

#[test]
fn alternatives_are_correct_but_smaller() {
    let (b, service, _) = relay();
    for alt in alternatives() {
        verify_converter(&b, &service, &alt)
            .unwrap_or_else(|e| panic!("{} should verify: {e}", alt.name()));
    }
}

#[test]
fn every_alternative_trace_is_in_the_maximal_converter() {
    let (b, service, int) = relay();
    // Maximality in the literal sense needs vacuous states included.
    let opts = QuotientOptions {
        include_vacuous: true,
        ..Default::default()
    };
    let q = solve_with(&b, &service, &int, &opts).unwrap();
    for alt in alternatives() {
        for t in traces_up_to(&alt, 6) {
            assert!(
                has_trace(&q.converter, &t),
                "trace {:?} of {} missing from the maximal converter",
                t.iter().map(|e| e.name()).collect::<Vec<_>>(),
                alt.name()
            );
        }
    }
}

#[test]
fn paper_configuration_maximality_over_handbuilt_converter() {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let opts = QuotientOptions {
        include_vacuous: true,
        ..Default::default()
    };
    let q = solve_with(&cfg.b, &service, &cfg.int, &opts).unwrap();

    // The hand-derived "useful core" converter from the paper's Fig. 14.
    let mut cb = SpecBuilder::new("hand");
    let s: Vec<_> = (0..9).map(|i| cb.state(&format!("h{i}"))).collect();
    cb.ext(s[0], "+d0", s[1]);
    cb.ext(s[1], "+D", s[2]);
    cb.ext(s[2], "-A", s[3]);
    cb.ext(s[3], "-a0", s[4]);
    cb.ext(s[4], "+d0", s[3]); // duplicate: re-ack
    cb.ext(s[4], "+d1", s[5]);
    cb.ext(s[5], "+D", s[6]);
    cb.ext(s[6], "-A", s[7]);
    cb.ext(s[7], "-a1", s[8]);
    cb.ext(s[8], "+d1", s[7]); // duplicate: re-ack
    cb.ext(s[8], "+d0", s[1]);
    let hand = cb.build().unwrap();
    verify_converter(&cfg.b, &service, &hand).expect("hand-built converter works");
    for t in traces_up_to(&hand, 8) {
        assert!(
            has_trace(&q.converter, &t),
            "trace {:?} missing from maximal converter",
            t.iter().map(|e| e.name()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn vacuous_inclusion_only_grows_the_trace_set() {
    let (b, service, int) = relay();
    let lean = solve_with(&b, &service, &int, &QuotientOptions::default()).unwrap();
    let full = solve_with(
        &b,
        &service,
        &int,
        &QuotientOptions {
            include_vacuous: true,
            ..Default::default()
        },
    )
    .unwrap();
    for t in traces_up_to(&lean.converter, 6) {
        assert!(has_trace(&full.converter, &t));
    }
    // Both verify.
    verify_converter(&b, &service, &lean.converter).unwrap();
    verify_converter(&b, &service, &full.converter).unwrap();
}
