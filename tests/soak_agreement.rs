//! Differential test between the **soak fleet** (dynamic, fault-injecting,
//! seeded execution with online conformance checking) and the **static**
//! verifier (`converter_verdict`, i.e. `B ‖ C ⊨ A` via the Figure 6
//! phases). Because fault plans only bias the choice among *enabled*
//! actions, every faulted trace is a genuine trace of `B ‖ C`, so the two
//! oracles must agree:
//!
//! * a statically verified converter must survive any soak, at 1 and 8
//!   worker threads alike (and the two reports must be byte-identical
//!   apart from wall-clock throughput);
//! * a mutated converter that the static check rejects must be caught by
//!   the soak, with a ddmin-minimized counterexample of at most 20
//!   events.

use protoquot_core::{converter_verdict, solve};
use protoquot_protocols::nak::ab_to_nak_configuration;
use protoquot_protocols::{
    at_least_once, colocated_configuration, exactly_once, nfa_blowup, relay_chain,
    symmetric_configuration, toggle_puzzle,
};
use protoquot_sim::{redirect_transition, FaultPlan, FleetConfig, FleetRunner};
use protoquot_spec::{Alphabet, Spec};

/// Soak budget per instance; small enough to keep the suite quick yet
/// large enough that every statically rejected mutant below is caught.
fn config(threads: usize) -> FleetConfig {
    FleetConfig {
        runs: 40,
        threads,
        seed: 0x50AB_A6EE,
        max_steps: 600,
        faults: FaultPlan::parse("loss,dup,reorder").unwrap(),
        ..FleetConfig::default()
    }
}

/// Runs the fleet at 1 and 8 threads, asserts the reports are
/// thread-count invariant, and returns whether the soak found the system
/// conforming.
fn soak_conforms(label: &str, components: Vec<Spec>, service: &Spec) -> bool {
    let fleet = FleetRunner::new(components, service.clone());
    let one = fleet.run(&config(1));
    let eight = fleet.run(&config(8));
    assert_eq!(
        (one.conforming, one.safety, one.deadlock, one.livelock),
        (
            eight.conforming,
            eight.safety,
            eight.deadlock,
            eight.livelock
        ),
        "{label}: verdict histogram differs across thread counts"
    );
    assert_eq!(
        one.total_steps, eight.total_steps,
        "{label}: total steps differ across thread counts"
    );
    assert_eq!(
        one.counterexamples, eight.counterexamples,
        "{label}: counterexamples differ across thread counts"
    );
    one.is_conforming()
}

/// The core differential check for one quotient problem: derive the
/// converter, confirm static and dynamic verdicts agree on the clean
/// system, then mutate single transitions of the converter and insist
/// the two oracles keep agreeing — with a short minimized witness
/// whenever the soak convicts. Returns how many mutants were rejected
/// (tiny instances can have only behaviour-preserving redirects, so
/// callers assert non-vacuity over a whole sweep, not per instance).
fn assert_agreement(label: &str, b: &Spec, service: &Spec, int: &Alphabet) -> usize {
    let q =
        solve(b, service, int).unwrap_or_else(|e| panic!("{label}: expected a converter, got {e}"));
    let converter = q.converter;

    let static_ok = converter_verdict(b, service, &converter)
        .unwrap_or_else(|e| panic!("{label}: static check failed to run: {e}"))
        .is_ok();
    assert!(
        static_ok,
        "{label}: derived converter fails the static check"
    );
    assert!(
        soak_conforms(label, vec![b.clone(), converter.clone()], service),
        "{label}: statically verified converter failed the soak"
    );

    // Mutate external transitions one at a time. The soak is a sound
    // bug-finder (it only ever witnesses real traces), so wherever it
    // convicts the static verdict must already be a rejection; and for
    // this fault mix and budget every static rejection below is in fact
    // witnessed dynamically, with a short minimized counterexample.
    let mut caught = 0usize;
    for k in 0..4 {
        let Some(mutant) = redirect_transition(&converter, k) else {
            break;
        };
        let mutant_label = format!("{label}/mut{k}");
        let mutant_static_ok = converter_verdict(b, service, &mutant)
            .map(|v| v.is_ok())
            .unwrap_or(false);
        let mutant_soak_ok = soak_conforms(&mutant_label, vec![b.clone(), mutant], service);
        assert_eq!(
            mutant_static_ok, mutant_soak_ok,
            "{mutant_label}: static ({mutant_static_ok}) and soak ({mutant_soak_ok}) disagree"
        );
        if !mutant_soak_ok {
            caught += 1;
        }
    }
    caught
}

/// Every counterexample reported for this system must carry a minimized
/// witness of at most 20 events.
fn assert_minimized(label: &str, components: Vec<Spec>, service: &Spec) {
    let fleet = FleetRunner::new(components, service.clone());
    let report = fleet.run(&config(1));
    assert!(
        !report.is_conforming(),
        "{label}: expected a non-conforming report"
    );
    assert!(
        !report.counterexamples.is_empty(),
        "{label}: non-conforming report carries no counterexample"
    );
    for cx in &report.counterexamples {
        assert!(
            cx.events.len() <= 20,
            "{label}: counterexample of {} events exceeds the 20-event bound",
            cx.events.len()
        );
    }
}

#[test]
fn benchmark_families_agree() {
    let service = exactly_once();
    let mut caught = 0usize;
    for n in [1usize, 2, 4] {
        let (b, int) = relay_chain(n);
        caught += assert_agreement(&format!("relay-chain({n})"), &b, &service, &int);
    }
    for n in [1usize, 2] {
        let (b, int) = toggle_puzzle(n);
        caught += assert_agreement(&format!("toggle-puzzle({n})"), &b, &service, &int);
    }
    for n in [1usize, 3, 5] {
        let (b, int) = nfa_blowup(n);
        caught += assert_agreement(&format!("nfa-blowup({n})"), &b, &service, &int);
    }
    assert!(
        caught > 0,
        "no single-transition mutant was rejected across the family sweep"
    );
}

#[test]
fn paper_configurations_agree() {
    let mut caught = 0usize;

    // §5, colocated variant: an exactly-once converter exists.
    let cfg = colocated_configuration();
    caught += assert_agreement("colocated/exactly-once", &cfg.b, &exactly_once(), &cfg.int);

    // §5, symmetric variant: exactly-once is unsolvable, at-least-once
    // restores existence.
    let cfg = symmetric_configuration();
    caught += assert_agreement(
        "symmetric/at-least-once",
        &cfg.b,
        &at_least_once(),
        &cfg.int,
    );

    // The AB↔NAK heterogeneous gateway used by the soak acceptance run.
    let cfg = ab_to_nak_configuration();
    caught += assert_agreement("ab-nak/exactly-once", &cfg.b, &exactly_once(), &cfg.int);

    assert!(
        caught > 0,
        "no single-transition mutant was rejected across the paper configurations"
    );
}

#[test]
fn mutated_converter_yields_short_minimized_counterexample() {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).unwrap();
    for k in 0..4 {
        let Some(mutant) = redirect_transition(&q.converter, k) else {
            break;
        };
        if converter_verdict(&cfg.b, &service, &mutant)
            .map(|v| v.is_ok())
            .unwrap_or(false)
        {
            continue; // behaviour-preserving redirect: nothing to witness
        }
        assert_minimized(
            &format!("colocated/mut{k}"),
            vec![cfg.b.clone(), mutant],
            &service,
        );
    }
}
