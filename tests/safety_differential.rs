//! Differential test for the interned parallel safety engine: on every
//! benchmark-family instance, a sweep of random components and both
//! paper §5 configurations, the engine must produce a **bit-identical**
//! [`protoquot_core::SafetyPhase`] — same `c0` (state names included,
//! thanks to the canonical BFS renumbering), same `f` pair sets, same
//! transition order — as the direct Figure 5 transcription
//! (`safety_phase_reference`), at 1, 2 and 8 worker threads alike.

use protoquot_core::{safety_engine, safety_phase_reference, SafetyLimits};
use protoquot_protocols::{
    colocated_configuration, exactly_once, nfa_blowup, random_component, relay_chain,
    symmetric_configuration, toggle_puzzle, windowed, RandomParams,
};
use protoquot_spec::{normalize, Alphabet, Spec};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs the engine against the reference on one problem and asserts
/// bit-identical output at every thread count. Returns false when the
/// problem has no safe converter or exceeds the budget — in which case
/// the engine must agree on *that* too (callers count covered
/// instances).
fn engines_agree(label: &str, b: &Spec, service: &Spec, int: &Alphabet) -> bool {
    let na = normalize(service);
    for include_vacuous in [false, true] {
        let reference =
            safety_phase_reference(b, &na, int, include_vacuous, SafetyLimits::default());
        for threads in THREAD_COUNTS {
            let engine = safety_engine(
                b,
                &na,
                int,
                include_vacuous,
                SafetyLimits::default(),
                threads,
            );
            match (&reference, &engine) {
                (Ok(Some(r)), Ok(Some(e))) => {
                    assert_eq!(
                        e.phase.c0, r.c0,
                        "{label} / vacuous={include_vacuous} / threads={threads}: C0 differs"
                    );
                    assert_eq!(
                        e.phase.f, r.f,
                        "{label} / vacuous={include_vacuous} / threads={threads}: f differs"
                    );
                    assert_eq!(e.phase.includes_vacuous, r.includes_vacuous);
                    // The spec compares transitions as sets; the issue
                    // demands identical *order* too, so compare the
                    // enumerations directly.
                    let rt: Vec<_> = r.c0.external_transitions().collect();
                    let et: Vec<_> = e.phase.c0.external_transitions().collect();
                    assert_eq!(
                        et, rt,
                        "{label} / vacuous={include_vacuous} / threads={threads}: \
                         transition order differs"
                    );
                    // And the names really are the canonical c0..cN.
                    for (i, s) in r.c0.states().enumerate() {
                        assert_eq!(e.phase.c0.state_name(s), format!("c{i}"));
                    }
                    assert_eq!(e.stats.states, r.c0.num_states());
                    assert_eq!(e.stats.transitions, r.c0.num_external());
                    assert_eq!(e.stats.threads, threads);
                }
                (Ok(None), Ok(None)) => {}
                (Err(r), Err(e)) => {
                    assert_eq!(e.violation.event, r.violation.event, "{label}");
                    assert_eq!(e.violation.hub, r.violation.hub, "{label}");
                    assert_eq!(e.violation.b_state, r.violation.b_state, "{label}");
                }
                (r, e) => panic!(
                    "{label} / vacuous={include_vacuous} / threads={threads}: outcome \
                     shape differs (reference ok={:?}, engine ok={:?})",
                    r.is_ok(),
                    e.is_ok()
                ),
            }
        }
    }
    matches!(&reference_outcome(b, &na, int), Ok(Some(_)))
}

/// The reference outcome used only for coverage counting.
fn reference_outcome(
    b: &Spec,
    na: &protoquot_spec::NormalSpec,
    int: &Alphabet,
) -> Result<Option<protoquot_core::SafetyPhase>, protoquot_core::SafetyFailure> {
    safety_phase_reference(b, na, int, false, SafetyLimits::default())
}

#[test]
fn engines_agree_on_scaling_families() {
    let service = exactly_once();
    for n in [1usize, 2, 3, 5, 8, 12] {
        let (b, int) = relay_chain(n);
        assert!(engines_agree(
            &format!("relay-chain({n})"),
            &b,
            &service,
            &int
        ));
    }
    for n in [1usize, 2, 3, 4, 5] {
        let (b, int) = toggle_puzzle(n);
        assert!(engines_agree(
            &format!("toggle-puzzle({n})"),
            &b,
            &service,
            &int
        ));
    }
    for n in [1usize, 3, 5, 7, 9] {
        let (b, int) = nfa_blowup(n);
        assert!(engines_agree(
            &format!("nfa-blowup({n})"),
            &b,
            &service,
            &int
        ));
    }
    // Windowed services exercise multi-hub normal forms.
    for w in [1usize, 2, 3] {
        let (b, int) = relay_chain(2 * w + 2);
        assert!(engines_agree(
            &format!("relay-chain/windowed({w})"),
            &b,
            &windowed(w),
            &int
        ));
    }
}

#[test]
fn engines_agree_on_random_components() {
    let service = exactly_once();
    let mut covered = 0usize;
    for seed in 0..40u64 {
        let (b, int) = random_component(seed, RandomParams::default());
        if engines_agree(&format!("random({seed})"), &b, &service, &int) {
            covered += 1;
        }
    }
    assert!(
        covered >= 5,
        "too few random instances pass the safety phase ({covered}/40)"
    );
}

#[test]
fn engines_agree_on_paper_configurations() {
    let service = exactly_once();
    let colocated = colocated_configuration();
    assert!(engines_agree(
        "paper/colocated",
        &colocated.b,
        &service,
        &colocated.int
    ));
    let sym = symmetric_configuration();
    assert!(engines_agree("paper/symmetric", &sym.b, &service, &sym.int));
}

#[test]
fn engines_agree_at_tight_budgets() {
    // Sweep budgets through the boundary on an instance with a
    // non-trivial quotient: both implementations must flip from
    // `Ok(None)` to `Ok(Some)` at exactly the same budget.
    let service = exactly_once();
    let (b, int) = nfa_blowup(4);
    let na = normalize(&service);
    let full = safety_phase_reference(&b, &na, &int, false, SafetyLimits::default())
        .unwrap()
        .unwrap();
    let n = full.c0.num_states();
    for max_states in [0, 1, n - 1, n, n + 1] {
        let reference =
            safety_phase_reference(&b, &na, &int, false, SafetyLimits { max_states }).unwrap();
        for threads in THREAD_COUNTS {
            let engine =
                safety_engine(&b, &na, &int, false, SafetyLimits { max_states }, threads).unwrap();
            assert_eq!(
                engine.is_some(),
                reference.is_some(),
                "budget {max_states} / threads {threads}"
            );
            if let (Some(e), Some(r)) = (&engine, &reference) {
                assert_eq!(e.phase.c0, r.c0, "budget {max_states} / threads {threads}");
            }
        }
    }
}
