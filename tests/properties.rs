//! Property-based tests (proptest) on the core invariants:
//!
//! * algebraic laws of composition (commutativity/associativity up to
//!   bisimilarity on pairwise-disjoint-or-shared interfaces);
//! * normalization produces normal form and preserves the trace set
//!   and the satisfaction relation;
//! * minimization preserves bisimilarity;
//! * serde and speclang round-trips are exact;
//! * **every** quotient the solver derives on random problems passes
//!   independent verification, and every "no converter" answer is
//!   corroborated by the safety-only baseline or a genuine conflict.

use proptest::prelude::*;
use protoquot_core::{
    solve, solve_with, verify_converter, ProgressStrategy, QuotientError, QuotientOptions,
};
use protoquot_spec::trace::traces_up_to;
use protoquot_spec::{
    bisimilar, compose, is_normal_form, minimize, normalize, satisfies, Alphabet, Spec, SpecBuilder,
};

/// A random specification over up to `max_states` states and the given
/// event pool; `int_edges` controls internal-transition count.
fn arb_spec(
    name: &'static str,
    events: &'static [&'static str],
    max_states: usize,
) -> impl Strategy<Value = Spec> {
    let st = 1..=max_states;
    st.prop_flat_map(move |n| {
        let edge = (0..n, 0..events.len(), 0..n);
        let internal = (0..n, 0..n);
        (
            proptest::collection::vec(edge, 0..(3 * n + 1)),
            proptest::collection::vec(internal, 0..n),
        )
            .prop_map(move |(edges, internals)| {
                let mut b = SpecBuilder::new(name);
                let ids: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
                for (s, e, t) in edges {
                    b.ext(ids[s], events[e], ids[t]);
                }
                for (s, t) in internals {
                    b.int(ids[s], ids[t]);
                }
                for e in events {
                    b.event(e);
                }
                b.build().expect("random spec is valid")
            })
    })
}

const EV_A: &[&str] = &["pa", "pb", "pc"];
const EV_SHARED: &[&str] = &["pc", "pd"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn composition_is_commutative_up_to_bisimilarity(
        a in arb_spec("A", EV_A, 4),
        b in arb_spec("B", EV_SHARED, 4),
    ) {
        let ab = compose(&a, &b);
        let ba = compose(&b, &a);
        prop_assert!(bisimilar(&ab, &ba));
    }

    #[test]
    fn composition_with_empty_interface_is_interleaving_size(
        a in arb_spec("A", &["xa"], 4),
        b in arb_spec("B", &["xb"], 4),
    ) {
        // Disjoint alphabets: reachable product ≤ |A|·|B| states and the
        // alphabet is the union.
        let ab = compose(&a, &b);
        prop_assert!(ab.num_states() <= a.num_states() * b.num_states());
        prop_assert_eq!(ab.alphabet(), &a.alphabet().union(b.alphabet()));
    }

    #[test]
    fn normalization_yields_normal_form_and_preserves_traces(
        a in arb_spec("A", EV_A, 5),
    ) {
        let na = normalize(&a);
        prop_assert!(is_normal_form(na.spec()));
        let orig: std::collections::HashSet<_> =
            traces_up_to(&a, 4).into_iter().collect();
        let norm: std::collections::HashSet<_> =
            traces_up_to(na.spec(), 4).into_iter().collect();
        prop_assert_eq!(orig, norm);
    }

    #[test]
    fn normalization_preserves_satisfaction(
        a in arb_spec("A", EV_A, 4),
        b in arb_spec("B", EV_A, 4),
    ) {
        // B ⊨ A iff B ⊨ normalize(A).
        let na = normalize(&a);
        let direct = satisfies(&b, &a).unwrap();
        let via_norm = satisfies(&b, na.spec()).unwrap();
        prop_assert_eq!(direct.is_ok(), via_norm.is_ok());
    }

    #[test]
    fn minimization_preserves_bisimilarity_and_shrinks(
        a in arb_spec("A", EV_A, 5),
    ) {
        let m = minimize(&a);
        prop_assert!(bisimilar(&a, &m));
        prop_assert!(m.num_states() <= a.num_states());
        // Idempotent.
        let mm = minimize(&m);
        prop_assert_eq!(mm.num_states(), m.num_states());
    }

    #[test]
    fn serde_roundtrip_exact(a in arb_spec("A", EV_A, 5)) {
        let json = serde_json::to_string(&a).unwrap();
        let back: Spec = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn speclang_roundtrip_exact(a in arb_spec("A", EV_A, 5)) {
        let text = protoquot_speclang::print_spec(&a);
        let back = protoquot_speclang::parse_spec(&text).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn sink_collapse_preserves_traces(a in arb_spec("A", EV_A, 5)) {
        let c = protoquot_spec::collapse_sinks(&a);
        let orig: std::collections::HashSet<_> =
            traces_up_to(&a, 4).into_iter().collect();
        let coll: std::collections::HashSet<_> =
            traces_up_to(&c, 4).into_iter().collect();
        prop_assert_eq!(orig, coll);
    }
}

/// Random quotient problems: B over {acc, del, m0, m1}, service over
/// {acc, del}. Whatever the solver answers must be consistent.
fn arb_quotient_problem() -> impl Strategy<Value = (Spec, Spec, Alphabet)> {
    let b = arb_spec("B", &["acc", "del", "m0", "m1"], 5);
    let a = arb_spec("A", &["acc", "del"], 3);
    (b, a).prop_map(|(b, a)| (b, a, Alphabet::from_names(["m0", "m1"])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_derived_quotient_verifies((b, a, int) in arb_quotient_problem()) {
        match solve(&b, &a, &int) {
            Ok(q) => {
                prop_assert!(q.converter.is_internal_free());
                prop_assert_eq!(q.converter.alphabet(), &int);
                let v = verify_converter(&b, &a, &q.converter);
                prop_assert!(v.is_ok(), "verification failed: {:?}", v.err());
            }
            Err(QuotientError::NoSafeConverter { .. }) => {
                // Corroborate: the safety-only baseline agrees.
                prop_assert!(matches!(
                    protoquot_baselines::submodule_construction(&b, &a, &int),
                    Err(protoquot_baselines::SubmoduleError::NoSafeConverter)
                ));
            }
            Err(QuotientError::NoProgressingConverter { safety_output, .. }) => {
                // The safety output exists and is safe, but composing it
                // in does not satisfy the full service.
                let composite = compose(&b, &safety_output);
                prop_assert!(
                    protoquot_spec::satisfies_safety(&composite, &a).unwrap().is_ok()
                );
                prop_assert!(satisfies(&composite, &a).unwrap().is_err());
            }
            Err(QuotientError::BadProblem(e)) => {
                prop_assert!(false, "problem should be valid: {e}");
            }
            Err(QuotientError::StateBudgetExceeded { .. }) => {
                // Cannot happen at these sizes.
                prop_assert!(false, "budget exceeded on a tiny problem");
            }
        }
    }

    #[test]
    fn progress_strategies_both_verify((b, a, int) in arb_quotient_problem()) {
        // The paper-exact full-product strategy and the reachable-product
        // refinement must agree on existence; both outputs (when they
        // exist) verify, and the refinement keeps at least as much.
        let full = solve(&b, &a, &int);
        let reach = solve_with(
            &b,
            &a,
            &int,
            &QuotientOptions {
                strategy: ProgressStrategy::ReachableProduct,
                ..Default::default()
            },
        );
        match (full, reach) {
            (Ok(qf), Ok(qr)) => {
                let vf = verify_converter(&b, &a, &qf.converter);
                let vr = verify_converter(&b, &a, &qr.converter);
                prop_assert!(vf.is_ok(), "full failed: {:?}", vf.err());
                prop_assert!(vr.is_ok(), "reachable failed: {:?}", vr.err());
                prop_assert!(qr.converter.num_states() >= qf.converter.num_states());
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                // The refinement can only keep more: this must not happen.
                prop_assert!(false, "reachable lost a converter full found: {e}");
            }
            (Err(_), Ok(qr)) => {
                // The refinement may find converters Fig. 6 discards —
                // they must still verify.
                let vr = verify_converter(&b, &a, &qr.converter);
                prop_assert!(vr.is_ok(), "extra reachable converter broken: {:?}", vr.err());
            }
        }
    }

    #[test]
    fn bounded_trace_inclusion_agrees_with_safety_checker(
        b in arb_spec("B", EV_A, 4),
        a in arb_spec("A", EV_A, 4),
    ) {
        // The efficient subset-product safety checker and the brute-force
        // bounded enumerator agree (on the bounded horizon).
        let fast = protoquot_spec::satisfies_safety(&b, &a).unwrap();
        let brute = protoquot_spec::trace::bounded_trace_inclusion(&b, &a, 5);
        match (fast, brute) {
            (Ok(()), Some(cex)) => {
                prop_assert!(
                    false,
                    "checker said safe but {:?} is a counterexample",
                    cex.iter().map(|e| e.name()).collect::<Vec<_>>()
                );
            }
            (Err(protoquot_spec::Violation::Safety { trace }), None) => {
                // The violation must simply be longer than the horizon.
                prop_assert!(trace.len() > 5, "short violation missed by enumerator");
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hand-rolled JSON writer in `spec::serde_impl::to_json`
    /// produces exactly what serde_json would parse back to the same
    /// machine.
    #[test]
    fn hand_rolled_json_parses_with_serde_json(a in arb_spec("A", EV_A, 5)) {
        let hand = protoquot_spec::serde_impl::to_json(&a);
        let back: Spec = serde_json::from_str(&hand).unwrap();
        prop_assert_eq!(back, a);
    }

    /// `satisfies_safety` is a preorder: reflexive and transitive
    /// (trace inclusion).
    #[test]
    fn safety_satisfaction_is_a_preorder(
        a in arb_spec("A", EV_A, 4),
        b in arb_spec("B", EV_A, 4),
        c in arb_spec("C", EV_A, 4),
    ) {
        let holds = |x: &Spec, y: &Spec| {
            matches!(protoquot_spec::satisfies_safety(x, y), Ok(Ok(())))
        };
        prop_assert!(holds(&a, &a));
        if holds(&c, &b) && holds(&b, &a) {
            prop_assert!(holds(&c, &a), "transitivity failed");
        }
    }

    /// Determinization commutes with trace semantics under composition
    /// with a disjoint partner: det(A) ‖ P and A ‖ P have equal trace
    /// sets.
    #[test]
    fn determinize_stable_under_disjoint_composition(
        a in arb_spec("A", EV_A, 4),
        p in arb_spec("P", &["zq"], 3),
    ) {
        let lhs = compose(&protoquot_spec::determinize(&a), &p);
        let rhs = compose(&a, &p);
        prop_assert!(protoquot_spec::language_equal(&lhs, &rhs));
    }
}
