//! End-to-end reproduction of the paper's §5 example (EXP-F12, EXP-F13/14,
//! EXP-W in DESIGN.md):
//!
//! 1. symmetric configuration (Fig. 9): a safety-correct converter
//!    exists (Fig. 12) but no converter satisfies progress — safety and
//!    progress conflict when `Nch` can lose messages;
//! 2. co-located configuration (Fig. 13): the quotient succeeds
//!    (Fig. 14) and the derived converter verifies;
//! 3. weakening the service to at-least-once restores existence for the
//!    symmetric configuration (§5 text).

use protoquot_core::{
    prune_useless, safety_phase, solve, verify_converter, QuotientError, SafetyLimits,
};
use protoquot_protocols::{
    at_least_once, colocated_configuration, exactly_once, symmetric_configuration,
};
use protoquot_spec::{compose, normalize, satisfies, satisfies_safety};

#[test]
fn symmetric_configuration_has_no_converter_but_is_safe() {
    let cfg = symmetric_configuration();
    let service = exactly_once();

    // The full algorithm reports the progress conflict.
    match solve(&cfg.b, &service, &cfg.int) {
        Err(QuotientError::NoProgressingConverter { safety_output, .. }) => {
            // The safety-phase output (paper Fig. 12) is a nonempty,
            // safety-correct converter.
            assert!(safety_output.num_states() > 1);
            let composite = compose(&cfg.b, &safety_output);
            assert!(satisfies_safety(&composite, &service).unwrap().is_ok());
            // ...but it does not satisfy progress (that is the point).
            assert!(satisfies(&composite, &service).unwrap().is_err());
        }
        other => panic!("expected a progress-phase failure, got {other:?}"),
    }
}

#[test]
fn colocated_configuration_yields_verified_converter() {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("paper Fig. 14 converter must exist");
    assert_eq!(q.converter.alphabet(), &cfg.int);
    assert!(q.converter.is_internal_free());
    verify_converter(&cfg.b, &service, &q.converter).expect("derived converter must verify");

    // The paper notes the maximal converter contains superfluous cycles
    // (Fig. 14's dotted boxes); pruning removes behaviour while staying
    // correct.
    let pruned = prune_useless(&cfg.b, &service, &q.converter);
    assert!(pruned.num_external() <= q.converter.num_external());
    verify_converter(&cfg.b, &service, &pruned).expect("pruned converter must verify");
}

#[test]
fn weakened_service_restores_existence_for_symmetric_configuration() {
    let cfg = symmetric_configuration();
    let weak = at_least_once();
    let q = solve(&cfg.b, &weak, &cfg.int)
        .expect("the at-least-once weakening admits a converter (paper §5)");
    verify_converter(&cfg.b, &weak, &q.converter).expect("derived converter must verify");
}

#[test]
fn safety_phase_output_matches_figure_12_scale() {
    // Fig. 12 shows a converter of about 18 states (numbered 0..17).
    // Our reconstruction yields 47 (the duplex channels carry more
    // distinguishable contents than the paper's drawing); the same
    // order of magnitude, and — the claim that matters — safe but not
    // progress-correct (checked in
    // `symmetric_configuration_has_no_converter_but_is_safe`).
    let cfg = symmetric_configuration();
    let na = normalize(&exactly_once());
    let s = safety_phase(&cfg.b, &na, &cfg.int, false, SafetyLimits::default())
        .unwrap()
        .expect("safety phase succeeds");
    assert!(
        (8..=80).contains(&s.c0.num_states()),
        "unexpected scale: {} states",
        s.c0.num_states()
    );
}

/// The §6 symmetric gateway (lossy network services on both legs of
/// Figure 17) has no converter — the same safety/progress conflict as
/// the §5 symmetric configuration, at transport scale.
#[test]
fn symmetric_gateway_has_no_converter() {
    use protoquot_protocols::gateway::{connection_service, symmetric_gateway};
    let cfg = symmetric_gateway();
    assert!(cfg.b.num_states() > 1000, "transport-scale composite");
    match solve(&cfg.b, &connection_service(), &cfg.int) {
        Err(QuotientError::NoProgressingConverter { .. }) => {}
        other => panic!("expected the progress conflict, got {other:?}"),
    }
}
