//! Cross-transport differential: the drive report is a property of the
//! *system and schedule*, not of the carrier. The same campaign config
//! must produce byte-identical [`DriveReport`] JSON over
//!
//! * the in-memory loopback (no wire at all),
//! * the blocking thread-per-connection TCP server,
//! * the reactor server driven by lockstep clients, and
//! * the reactor server driven by multiplexed sessions
//!   (`sessions_per_conn` > 1 over a [`MuxClient`]),
//!
//! for a statically verified converter *and* for a rejected mutant —
//! i.e. conviction outcomes agree across transports frame for frame.
//! The blocking transport thereby serves as the differential oracle
//! for the reactor.

use protoquot_core::{converter_verdict, solve};
use protoquot_protocols::{colocated_configuration, exactly_once};
use protoquot_runtime::{
    drive, drive_mux, Conn, DriveConfig, DriveReport, Gateway, GatewayConfig, LoopbackConn,
    MuxClient, MuxTransport, ReactorConfig, ReactorServer, TcpConn, TcpServer,
};
use protoquot_sim::{redirect_transition, FaultPlan};
use protoquot_spec::Spec;

fn config(runs: u64, threads: usize, sessions_per_conn: u64) -> DriveConfig {
    DriveConfig {
        runs,
        threads,
        seed: 0x5EAC_7012,
        max_steps: 400,
        faults: FaultPlan::parse("loss,dup,reorder").unwrap(),
        sessions_per_conn,
        ..DriveConfig::default()
    }
}

/// A fresh gateway per campaign: closed sessions are tombstoned until
/// idle eviction, and every campaign reuses run indices as session ids.
/// `batching: false` is the per-frame dispatch oracle for the batched
/// hot path (`--no-batch` on the CLI).
fn gateway_with(components: &[Spec], service: &Spec, batching: bool) -> Gateway {
    let parts: Vec<&Spec> = components.iter().collect();
    let cfg = GatewayConfig {
        batching,
        ..GatewayConfig::default()
    };
    Gateway::new(&parts, service, cfg).expect("gateway must compile the system")
}

fn gateway(components: &[Spec], service: &Spec) -> Gateway {
    gateway_with(components, service, true)
}

/// One campaign over the named carrier, with its own server teardown.
fn campaign(
    carrier: &str,
    components: &[Spec],
    service: &Spec,
    cfg: &DriveConfig,
) -> (DriveReport, u64, u64) {
    campaign_with(carrier, components, service, cfg, true)
}

/// [`campaign`] with the gateway's batched dispatch switched on or off.
fn campaign_with(
    carrier: &str,
    components: &[Spec],
    service: &Spec,
    cfg: &DriveConfig,
    batching: bool,
) -> (DriveReport, u64, u64) {
    let gw = gateway_with(components, service, batching);
    let report = match carrier {
        "loopback" => drive(components, service, cfg, || {
            Ok(Box::new(LoopbackConn::new(gw.clone())) as Box<dyn Conn>)
        }),
        "blocking" => {
            let mut server = TcpServer::bind(gw.clone(), "127.0.0.1:0").expect("bind");
            let addr = server.local_addr();
            let report = drive(components, service, cfg, move || {
                TcpConn::connect(addr).map(|c| Box::new(c) as Box<dyn Conn>)
            });
            server.stop();
            report
        }
        "reactor-lockstep" => {
            let mut server =
                ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default())
                    .expect("bind");
            let addr = server.local_addr();
            let report = drive(components, service, cfg, move || {
                TcpConn::connect(addr).map(|c| Box::new(c) as Box<dyn Conn>)
            });
            server.stop();
            report
        }
        "reactor-mux" => {
            let mut server =
                ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default())
                    .expect("bind");
            let addr = server.local_addr();
            let report = drive_mux(components, service, cfg, move || {
                MuxClient::connect(addr).map(|c| Box::new(c) as Box<dyn MuxTransport>)
            });
            server.stop();
            report
        }
        other => panic!("unknown carrier {other}"),
    };
    gw.drain();
    let snap = gw.stats();
    assert_eq!(
        snap.convictions, report.convicted_runs,
        "{carrier}: gateway conviction counter disagrees with the drive report"
    );
    (report, snap.connections_opened, snap.connections_closed)
}

#[test]
fn reports_identical_across_all_transports() {
    let system = colocated_configuration();
    let service = exactly_once();
    let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
    let mutant = (0..8)
        .find_map(|k| {
            let m = redirect_transition(&q.converter, k)?;
            let ok = converter_verdict(&system.b, &service, &m)
                .map(|v| v.is_ok())
                .unwrap_or(false);
            (!ok).then_some(m)
        })
        .expect("some single-transition mutant is statically rejected");

    for (label, converter, expect_clean) in
        [("derived", &q.converter, true), ("mutant", &mutant, false)]
    {
        let components = [system.b.clone(), converter.clone()];
        let cfg = config(32, 2, 8);
        let (baseline, _, _) = campaign("loopback", &components, &service, &cfg);
        assert_eq!(
            baseline.is_clean(),
            expect_clean,
            "{label}: unexpected loopback verdict: {baseline}"
        );
        if expect_clean {
            assert!(baseline.accepted > 0, "{label}: campaign relayed nothing");
        } else {
            assert!(baseline.convicted_runs > 0, "{label}: no convictions");
        }
        for carrier in ["blocking", "reactor-lockstep", "reactor-mux"] {
            let (report, opened, closed) = campaign(carrier, &components, &service, &cfg);
            assert_eq!(
                baseline.to_json(),
                report.to_json(),
                "{label}: {carrier} diverges from the loopback baseline"
            );
            assert!(opened > 0, "{label}: {carrier} opened no connections");
            assert_eq!(
                opened, closed,
                "{label}: {carrier} leaked connections ({opened} opened, {closed} closed)"
            );
        }
    }
}

/// The batched wire hot path against its per-frame oracle: with
/// `GatewayConfig::batching` off, every carrier falls back to one
/// `Gateway::call`-style dispatch per frame (boxed responder, waker
/// round-trip). Fixed-seed campaigns must be byte-identical either
/// way — for the verified converter and for a convicted mutant alike,
/// so conviction outcomes (and their counts) carry over exactly.
#[test]
fn batched_and_per_frame_dispatch_agree_across_transports() {
    let system = colocated_configuration();
    let service = exactly_once();
    let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
    let mutant = (0..8)
        .find_map(|k| {
            let m = redirect_transition(&q.converter, k)?;
            let ok = converter_verdict(&system.b, &service, &m)
                .map(|v| v.is_ok())
                .unwrap_or(false);
            (!ok).then_some(m)
        })
        .expect("some single-transition mutant is statically rejected");

    for (label, converter, expect_clean) in
        [("derived", &q.converter, true), ("mutant", &mutant, false)]
    {
        let components = [system.b.clone(), converter.clone()];
        let cfg = config(24, 2, 8);
        for carrier in ["loopback", "blocking", "reactor-mux"] {
            let (batched, _, _) = campaign_with(carrier, &components, &service, &cfg, true);
            let (per_frame, _, _) = campaign_with(carrier, &components, &service, &cfg, false);
            assert_eq!(
                batched.to_json(),
                per_frame.to_json(),
                "{label}: {carrier} batched dispatch diverges from per-frame dispatch"
            );
            assert_eq!(batched.is_clean(), expect_clean, "{label}: {carrier}");
            if !expect_clean {
                assert!(
                    batched.convicted_runs > 0,
                    "{label}: {carrier} lost the convictions"
                );
            }
        }
    }
}

/// Client-side pipelining composes with the server's batched dispatch:
/// a clean campaign driven with a deep speculation window over the
/// reactor produces the same report as the unpipelined multiplexed
/// campaign (which in turn equals the loopback baseline).
#[test]
fn pipelined_reactor_campaigns_match_lockstep() {
    let system = colocated_configuration();
    let service = exactly_once();
    let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
    let components = [system.b.clone(), q.converter.clone()];
    let cfg = config(24, 2, 8);
    let (baseline, _, _) = campaign("reactor-mux", &components, &service, &cfg);
    assert!(baseline.is_clean(), "verified converter convicted");
    for pipeline in [4u64, 16] {
        let piped_cfg = DriveConfig {
            pipeline,
            ..config(24, 2, 8)
        };
        let (piped, _, _) = campaign("reactor-mux", &components, &service, &piped_cfg);
        assert_eq!(
            baseline.to_json(),
            piped.to_json(),
            "pipeline depth {pipeline} changed the reactor campaign report"
        );
    }
}

/// The multiplexed driver holds a thousand concurrent sessions per
/// connection over the reactor without convictions, transport errors,
/// or report divergence — a scaled-down rehearsal of the 100k+ target
/// documented in EXPERIMENTS.md (EXP-R3).
#[test]
fn reactor_sustains_a_thousand_sessions_per_connection() {
    let system = colocated_configuration();
    let service = exactly_once();
    let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
    let components = [system.b.clone(), q.converter.clone()];
    let cfg = DriveConfig {
        runs: 2000,
        threads: 2,
        seed: 0x1000_5E55,
        max_steps: 120,
        faults: FaultPlan::parse("loss").unwrap(),
        sessions_per_conn: 1000,
        ..DriveConfig::default()
    };
    let gw = gateway(&components, &service);
    let mut server =
        ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default()).expect("bind");
    let addr = server.local_addr();
    let report = drive_mux(&components, &service, &cfg, move || {
        MuxClient::connect(addr).map(|c| Box::new(c) as Box<dyn MuxTransport>)
    });
    server.stop();
    gw.drain();
    assert_eq!(report.runs, 2000);
    assert!(report.is_clean(), "verified converter convicted: {report}");
    assert!(report.accepted > 0, "no frames relayed");
    let snap = gw.stats();
    // 2000 sessions crossed at most two sockets.
    assert!(
        snap.connections_opened <= 2,
        "expected at most one connection per driver thread, saw {}",
        snap.connections_opened
    );
    assert_eq!(snap.sessions_opened, 2000, "every run is one session");
}
