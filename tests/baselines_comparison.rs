//! The paper's qualitative comparison against prior methods (§§1–2),
//! reproduced as executable tests:
//!
//! * **Okumura (bottom-up)**: couples the missing halves (A1, N0) of
//!   the two protocols under a seed and produces a converter — but that
//!   success says nothing about the *global* service; checking it
//!   against exactly-once is still necessary and (in the symmetric
//!   placement) fails, which is the paper's argument for top-down.
//! * **Lam (projection)**: the AB and NS systems have no common image
//!   preserving exactly-once semantics (NS's image service is strictly
//!   weaker), so the stateless-converter route is unavailable — again
//!   motivating the quotient.
//! * **Merlin–Bochmann (safety only)**: agrees with the quotient's
//!   safety phase by construction; its answer for the symmetric
//!   configuration deadlocks, which the progress phase detects.

use protoquot_baselines::{
    okumura_converter, project, stateless_converter, submodule_construction, Projection,
};
use protoquot_core::{solve, verify_converter};
use protoquot_protocols::{
    ab_receiver, colocated_configuration, exactly_once, ns_sender, symmetric_configuration,
};
use protoquot_spec::{compose, satisfies, satisfies_safety, Alphabet, SpecBuilder};

/// Okumura's inputs for the AB→NS conversion: the missing halves are
/// the AB receiver (toward A0) and the NS sender (toward N1), coupled
/// by handing each delivered message over: `del` and `acc` both
/// renamed to the coupling event `xfer`.
#[test]
fn okumura_builds_a_converter_that_fails_the_global_service() {
    let del = protoquot_spec::EventId::new("del");
    let acc = protoquot_spec::EventId::new("acc");
    let xfer = protoquot_spec::EventId::new("xfer");
    let p_half = ab_receiver().rename_event(del, xfer).unwrap();
    let q_half = ns_sender().rename_event(acc, xfer).unwrap();
    // Unconstrained seed over the coupling event.
    let mut sb = SpecBuilder::new("seed");
    let s0 = sb.state("s0");
    sb.ext(s0, "xfer", s0);
    let seed = sb.build().unwrap();

    let conv = okumura_converter(&p_half, &q_half, &seed, &Alphabet::from_names(["xfer"]))
        .expect("bottom-up coupling succeeds");
    // Bottom-up "success": a nonempty converter over the channel events.
    assert!(conv.num_states() > 1);

    // But drop it into the symmetric conversion system and check the
    // global service — the necessary step the bottom-up method leaves
    // to the user — and it does NOT satisfy exactly-once.
    let cfg = symmetric_configuration();
    // The converter's interface must match Int; Okumura's converter
    // carries A1/N0 channel events plus t_N, which is exactly Int here.
    assert_eq!(conv.alphabet(), &cfg.int, "interface mismatch");
    let composite = compose(&cfg.b, &conv);
    let verdict = satisfies(&composite, &exactly_once()).unwrap();
    assert!(
        verdict.is_err(),
        "the paper's point: bottom-up success must still be checked globally"
    );
    // The top-down method already told us no converter exists at all.
    assert!(solve(&cfg.b, &exactly_once(), &cfg.int).is_err());
}

/// In the co-located configuration a converter exists, and Okumura's
/// construction can find it — but only under the *right* conversion
/// seed. This test shows both halves of the story:
///
/// * with an unconstrained seed, the coupled halves interleave freely
///   and the AB half acknowledges before the NS ack returns — the
///   resulting converter is bottom-up "successful" yet globally wrong;
/// * with a seed that orders `xfer` → `-A` → `-a*`, the construction
///   yields a globally correct converter.
///
/// Choosing that seed required knowing the answer — the top-down
/// method's argument in a nutshell.
#[test]
fn okumura_needs_the_right_seed_in_colocated_configuration() {
    let del = protoquot_spec::EventId::new("del");
    let acc = protoquot_spec::EventId::new("acc");
    let _ = acc;
    let xfer = protoquot_spec::EventId::new("xfer");
    let p_half = ab_receiver().rename_event(del, xfer).unwrap();
    // Co-located: the NS sender's channel-facing events are replaced by
    // direct interaction with N1 (+D out, -A in — the converter plays
    // N0's role but talks straight to N1).
    let mut qb = SpecBuilder::new("Q0-direct");
    let q0 = qb.state("q0");
    let q1 = qb.state("q1");
    let q2 = qb.state("q2");
    qb.ext(q0, "xfer", q1);
    qb.ext(q1, "+D", q2); // hand data to N1
    qb.ext(q2, "-A", q0); // take its ack
    let q_half = qb.build().unwrap();
    let cfg = colocated_configuration();

    // Naive unconstrained seed: coupling succeeds, global check fails.
    let mut sb = SpecBuilder::new("seed-naive");
    let s0 = sb.state("s0");
    sb.ext(s0, "xfer", s0);
    let naive = sb.build().unwrap();
    let conv = okumura_converter(&p_half, &q_half, &naive, &Alphabet::from_names(["xfer"]))
        .expect("coupling succeeds");
    assert_eq!(conv.alphabet(), &cfg.int);
    assert!(
        verify_converter(&cfg.b, &exactly_once(), &conv).is_err(),
        "the unconstrained coupling lets the AB side run ahead of N1"
    );

    // Order-enforcing seed: a *fresh* delivery's ack waits for N1's
    // ack (xfer → -A → -a*), while duplicate re-acks — which skip the
    // handover entirely — stay allowed at the idle state.
    let mut sb = SpecBuilder::new("seed-ordered");
    let s0 = sb.state("s0");
    let s1 = sb.state("s1");
    let s2 = sb.state("s2");
    sb.ext(s0, "xfer", s1);
    sb.ext(s1, "-A", s2);
    sb.ext(s2, "-a0", s0);
    sb.ext(s2, "-a1", s0);
    sb.ext(s0, "-a0", s0); // duplicate re-ack
    sb.ext(s0, "-a1", s0); // duplicate re-ack
    let ordered = sb.build().unwrap();
    let conv = okumura_converter(&p_half, &q_half, &ordered, &Alphabet::from_names(["xfer"]))
        .expect("coupling succeeds");
    assert_eq!(conv.alphabet(), &cfg.int);
    verify_converter(&cfg.b, &exactly_once(), &conv)
        .expect("with the right seed, the bottom-up converter is globally correct");
}

/// Lam's projection method: the NS system's faithful image over
/// {acc, del} *is* its behaviour — which duplicates — so no common
/// image with the AB system preserving exactly-once exists.
#[test]
fn projection_finds_no_common_exactly_once_image() {
    use protoquot_protocols::{ab_system, ns_system};
    // Project both systems onto their user-event skeletons (hide
    // nothing; the compositions already hid the internals — the
    // projection aggregates all states with identical futures via
    // minimization).
    let ab_img = protoquot_spec::minimize(&protoquot_spec::normalize(&ab_system()).spec().clone());
    let ns_img = protoquot_spec::minimize(&protoquot_spec::normalize(&ns_system()).spec().clone());
    // The AB image is the exactly-once service; the NS image is not.
    assert!(satisfies_safety(&ab_img, &exactly_once()).unwrap().is_ok());
    assert!(satisfies_safety(&ns_img, &exactly_once()).unwrap().is_err());
    // Hence: no common image.
    assert!(!protoquot_baselines::common_image(&ab_img, &ns_img));
}

/// Where a common image *does* exist — the same protocol under renamed
/// messages — projection yields a stateless converter, the method's
/// sweet spot.
#[test]
fn projection_succeeds_on_renamed_protocol() {
    // "Protocol P": one-slot relay with messages msgP/ackP; "protocol
    // Q": identical with msgQ/ackQ.
    let mk = |msg: &str, ack: &str, name: &str| {
        let mut b = SpecBuilder::new(name);
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, msg, s1);
        b.ext(s1, ack, s0);
        b.build().unwrap()
    };
    let p = mk("msgP", "ackP", "P");
    let q = mk("msgQ", "ackQ", "Q");
    let to_image = |m: &str, a: &str| Projection::new(&[], &[(m, Some("data")), (a, Some("ack"))]);
    let p_img = project(&p, &to_image("msgP", "ackP"), "img").unwrap();
    let q_img = project(&q, &to_image("msgQ", "ackQ"), "img").unwrap();
    assert!(protoquot_baselines::common_image(&p_img, &q_img));
    // The induced stateless converter relays P-messages as Q-messages.
    let conv = stateless_converter(&[("msgP", "msgQ"), ("ackQ", "ackP")]);
    assert!(protoquot_spec::has_trace(
        &conv,
        &protoquot_spec::trace_of(&["msgP", "msgQ", "ackQ", "ackP"])
    ));
}

/// Merlin–Bochmann (safety-only) equals the quotient's safety phase on
/// the paper's configurations.
#[test]
fn safety_only_baseline_matches_safety_phase() {
    let cfg = symmetric_configuration();
    let service = exactly_once();
    let c0 = submodule_construction(&cfg.b, &service, &cfg.int).unwrap();
    match solve(&cfg.b, &service, &cfg.int) {
        Err(protoquot_core::QuotientError::NoProgressingConverter { safety_output, .. }) => {
            assert_eq!(c0.num_states(), safety_output.num_states());
            assert_eq!(c0.num_external(), safety_output.num_external());
            assert!(protoquot_spec::bisimilar(&c0, &safety_output));
        }
        other => panic!("unexpected: {other:?}"),
    }
    // And its answer deadlocks, which only the progress phase can see.
    let composite = compose(&cfg.b, &c0);
    assert!(satisfies_safety(&composite, &service).unwrap().is_ok());
    assert!(satisfies(&composite, &service).unwrap().is_err());
}

/// The top-down answer to conversion seeds: `solve_constrained` accepts
/// the same kind of ordering constraint Okumura's seeds express, but
/// keeps the quotient guarantee — the output is correct by
/// construction (or non-existence is proven), no global re-check
/// required.
#[test]
fn constrained_quotient_subsumes_seeds() {
    let cfg = colocated_configuration();
    let service = exactly_once();
    // The same ordering idea as the "right" Okumura seed: a fresh
    // delivery's AB-ack only after N1's ack; duplicate re-acks free.
    let mut kb = SpecBuilder::new("K");
    let k0 = kb.state("k0");
    let k1 = kb.state("k1");
    kb.ext(k0, "+D", k1);
    kb.ext(k1, "-A", k0);
    for e in ["+d0", "+d1", "-a0", "-a1"] {
        kb.ext(k0, e, k0);
    }
    let k = kb.build().unwrap();
    let q = protoquot_core::solve_constrained(&cfg.b, &k, &service, &cfg.int)
        .expect("a constraint-compatible converter exists");
    // Correct against the *original* B, by construction.
    verify_converter(&cfg.b, &service, &q.converter).unwrap();
    // And the constraint is respected: +D and -A strictly alternate in
    // the converter's own traces.
    let dplus = protoquot_spec::EventId::new("+D");
    for t in protoquot_spec::trace::traces_up_to(&q.converter, 6) {
        let proj: Vec<_> = t
            .iter()
            .filter(|e| e.name() == "+D" || e.name() == "-A")
            .collect();
        for (i, e) in proj.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(**e, dplus, "constraint violated in {t:?}");
            }
        }
    }
}
