//! Dynamic/static agreement: simulated executions of systems never
//! contradict the symbolic `satisfies` verdicts.
//!
//! * systems proven to satisfy a service must run clean (no violation,
//!   no deadlock) for many steps at any loss rate;
//! * systems proven to violate safety must eventually exhibit the
//!   violation under a scheduler that explores losses;
//! * the derived paper converter runs clean inside the real machines.

use protoquot_core::solve;
use protoquot_protocols::{
    ab_channel, ab_receiver, ab_sender, at_least_once, colocated_configuration, exactly_once,
    ns_channel, ns_receiver, ns_sender,
};
use protoquot_sim::{run_monitored, MonitorVerdict, SimConfig};

#[test]
fn ab_system_runs_clean_under_loss() {
    for (seed, loss) in [(1u64, 1u32), (2, 5), (3, 20)] {
        let report = run_monitored(
            vec![ab_sender(), ab_channel(), ab_receiver()],
            &exactly_once(),
            &SimConfig {
                seed,
                max_steps: 20_000,
                internal_weights: vec![(1, loss)],
            },
        );
        assert!(
            report.is_clean(),
            "AB run dirty at loss {loss}: {:?}",
            report.verdict
        );
        let (acc, del) = (report.count("acc"), report.count("del"));
        assert!(acc >= del && acc - del <= 1, "acc={acc} del={del}");
        assert!(del > 0, "no progress at loss {loss}");
    }
}

#[test]
fn ns_system_eventually_duplicates() {
    // The NS system violates exactly-once; with losses likely enough,
    // a duplicate delivery shows up dynamically too.
    let report = run_monitored(
        vec![ns_sender(), ns_channel(), ns_receiver()],
        &exactly_once(),
        &SimConfig {
            seed: 11,
            max_steps: 50_000,
            internal_weights: vec![(1, 10)],
        },
    );
    match report.verdict {
        MonitorVerdict::SafetyViolation { .. } => {}
        MonitorVerdict::Conforming => {
            panic!("expected a duplicate delivery within the step budget")
        }
    }
}

#[test]
fn ns_system_runs_clean_against_its_own_service() {
    let report = run_monitored(
        vec![ns_sender(), ns_channel(), ns_receiver()],
        &at_least_once(),
        &SimConfig {
            seed: 5,
            max_steps: 20_000,
            internal_weights: vec![(1, 10)],
        },
    );
    assert!(report.is_clean(), "{:?}", report.verdict);
    assert!(report.count("del") >= report.count("acc"));
}

#[test]
fn derived_converter_runs_clean_at_every_loss_rate() {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).unwrap();
    for loss in [0u32, 1, 10, 50] {
        let report = run_monitored(
            vec![
                ab_sender(),
                ab_channel(),
                q.converter.clone(),
                ns_receiver(),
            ],
            &service,
            &SimConfig {
                seed: 99,
                max_steps: 30_000,
                internal_weights: vec![(1, loss)],
            },
        );
        assert!(
            report.is_clean(),
            "converter run dirty at loss {loss}: {:?}",
            report.verdict
        );
        let (acc, del) = (report.count("acc"), report.count("del"));
        assert!(acc >= del && acc - del <= 1, "acc={acc} del={del}");
        if loss < 50 {
            assert!(del > 0, "no progress at loss {loss}");
        }
    }
}

#[test]
fn naive_gateway_violates_dynamically_too() {
    use protoquot_protocols::gateway::{
        connection_service, naive_passthrough, transport_a_initiator, transport_b_responder,
    };
    // Statically the naive pass-through breaks orderly close; the
    // random scheduler finds the same witness. (The user hurries: close
    // fires as soon as permitted — AlwaysEnabled externals model the
    // most eager environment.)
    let mut violated = false;
    for seed in 0..20 {
        let report = run_monitored(
            vec![
                transport_a_initiator(),
                naive_passthrough(),
                transport_b_responder(),
            ],
            &connection_service(),
            &SimConfig {
                seed,
                max_steps: 1_000,
                internal_weights: vec![],
            },
        );
        if matches!(report.verdict, MonitorVerdict::SafetyViolation { .. }) {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "orderly-close violation never observed dynamically"
    );
}

/// The exhaustive explorer and the symbolic safety checker agree on the
/// paper's systems (closed-system cross-validation of two independent
/// implementations of the semantics).
#[test]
fn explorer_agrees_with_symbolic_checker() {
    use protoquot_protocols::{ab_system, nak_system_fully_corrupting, ns_system};
    use protoquot_sim::explore;
    use protoquot_spec::satisfies_safety;

    // AB vs exactly-once: both say safe; explorer also proves no
    // deadlock exists anywhere in the reachable space.
    let r = explore(
        vec![
            protoquot_protocols::ab_sender(),
            protoquot_protocols::ab_channel(),
            protoquot_protocols::ab_receiver(),
        ],
        &exactly_once(),
        100_000,
    );
    assert!(r.is_clean(), "{r:?}");
    assert!(satisfies_safety(&ab_system(), &exactly_once())
        .unwrap()
        .is_ok());

    // NS vs exactly-once: both find the duplicate delivery; the
    // explorer's shortest witness matches the checker's.
    let r = explore(
        vec![
            protoquot_protocols::ns_sender(),
            protoquot_protocols::ns_channel(),
            protoquot_protocols::ns_receiver(),
        ],
        &exactly_once(),
        100_000,
    );
    let (prefix, event) = r.violation.expect("duplicate found exhaustively");
    assert_eq!(event.name(), "del");
    assert_eq!(prefix.last().unwrap().name(), "del");
    assert!(satisfies_safety(&ns_system(), &exactly_once())
        .unwrap()
        .is_err());

    // NAK fully-corrupting: same story through a different protocol.
    let r = explore(
        vec![
            protoquot_protocols::nak_sender(),
            protoquot_protocols::nak::nak_data_channel(),
            protoquot_protocols::nak::nak_return_channel_corrupting(),
            protoquot_protocols::nak_receiver(),
        ],
        &exactly_once(),
        100_000,
    );
    assert!(r.violation.is_some());
    assert!(
        satisfies_safety(&nak_system_fully_corrupting(), &exactly_once())
            .unwrap()
            .is_err()
    );
}

/// The derived paper converter explored exhaustively: every reachable
/// global state is safe and deadlock-free — stronger than any number of
/// random runs.
#[test]
fn derived_converter_exhaustively_clean() {
    use protoquot_sim::explore;
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).unwrap();
    let r = explore(
        vec![ab_sender(), ab_channel(), q.converter, ns_receiver()],
        &service,
        1_000_000,
    );
    assert!(r.is_clean(), "{r:?}");
    assert!(r.states_visited > 20, "visited {}", r.states_visited);
}
