//! Differential test for the compiled verification engine: on every
//! benchmark-family instance, a sweep of random components, both paper
//! §5 configurations and the AB↔NAK gateway, the engine verdict
//! ([`protoquot_core::converter_verdict_with`], built on
//! [`protoquot_spec::verify_system`]) must be **bit-identical** to the
//! retained reference oracle
//! ([`protoquot_core::converter_verdict_reference`] = pairwise
//! `compose` + interpreted `satisfies`) — same verdict shape, same
//! witness trace event-for-event, same `Progress` state/needed/offered
//! contents — at 1, 2 and 8 worker threads alike. Engine counters must
//! not depend on the thread count either.

use protoquot_core::{converter_verdict_reference, converter_verdict_with, solve};
use protoquot_protocols::{
    ab_to_nak_configuration, colocated_configuration, exactly_once, nfa_blowup, random_component,
    relay_chain, symmetric_configuration, toggle_puzzle, windowed, Configuration, RandomParams,
};
use protoquot_spec::{Alphabet, Spec, SpecBuilder, VerifyEngineStats, Violation};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A converter over `int` that declares every interface event but
/// enables none: composing it with `B` freezes all interaction on
/// `Int`, which typically manifests as a progress violation — a cheap
/// way to drive every problem instance down the violation path.
fn stuck_converter(int: &Alphabet) -> Spec {
    let mut cb = SpecBuilder::new("stuck");
    cb.state("c0");
    for e in int.iter() {
        cb.event(&e.name());
    }
    cb.build().expect("stuck converter is well-formed")
}

/// Rebuilds `c` without its last external transition (same states,
/// same alphabet): a minimal mutation that keeps the interface intact
/// while usually breaking satisfaction somewhere deep in the product.
fn drop_last_transition(c: &Spec) -> Spec {
    let edges: Vec<_> = c.external_transitions().collect();
    let mut cb = SpecBuilder::new("mutant");
    let ids: Vec<_> = c.states().map(|s| cb.state(c.state_name(s))).collect();
    for e in c.alphabet().iter() {
        cb.event(&e.name());
    }
    for &(f, e, t) in &edges[..edges.len().saturating_sub(1)] {
        cb.ext(ids[f.index()], &e.name(), ids[t.index()]);
    }
    for (f, t) in c.internal_transitions() {
        cb.int(ids[f.index()], ids[t.index()]);
    }
    cb.initial(ids[c.initial().index()]);
    cb.build().expect("mutant converter is well-formed")
}

fn assert_violation_eq(label: &str, threads: usize, r: &Violation, e: &Violation) {
    match (r, e) {
        (Violation::Safety { trace: rt }, Violation::Safety { trace: et }) => {
            assert_eq!(
                et, rt,
                "{label} / threads={threads}: safety witness differs"
            );
        }
        (
            Violation::Progress {
                trace: rt,
                state: rs,
                needed: rn,
                offered: ro,
            },
            Violation::Progress {
                trace: et,
                state: es,
                needed: en,
                offered: eo,
            },
        ) => {
            assert_eq!(
                et, rt,
                "{label} / threads={threads}: progress trace differs"
            );
            assert_eq!(
                es, rs,
                "{label} / threads={threads}: progress state differs"
            );
            assert_eq!(en, rn, "{label} / threads={threads}: needed sets differ");
            assert_eq!(eo, ro, "{label} / threads={threads}: offered set differs");
        }
        _ => panic!(
            "{label} / threads={threads}: violation kind differs (reference {r:?}, engine {e:?})"
        ),
    }
}

/// Runs the engine against the reference on one `(B, A, C)` problem and
/// asserts bit-identical verdicts at every thread count, plus
/// thread-invariant engine counters. Returns true when the converter
/// actually works (callers count coverage of the `Ok` path).
fn verdicts_agree(label: &str, b: &Spec, service: &Spec, converter: &Spec) -> bool {
    let reference = converter_verdict_reference(b, service, converter);
    let mut base_stats: Option<VerifyEngineStats> = None;
    for threads in THREAD_COUNTS {
        let engine = converter_verdict_with(b, service, converter, threads);
        match (&reference, &engine) {
            (Ok(r), Ok((e, stats))) => {
                match (r, e) {
                    (Ok(()), Ok(())) => {}
                    (Err(rv), Err(ev)) => assert_violation_eq(label, threads, rv, ev),
                    _ => panic!(
                        "{label} / threads={threads}: verdict differs \
                         (reference {r:?}, engine {e:?})"
                    ),
                }
                assert_eq!(stats.threads, threads, "{label}: stats.threads");
                match &base_stats {
                    None => base_stats = Some(*stats),
                    Some(first) => {
                        assert_eq!(stats.states, first.states, "{label}: stats.states varies");
                        assert_eq!(
                            stats.transitions, first.transitions,
                            "{label}: stats.transitions varies"
                        );
                        assert_eq!(stats.hubs, first.hubs, "{label}: stats.hubs varies");
                        assert_eq!(stats.pairs, first.pairs, "{label}: stats.pairs varies");
                        assert_eq!(
                            stats.dedup_hits, first.dedup_hits,
                            "{label}: stats.dedup_hits varies"
                        );
                        assert_eq!(
                            stats.arena_bytes, first.arena_bytes,
                            "{label}: stats.arena_bytes varies"
                        );
                    }
                }
            }
            (Err(r), Err(e)) => assert_eq!(
                r.to_string(),
                e.to_string(),
                "{label} / threads={threads}: setup error differs"
            ),
            (r, e) => panic!(
                "{label} / threads={threads}: outcome shape differs \
                 (reference ok={:?}, engine ok={:?})",
                r.is_ok(),
                e.is_ok()
            ),
        }
    }
    matches!(&reference, Ok(Ok(())))
}

/// Exercises one quotient problem end to end: the derived converter
/// (when one exists), a mutated variant of it, and the always-stuck
/// converter. Returns true when a converter was derived.
fn problem_agrees(label: &str, b: &Spec, service: &Spec, int: &Alphabet) -> bool {
    let derived = solve(b, service, int).ok().map(|q| q.converter);
    if let Some(c) = &derived {
        assert!(
            verdicts_agree(&format!("{label}/derived"), b, service, c),
            "{label}: derived converter must verify"
        );
        if c.external_transitions().next().is_some() {
            let mutant = drop_last_transition(c);
            verdicts_agree(&format!("{label}/mutant"), b, service, &mutant);
        }
    }
    verdicts_agree(&format!("{label}/stuck"), b, service, &stuck_converter(int));
    derived.is_some()
}

#[test]
fn engine_agrees_on_scaling_families() {
    let service = exactly_once();
    for n in [1usize, 2, 3, 5, 8, 12] {
        let (b, int) = relay_chain(n);
        problem_agrees(&format!("relay-chain({n})"), &b, &service, &int);
    }
    for n in [1usize, 2, 3, 4, 5] {
        let (b, int) = toggle_puzzle(n);
        problem_agrees(&format!("toggle-puzzle({n})"), &b, &service, &int);
    }
    for n in [1usize, 3, 5, 7, 9] {
        let (b, int) = nfa_blowup(n);
        problem_agrees(&format!("nfa-blowup({n})"), &b, &service, &int);
    }
    // Windowed services exercise multi-hub normal forms and multi-set
    // acceptance in the progress scan.
    for w in [1usize, 2, 3] {
        let (b, int) = relay_chain(2 * w + 2);
        problem_agrees(
            &format!("relay-chain/windowed({w})"),
            &b,
            &windowed(w),
            &int,
        );
    }
}

#[test]
fn engine_agrees_on_random_components() {
    // Random components are deadlock-prone enough that none of the 40
    // seeds admits a full converter (the safety-differential sweep only
    // requires the *safety phase* to succeed), so the coverage bar here
    // is that every seed reaches a definite verdict: the stuck-converter
    // product must be fully explored — composition, normalization,
    // progress scan — and both implementations must report the same
    // violation bit for bit.
    let service = exactly_once();
    let mut definite = 0usize;
    for seed in 0..40u64 {
        let (b, int) = random_component(seed, RandomParams::default());
        problem_agrees(&format!("random({seed})"), &b, &service, &int);
        let stuck = stuck_converter(&int);
        if matches!(
            converter_verdict_reference(&b, &service, &stuck),
            Ok(Err(_))
        ) {
            definite += 1;
        }
    }
    assert_eq!(
        definite, 40,
        "every random instance must reach a definite verdict"
    );
}

#[test]
fn engine_agrees_on_paper_configurations() {
    let service = exactly_once();
    let colocated = colocated_configuration();
    assert!(
        problem_agrees("paper/colocated", &colocated.b, &service, &colocated.int),
        "the co-located configuration has a converter (paper Fig. 14)"
    );

    // The Fig. 14 hand-derived converter: the EXP-MAX verified-converter
    // check that `report --quick` times as `verify_ms`.
    let mut cb = SpecBuilder::new("hand");
    let s: Vec<_> = (0..9).map(|i| cb.state(&format!("h{i}"))).collect();
    cb.ext(s[0], "+d0", s[1]);
    cb.ext(s[1], "+D", s[2]);
    cb.ext(s[2], "-A", s[3]);
    cb.ext(s[3], "-a0", s[4]);
    cb.ext(s[4], "+d0", s[3]);
    cb.ext(s[4], "+d1", s[5]);
    cb.ext(s[5], "+D", s[6]);
    cb.ext(s[6], "-A", s[7]);
    cb.ext(s[7], "-a1", s[8]);
    cb.ext(s[8], "+d1", s[7]);
    cb.ext(s[8], "+d0", s[1]);
    let hand = cb.build().expect("Fig. 14 converter is well-formed");
    assert!(
        verdicts_agree("paper/colocated/fig14", &colocated.b, &service, &hand),
        "the Fig. 14 hand converter must verify"
    );

    // The symmetric configuration has no converter at all (§5): only the
    // violation paths are reachable, and the engine must reproduce them.
    let sym = symmetric_configuration();
    assert!(
        !problem_agrees("paper/symmetric", &sym.b, &service, &sym.int),
        "the symmetric configuration must not yield a converter"
    );
}

#[test]
fn engine_agrees_on_ab_nak_gateway() {
    let Configuration { b, int, .. } = ab_to_nak_configuration();
    problem_agrees("gateway/ab-nak", &b, &exactly_once(), &int);
}
