//! Adversarial wire robustness, pinned end to end.
//!
//! Four properties, all over real sockets:
//!
//! 1. **Torn/garbage bytes at every offset through the reactor** — the
//!    blocking `read_frame` path already has per-offset coverage; here
//!    the same hostile prefixes go through the epoll reactor, which
//!    must cut every damaged connection (counted as a `protocol`
//!    eviction) and keep serving honest ones.
//! 2. **Session floods evict, never stall** — the same lockstep flood
//!    against 1-worker and 8-worker gateways must be answered in full
//!    (no stall) and produce *identical* deterministic stats: the
//!    reject histogram, session counts, and eviction taxonomy cannot
//!    depend on worker scheduling.
//! 3. **Slow consumers are counted evictions** — a client that writes
//!    frames but never reads replies must be dropped once the reactor's
//!    outbound buffer cap is hit, and the drop must be visible in
//!    `RuntimeStats` as a `slow_consumer` eviction (the regression for
//!    the formerly silent 4 MiB-cap drop).
//! 4. **The adversarial campaign is transport-invariant** — the full
//!    `drive --adversarial` battery against identically configured
//!    blocking and reactor servers must produce byte-identical report
//!    JSON, with every attack neutralized.

use protoquot_core::solve;
use protoquot_protocols::{colocated_configuration, exactly_once};
use protoquot_runtime::{
    adversarial, table_hash, AdversarialConfig, Conn, ConnLimits, Frame, Gateway, GatewayConfig,
    ReactorConfig, ReactorServer, StatsSnapshot, TcpConn, TcpServer,
};
use protoquot_spec::{EventTable, Spec};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

fn derived_system() -> (Vec<Spec>, Spec) {
    let system = colocated_configuration();
    let service = exactly_once();
    let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
    (vec![system.b, q.converter], service)
}

fn gateway(components: &[Spec], service: &Spec, cfg: GatewayConfig) -> Gateway {
    let parts: Vec<&Spec> = components.iter().collect();
    Gateway::new(&parts, service, cfg).expect("gateway must compile the system")
}

/// Polls `gw` stats until `pred` holds or the deadline passes.
fn wait_for(gw: &Gateway, deadline: Duration, pred: impl Fn(&StatsSnapshot) -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if pred(&gw.stats()) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn evictions(snap: &StatsSnapshot, reason: &str) -> u64 {
    snap.conn_evictions
        .iter()
        .find(|(r, _)| *r == reason)
        .map(|(_, n)| *n)
        .expect("eviction taxonomy covers every reason")
}

/// Hostile prefixes at every offset through the reactor: a valid
/// three-frame stream torn at byte `k`, and the same stream with a
/// corrupting 0xFF spliced in at byte `k`. Every damaged connection is
/// cut (or, for tears at message boundaries, served cleanly); the
/// server answers an honest connection afterwards.
#[test]
fn reactor_survives_torn_and_garbage_bytes_at_every_offset() {
    let (components, service) = derived_system();
    let gw = gateway(&components, &service, GatewayConfig::default());
    let mut server = ReactorServer::bind(
        gw.clone(),
        "127.0.0.1:0",
        ReactorConfig {
            loops: 1,
            ..ReactorConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // A valid wire stream: Event, Stall, Close on one session.
    let mut stream_bytes = Vec::new();
    for frame in [
        Frame::Event {
            session: 9,
            event: 0,
        },
        Frame::Stall { session: 9 },
        Frame::Close { session: 9 },
    ] {
        protoquot_runtime::codec::encode_frame(&frame, &mut stream_bytes);
    }

    // Torn at every offset: send a strict prefix, then EOF.
    for k in 0..stream_bytes.len() {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(&stream_bytes[..k]).expect("prefix write");
        conn.shutdown(Shutdown::Write).expect("half-close");
        // Drain whatever replies the complete frames earned; the
        // server must close the connection promptly either way.
        let mut sink = Vec::new();
        conn.read_to_end(&mut sink)
            .expect("server must close a torn connection, not stall it");
    }

    // Garbage at every offset: valid bytes up to `k`, then 0xFF as a
    // wrecked length prefix once the next message starts.
    for k in 0..stream_bytes.len() {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Enough 0xFF to both complete any partially sent payload
        // (≤ 14 bytes outstanding) and still leave a wrecked length
        // prefix for the message after it.
        let mut bytes = stream_bytes[..k].to_vec();
        bytes.extend_from_slice(&[0xFF; 24]);
        conn.write_all(&bytes).expect("garbage write");
        let mut sink = Vec::new();
        conn.read_to_end(&mut sink)
            .expect("server must cut a garbage connection, not stall it");
    }

    // Damage was counted: every mid-message tear and every corrupt
    // length prefix is a protocol eviction. (Tears at message
    // boundaries are clean closes, not evictions.)
    let snap = gw.stats();
    assert!(
        evictions(&snap, "protocol") > 0,
        "protocol damage left no eviction trace: {snap}"
    );

    // An honest client is still served.
    let mut honest = TcpConn::connect(addr).expect("connect after the abuse");
    let reply = honest
        .call(&Frame::Event {
            session: 777,
            event: 0,
        })
        .expect("honest call after the abuse");
    assert_eq!(reply.session(), 777);
    server.stop();
}

/// The deterministic fields of a snapshot, serialized for equality:
/// everything scheduling-independent that a lockstep campaign pins.
fn deterministic_stats(snap: &StatsSnapshot) -> String {
    format!(
        "opened={} closed={} expelled={} rejects={:?} evictions={:?} accepted={} frames={}",
        snap.sessions_opened,
        snap.sessions_closed,
        snap.sessions_expelled,
        snap.rejects,
        snap.conn_evictions,
        snap.accepted,
        snap.frames,
    )
}

/// A session flood over one connection against a capped server:
/// everything past the cap bounces with `resource_limit`, every frame
/// is answered (no stall), and the resulting stats are identical at 1
/// and 8 gateway workers.
#[test]
fn session_flood_is_evicted_not_stalled_at_any_worker_count() {
    let (components, service) = derived_system();
    let mut stats = Vec::new();
    for workers in [1usize, 8] {
        let gw = gateway(
            &components,
            &service,
            GatewayConfig {
                workers,
                ..GatewayConfig::default()
            },
        );
        let mut server = ReactorServer::bind(
            gw.clone(),
            "127.0.0.1:0",
            ReactorConfig {
                loops: 2,
                limits: ConnLimits {
                    max_sessions_per_conn: 8,
                    ..ConnLimits::default()
                },
                ..ReactorConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();
        let mut conn = TcpConn::connect(addr).expect("connect");
        // 64 fresh sessions on one connection, lockstep. The first 8
        // are admitted; 56 bounce at the transport with
        // `resource_limit` before ever touching the gateway table.
        for s in 0..64u64 {
            let reply = conn
                .call(&Frame::Event {
                    session: s,
                    event: 0,
                })
                .expect("flood frame must be answered, not stalled");
            assert_eq!(reply.session(), s, "reply misattributed");
        }
        // Close the admitted ones so the accounting is settled.
        for s in 0..64u64 {
            conn.call(&Frame::Close { session: s })
                .expect("close must be answered");
        }
        server.stop();
        stats.push(deterministic_stats(&gw.stats()));
    }
    assert_eq!(
        stats[0], stats[1],
        "flood accounting depends on worker count"
    );
    assert!(
        stats[0].contains("(\"resource_limit\", 56)"),
        "cap overflow must bounce with resource_limit: {}",
        stats[0]
    );
}

/// A client that writes frames and never reads replies must be dropped
/// once the reactor's outbound cap is exceeded — and the drop is a
/// counted `slow_consumer` eviction, not a silent disappearance.
#[test]
fn slow_consumer_is_a_counted_eviction() {
    let (components, service) = derived_system();
    let gw = gateway(&components, &service, GatewayConfig::default());
    let mut server = ReactorServer::bind(
        gw.clone(),
        "127.0.0.1:0",
        ReactorConfig {
            loops: 1,
            // Tiny cap so the kernel's socket buffers are the only
            // slack a non-reading client gets.
            outbuf_cap: 4 << 10,
            ..ReactorConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    // Pin the client's kernel receive buffer tiny. An explicit size
    // switches off receive autotuning, so the kernel cannot quietly
    // absorb tens of megabytes of replies on behalf of a client that
    // never reads — the reactor's own cap becomes the binding limit.
    reactor::set_recv_buffer(conn.as_raw_fd(), 4096).expect("clamp client rcvbuf");
    let mut chunk = Vec::new();
    for i in 0..4096u64 {
        protoquot_runtime::codec::encode_frame(
            &Frame::Event {
                session: i % 4,
                event: 0,
            },
            &mut chunk,
        );
    }
    // Keep pouring frames without ever reading replies. The kernel's
    // socket buffers (bounded by rmem_max + wmem_max) absorb replies
    // for a while; once they are full the reactor's 4 KiB cap trips
    // and the server cuts us — a failed write IS the eviction landing.
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if conn.write_all(&chunk).is_err() {
            break;
        }
        if evictions(&gw.stats(), "slow_consumer") > 0 {
            break;
        }
    }
    // The counter is bumped before the drop, so it is visible at the
    // latest shortly after the write side starts failing.
    let evicted = wait_for(&gw, Duration::from_secs(5), |snap| {
        evictions(snap, "slow_consumer") > 0
    });
    let snap = gw.stats();
    assert!(
        evicted,
        "non-reading client was never evicted as a slow consumer: {snap}"
    );
    drop(conn);
    // The pool is not wedged: an honest client still gets answers.
    let mut honest = TcpConn::connect(addr).expect("connect after eviction");
    let reply = honest
        .call(&Frame::Event {
            session: 999_999,
            event: 0,
        })
        .expect("honest call after slow-consumer eviction");
    assert_eq!(reply.session(), 999_999);
    server.stop();
}

/// Writes `lead` to a fresh connection against a strict-hello server,
/// half-closes, and returns every byte the server answered before
/// cutting the connection.
fn refusal_bytes(addr: std::net::SocketAddr, lead: &[u8]) -> Vec<u8> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    conn.write_all(lead).expect("lead write");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut bytes = Vec::new();
    conn.read_to_end(&mut bytes)
        .expect("server must cut a refused connection, not stall it");
    bytes
}

fn rejects(snap: &StatsSnapshot, reason: &str) -> u64 {
    snap.rejects
        .iter()
        .find(|(r, _)| *r == reason)
        .map(|(_, n)| *n)
        .expect("reject taxonomy covers every reason")
}

/// Version negotiation under `require_hello`, pinned across both
/// transports:
///
/// * a peer carrying the gateway's event-table hash is acked and
///   served;
/// * a mismatched hash is answered with one `version_mismatch` reject
///   and cut;
/// * a legacy peer that leads with an event frame (no hello at all)
///   gets the same treatment;
/// * garbage in place of a hello is a protocol eviction, not a stall;
/// * the refusal bytes on the wire are identical between the blocking
///   and reactor servers, and none of it is a conviction.
#[test]
fn hello_negotiation_is_enforced_and_transport_invariant() {
    let (components, service) = derived_system();
    let hash = table_hash(&EventTable::new(service.alphabet()));
    let limits = ConnLimits {
        require_hello: true,
        ..ConnLimits::default()
    };

    // The exact leads every server sees.
    let mut bad_hello = Vec::new();
    protoquot_runtime::codec::encode_frame(
        &Frame::Hello {
            session: 7,
            table_hash: hash ^ 1,
            version: 0,
        },
        &mut bad_hello,
    );
    let mut legacy_lead = Vec::new();
    protoquot_runtime::codec::encode_frame(
        &Frame::Event {
            session: 5,
            event: 0,
        },
        &mut legacy_lead,
    );

    let mut transcripts = Vec::new();
    for reactor_mode in [false, true] {
        let gw = gateway(&components, &service, GatewayConfig::default());
        let (addr, mut stop): (_, Box<dyn FnMut()>) = if reactor_mode {
            let mut server = ReactorServer::bind(
                gw.clone(),
                "127.0.0.1:0",
                ReactorConfig {
                    loops: 1,
                    limits,
                    ..ReactorConfig::default()
                },
            )
            .expect("bind reactor");
            (server.local_addr(), Box::new(move || server.stop()))
        } else {
            let mut server =
                TcpServer::bind_with(gw.clone(), "127.0.0.1:0", limits).expect("bind blocking");
            (server.local_addr(), Box::new(move || server.stop()))
        };

        // A peer with the right hash negotiates and is served.
        let mut honest = TcpConn::connect_negotiated(addr, hash).expect("negotiated connect");
        let reply = honest
            .call(&Frame::Event {
                session: 1,
                event: 0,
            })
            .expect("negotiated peer is served");
        assert_eq!(reply.session(), 1);
        honest
            .call(&Frame::Close { session: 1 })
            .expect("close after service");
        drop(honest);

        // A mismatched hash is refused at connect.
        let err = match TcpConn::connect_negotiated(addr, hash ^ 1) {
            Err(e) => e,
            Ok(_) => panic!("mismatched hash must be refused at hello"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);

        // Raw transcripts: mismatched hello, legacy no-hello lead, and
        // garbage where the hello should be.
        let mismatch = refusal_bytes(addr, &bad_hello);
        let legacy = refusal_bytes(addr, &legacy_lead);
        let garbage = refusal_bytes(addr, &[0xFF; 24]);
        assert!(
            garbage.is_empty(),
            "garbage in place of a hello earned a reply: {garbage:?}"
        );
        // Both refusals decode as a rejected reply carrying the
        // version-mismatch reason, addressed to the offending session.
        for (bytes, session) in [(&mismatch, 7u64), (&legacy, 5u64)] {
            let mut replies = protoquot_runtime::ReplyBuffer::new();
            replies.extend(bytes);
            match replies.next_reply().expect("refusal decodes") {
                Some(protoquot_runtime::Reply::Rejected { session: s, reason }) => {
                    assert_eq!(s, session);
                    assert_eq!(reason.name(), "version_mismatch");
                }
                other => panic!("refusal was not a rejection: {other:?}"),
            }
            assert_eq!(
                replies.next_reply().expect("no trailing bytes"),
                None,
                "refusal must be exactly one reply"
            );
        }

        stop();
        let snap = gw.stats();
        // Three refused peers (connect_negotiated + raw hello + legacy
        // lead), every one counted, none a conviction.
        assert_eq!(
            rejects(&snap, "version_mismatch"),
            3,
            "version mismatches must be counted: {snap}"
        );
        assert_eq!(snap.convictions, 0, "negotiation is not a conviction");
        assert!(
            evictions(&snap, "protocol") > 0,
            "garbage hello must be a protocol eviction: {snap}"
        );
        transcripts.push((mismatch, legacy));
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "hello refusal bytes depend on the transport"
    );
}

/// The full adversarial battery produces byte-identical JSON against
/// identically configured blocking and reactor servers, with every
/// attack neutralized.
#[test]
fn adversarial_report_is_transport_invariant() {
    let (components, service) = derived_system();
    let limits = ConnLimits {
        max_sessions_per_conn: 16,
        read_deadline: Duration::from_millis(100),
        ..ConnLimits::default()
    };
    let cfg = AdversarialConfig {
        frames_per_attack: 32,
        churn_conns: 8,
        drip_hold: Duration::from_millis(600),
        ..AdversarialConfig::default()
    };

    let gw = gateway(&components, &service, GatewayConfig::default());
    let mut blocking = TcpServer::bind_with(gw.clone(), "127.0.0.1:0", limits).expect("bind");
    let blocking_report =
        adversarial(blocking.local_addr(), &cfg).expect("campaign over blocking transport");
    blocking.stop();

    let gw = gateway(&components, &service, GatewayConfig::default());
    let mut reactor = ReactorServer::bind(
        gw.clone(),
        "127.0.0.1:0",
        ReactorConfig {
            loops: 2,
            limits,
            ..ReactorConfig::default()
        },
    )
    .expect("bind");
    let reactor_report =
        adversarial(reactor.local_addr(), &cfg).expect("campaign over reactor transport");
    reactor.stop();

    assert!(
        blocking_report.is_contained(),
        "blocking transport failed to contain the battery:\n{blocking_report}"
    );
    assert!(
        reactor_report.is_contained(),
        "reactor transport failed to contain the battery:\n{reactor_report}"
    );
    assert_eq!(
        blocking_report.to_json(),
        reactor_report.to_json(),
        "adversarial report depends on the transport:\nblocking: {blocking_report}\nreactor: {reactor_report}"
    );
}
