//! Differential test for the incremental progress engine: on every
//! benchmark-family instance and both paper §5 configurations, under
//! both strategies, the incremental fixpoint must produce a
//! state-for-state identical converter — and identical iteration,
//! removal, and witness data — to the retained full-recompute
//! reference implementation (`progress_phase_reference_with`).

use protoquot_core::{
    progress_phase_reference_with, progress_phase_with, safety_phase, ProgressStrategy,
    SafetyLimits,
};
use protoquot_protocols::{
    colocated_configuration, exactly_once, nfa_blowup, random_component, relay_chain,
    symmetric_configuration, toggle_puzzle, windowed, RandomParams,
};
use protoquot_spec::{normalize, Alphabet, Spec};

const STRATEGIES: [ProgressStrategy; 2] = [
    ProgressStrategy::FullProduct,
    ProgressStrategy::ReachableProduct,
];

/// Runs both engines on one quotient problem and asserts equality of
/// everything observable. Returns false when the safety phase yields
/// no `C0` to run progress on (callers count covered instances).
fn engines_agree(label: &str, b: &Spec, service: &Spec, int: &Alphabet) -> bool {
    let na = normalize(service);
    let safety = match safety_phase(b, &na, int, false, SafetyLimits::default()) {
        Ok(Some(s)) => s,
        _ => return false, // unsafe or over budget: no progress phase
    };
    for strategy in STRATEGIES {
        let new = progress_phase_with(b, &na, &safety, strategy);
        let old = progress_phase_reference_with(b, &na, &safety, strategy);
        assert_eq!(
            old.converter, new.converter,
            "{label} / {strategy:?}: converters differ"
        );
        assert_eq!(
            old.iterations, new.iterations,
            "{label} / {strategy:?}: iteration counts differ"
        );
        assert_eq!(
            old.removed, new.removed,
            "{label} / {strategy:?}: removal counts differ"
        );
        match (&old.first_witness, &new.first_witness) {
            (None, None) => {}
            (Some(a), Some(c)) => {
                assert_eq!(a.state, c.state, "{label} / {strategy:?}: witness state");
                assert_eq!(a.trace, c.trace, "{label} / {strategy:?}: witness trace");
                assert_eq!(a.hub, c.hub, "{label} / {strategy:?}: witness hub");
                assert_eq!(
                    a.b_state, c.b_state,
                    "{label} / {strategy:?}: witness B state"
                );
                assert_eq!(
                    a.offered, c.offered,
                    "{label} / {strategy:?}: witness offer"
                );
            }
            (a, c) => panic!(
                "{label} / {strategy:?}: witness presence differs \
                 (reference {:?}, incremental {:?})",
                a.is_some(),
                c.is_some()
            ),
        }
    }
    true
}

#[test]
fn engines_agree_on_scaling_families() {
    let service = exactly_once();
    for n in [1usize, 2, 3, 5, 8, 12] {
        let (b, int) = relay_chain(n);
        assert!(engines_agree(
            &format!("relay-chain({n})"),
            &b,
            &service,
            &int
        ));
    }
    for n in [1usize, 2, 3, 4, 5] {
        let (b, int) = toggle_puzzle(n);
        assert!(engines_agree(
            &format!("toggle-puzzle({n})"),
            &b,
            &service,
            &int
        ));
    }
    for n in [1usize, 3, 5, 7, 9] {
        let (b, int) = nfa_blowup(n);
        assert!(engines_agree(
            &format!("nfa-blowup({n})"),
            &b,
            &service,
            &int
        ));
    }
    // Windowed services drive multi-iteration fixpoints on the relay.
    for w in [1usize, 2, 3] {
        let (b, int) = relay_chain(2 * w + 2);
        assert!(engines_agree(
            &format!("relay-chain/windowed({w})"),
            &b,
            &windowed(w),
            &int
        ));
    }
}

#[test]
fn engines_agree_on_random_components() {
    let service = exactly_once();
    let mut covered = 0usize;
    for seed in 0..40u64 {
        let (b, int) = random_component(seed, RandomParams::default());
        if engines_agree(&format!("random({seed})"), &b, &service, &int) {
            covered += 1;
        }
    }
    assert!(
        covered >= 5,
        "too few random instances pass the safety phase ({covered}/40)"
    );
}

#[test]
fn engines_agree_on_paper_configurations() {
    let service = exactly_once();
    // Figure 14: converter exists. Figure 12 (symmetric): safety
    // succeeds but progress empties the converter, exercising the
    // witness and the removed-initial-state path.
    let colocated = colocated_configuration();
    assert!(engines_agree(
        "paper/colocated",
        &colocated.b,
        &service,
        &colocated.int
    ));
    let sym = symmetric_configuration();
    assert!(engines_agree("paper/symmetric", &sym.b, &service, &sym.int));
}
