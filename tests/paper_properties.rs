//! Validation of the implementation against the paper's *declarative*
//! definitions (§4), by brute force on small instances:
//!
//! * `safe.r ≡ ∀t: (i.t = r ∧ B.t) ⇒ A.(o.t)` — computed by enumerating
//!   B's traces and projecting;
//! * Theorem 1 both ways: `C0.r ⇒ safe.r`, and (maximality, with
//!   vacuous states included) every prefix-safe `r` is a trace of `C0`;
//! * properties P1/P3: `ok(h.ε) ⇔` a safe converter exists; safety of a
//!   trace implies the `ok` predicate held along its construction.

use proptest::prelude::*;
use protoquot_core::{safety_phase, SafetyLimits};
use protoquot_spec::trace::traces_up_to;
use protoquot_spec::{has_trace, normalize, project, Alphabet, EventId, Spec, SpecBuilder, Trace};

/// Brute-force `safe.r`: every trace `t` of `b` (up to the horizon)
/// with `i.t = r` must satisfy `A.(o.t)`.
fn brute_safe(b_traces: &[Trace], a: &Spec, int: &Alphabet, ext: &Alphabet, r: &[EventId]) -> bool {
    b_traces
        .iter()
        .filter(|t| project(t, int) == r)
        .all(|t| has_trace(a, &project(t, ext)))
}

/// All `r ∈ Int*` up to `len` whose prefixes are all brute-force safe.
fn prefix_safe_words(
    b_traces: &[Trace],
    a: &Spec,
    int: &Alphabet,
    ext: &Alphabet,
    len: usize,
) -> Vec<Trace> {
    let events: Vec<EventId> = int.iter().collect();
    let mut out: Vec<Trace> = vec![Vec::new()];
    let mut frontier: Vec<Trace> = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::new();
        for r in &frontier {
            for &e in &events {
                let mut r2 = r.clone();
                r2.push(e);
                if brute_safe(b_traces, a, int, ext, &r2) {
                    out.push(r2.clone());
                    next.push(r2);
                }
            }
        }
        frontier = next;
    }
    out.retain(|r| brute_safe(b_traces, a, int, ext, r));
    out
}

fn arb_problem() -> impl Strategy<Value = (Spec, Spec, Alphabet, Alphabet)> {
    // Small B over {acc, del, m0, m1}; deterministic-ish A over {acc, del}.
    let b = (1usize..=4).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0usize..4, 0..n), 1..(2 * n + 2)).prop_map(move |edges| {
            let evs = ["acc", "del", "m0", "m1"];
            let mut bb = SpecBuilder::new("B");
            let ids: Vec<_> = (0..n).map(|i| bb.state(&format!("b{i}"))).collect();
            for (s, e, t) in edges {
                bb.ext(ids[s], evs[e], ids[t]);
            }
            for e in evs {
                bb.event(e);
            }
            bb.build().unwrap()
        })
    });
    let a = (1usize..=3).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0usize..2, 0..n), 0..(2 * n + 1)).prop_map(move |edges| {
            let evs = ["acc", "del"];
            let mut ab = SpecBuilder::new("A");
            let ids: Vec<_> = (0..n).map(|i| ab.state(&format!("a{i}"))).collect();
            for (s, e, t) in edges {
                ab.ext(ids[s], evs[e], ids[t]);
            }
            for e in evs {
                ab.event(e);
            }
            ab.build().unwrap()
        })
    });
    (b, a).prop_map(|(b, a)| {
        (
            b,
            a,
            Alphabet::from_names(["m0", "m1"]),
            Alphabet::from_names(["acc", "del"]),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 1, both directions, against the brute-force definition.
    /// The horizon is chosen so that every C0 trace of length ≤ R is
    /// matched by B traces of length ≤ H (B inserts Ext events between
    /// Int events; with |B| ≤ 4 states, loops repeat fast).
    #[test]
    fn safety_phase_agrees_with_declarative_definition(
        (b, a, int, ext) in arb_problem()
    ) {
        const R: usize = 3; // converter-trace horizon
        const H: usize = 7; // B-trace horizon
        let na = normalize(&a);
        let b_traces = traces_up_to(&b, H);
        let phase = safety_phase(&b, &na, &int, true, SafetyLimits::default()).ok().flatten();
        let safe_eps = brute_safe(&b_traces, &a, &int, &ext, &[]);

        match &phase {
            None => {
                // ok(h.ε) failed ⇒ ε must be brute-unsafe… within the
                // horizon. (A violation beyond H is possible only with
                // loops; with ≤4 B-states and ≤3 A-states, a shortest
                // violating t has ≤ |B|·|A-det| ≤ 4·8 events — longer
                // than H, so only assert the implication that fits.)
                // We assert nothing here beyond consistency below.
            }
            Some(s) => {
                prop_assert!(safe_eps || h_too_short(&b, H), "C0 exists but ε unsafe");
                // (i) every C0 trace (within R) is prefix-safe.
                for r in traces_up_to(&s.c0, R) {
                    prop_assert!(
                        brute_safe(&b_traces, &a, &int, &ext, &r) || h_too_short(&b, H),
                        "C0 trace {:?} not brute-safe",
                        r.iter().map(|e| e.name()).collect::<Vec<_>>()
                    );
                }
                // (ii) maximality: every prefix-safe word is a C0 trace.
                // Brute safety can over-approximate when the horizon
                // truncates a violation, so only check words whose
                // matching B-traces stay well inside the horizon.
                if !h_too_short(&b, H) {
                    for r in prefix_safe_words(&b_traces, &a, &int, &ext, R) {
                        prop_assert!(
                            has_trace(&s.c0, &r),
                            "prefix-safe {:?} missing from C0",
                            r.iter().map(|e| e.name()).collect::<Vec<_>>()
                        );
                    }
                }
            }
        }
    }
}

/// Conservative guard: with very loopy B machines the brute-force
/// horizon may truncate violations; skip the strict assertions there.
/// (A trace of length H exercises every simple loop of B at least once
/// when B has at most H/2 states and the machine is "small"; rather
/// than formalise that, bail out when B can produce traces right at the
/// horizon — meaning longer ones exist.)
fn h_too_short(b: &Spec, h: usize) -> bool {
    traces_up_to(b, h).iter().any(|t| t.len() == h)
}

/// Deterministic end-to-end instance where the horizons are exact,
/// asserting the equivalence with no escape hatch.
#[test]
fn declarative_equivalence_exact_instance() {
    // B: acc -> m0 -> del cycle plus an unsafe m1 that double-delivers.
    let mut bb = SpecBuilder::new("B");
    let b0 = bb.state("b0");
    let b1 = bb.state("b1");
    let b2 = bb.state("b2");
    let b3 = bb.state("b3");
    bb.ext(b0, "acc", b1);
    bb.ext(b1, "m0", b2);
    bb.ext(b2, "del", b0);
    bb.ext(b2, "m1", b3);
    bb.ext(b3, "del", b2); // del twice per acc when m1 is used
    let b = bb.build().unwrap();
    let mut ab = SpecBuilder::new("A");
    let u0 = ab.state("u0");
    let u1 = ab.state("u1");
    ab.ext(u0, "acc", u1);
    ab.ext(u1, "del", u0);
    let a = ab.build().unwrap();
    let int = Alphabet::from_names(["m0", "m1"]);
    let ext = Alphabet::from_names(["acc", "del"]);

    let b_traces = traces_up_to(&b, 10);
    // m0 alone: safe. m0.m1: unsafe (leads to del.del).
    let m0 = EventId::new("m0");
    let m1 = EventId::new("m1");
    assert!(brute_safe(&b_traces, &a, &int, &ext, &[m0]));
    assert!(!brute_safe(&b_traces, &a, &int, &ext, &[m0, m1]));

    let na = normalize(&a);
    let s = safety_phase(&b, &na, &int, true, SafetyLimits::default())
        .unwrap()
        .unwrap();
    assert!(has_trace(&s.c0, &[m0]));
    assert!(!has_trace(&s.c0, &[m0, m1]));
    // Vacuous maximality: m1 alone matches no B trace -> trivially safe
    // -> in C0 (with vacuous states included).
    assert!(brute_safe(&b_traces, &a, &int, &ext, &[m1]));
    assert!(has_trace(&s.c0, &[m1]));
}
