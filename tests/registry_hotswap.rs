//! Registry admission and live hot-swap, end to end over real sockets:
//!
//! 1. **A verified v2 swap under load is invisible** — a drive campaign
//!    running across the swap finishes with zero convictions, zero
//!    rejections, and zero dropped sessions, while a session opened
//!    before the swap drains cleanly on the old converter and the old
//!    version retires at zero sessions.
//! 2. **A mutant artifact is refused at admission** — an internally
//!    consistent compiled artifact whose converter fails `verify_system`
//!    never reaches the gateway: the registry refuses it, nothing is
//!    stored, and the old version keeps serving.
//! 3. **The swap gate holds** — stale version numbers and alien event
//!    tables are refused by `Gateway::swap` itself.

use protoquot_core::solve;
use protoquot_protocols::{colocated_configuration, exactly_once};
use protoquot_runtime::{
    artifact, drive_mux, table_hash, Conn, ConnLimits, ConverterRegistry, DriveConfig, Frame,
    Gateway, GatewayConfig, GuardProgram, MuxClient, MuxTransport, ReactorConfig, ReactorServer,
    RegistryError, StatsSnapshot, TcpConn, TcpServer,
};
use protoquot_sim::redirect_transition;
use protoquot_spec::{EventTable, Spec};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn derived_system() -> (Vec<Spec>, Spec) {
    let system = colocated_configuration();
    let service = exactly_once();
    let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
    (vec![system.b, q.converter], service)
}

fn tempdir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("protoquot-hotswap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls `gw` stats until `pred` holds or the deadline passes.
fn wait_for(gw: &Gateway, deadline: Duration, pred: impl Fn(&StatsSnapshot) -> bool) -> bool {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if pred(&gw.stats()) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn sessions_on(snap: &StatsSnapshot, version: u32) -> u64 {
    snap.version_sessions
        .iter()
        .find(|(v, _)| *v == version)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}

/// A verified v2 artifact admitted mid-traffic swaps the gateway with
/// zero convictions and zero dropped sessions; a session opened before
/// the swap drains on v1, which retires at zero sessions.
#[test]
fn verified_swap_under_load_is_invisible() {
    let (components, service) = derived_system();
    let parts: Vec<&Spec> = components.iter().collect();
    // A short idle timeout so finished campaign sessions can be swept
    // by `evict_idle` once the drive completes.
    let gw = Gateway::new(
        &parts,
        &service,
        GatewayConfig {
            idle_timeout: Duration::from_millis(50),
            ..GatewayConfig::default()
        },
    )
    .expect("gateway");
    let hash = table_hash(&EventTable::new(service.alphabet()));
    assert_eq!(
        gw.table_hash(),
        hash,
        "wire identity derives from the service"
    );

    let mut server = ReactorServer::bind(
        gw.clone(),
        "127.0.0.1:0",
        ReactorConfig {
            loops: 2,
            limits: ConnLimits {
                require_hello: true,
                ..ConnLimits::default()
            },
            ..ReactorConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // A pinned session born on v1, held open across the swap. Its id
    // sits far above the drive campaign's run-indexed session ids.
    const PINNED: u64 = 1 << 40;
    let mut pinned = TcpConn::connect_negotiated(addr, hash).expect("negotiated connect");
    let reply = pinned
        .call(&Frame::Event {
            session: PINNED,
            event: 0,
        })
        .expect("pinned session opens");
    assert_eq!(reply.session(), PINNED);
    assert!(wait_for(&gw, Duration::from_secs(5), |s| {
        sessions_on(s, 1) == 1
    }));

    // Traffic in flight while the swap lands.
    let cfg = DriveConfig {
        runs: 120,
        threads: 4,
        seed: 0xD0_5EED,
        max_steps: 400,
        ..DriveConfig::default()
    };
    let driver = {
        let (components, service) = (components.clone(), service.clone());
        std::thread::spawn(move || {
            drive_mux(&components, &service, &cfg, move || {
                MuxClient::connect_negotiated(addr, hash)
                    .map(|c| Box::new(c) as Box<dyn MuxTransport>)
            })
        })
    };

    // Admit a freshly encoded, re-verified artifact as v2 and swap.
    let dir = tempdir("swap");
    let mut registry = ConverterRegistry::open(&dir, &service, gw.active_version())
        .expect("registry opens")
        .with_verify_threads(2);
    let bytes = artifact::encode(&parts, &service).expect("artifact encodes");
    let admitted = registry.admit(&bytes).expect("verified artifact admits");
    assert_eq!(admitted.version, 2);
    assert_eq!(admitted.table_hash, hash);
    gw.swap(admitted.version, Arc::clone(&admitted.program))
        .expect("swap to the admitted version");
    assert_eq!(gw.active_version(), 2);

    let report = driver.join().expect("driver thread");
    assert!(
        report.is_clean(),
        "swap under load dropped or convicted traffic: {}",
        report.to_json()
    );
    assert!(report.runs == 120 && report.accepted > 0);

    // The pinned v1 session still drains on its birth program: the
    // per-version table shows v1 holding it (and possibly campaign
    // sessions born before the swap landed) post-swap.
    let snap = gw.stats();
    assert_eq!(snap.active_version, 2);
    assert_eq!(snap.swaps, 1);
    assert!(
        sessions_on(&snap, 1) >= 1,
        "pinned session must drain on v1: {snap}"
    );
    let reply = pinned
        .call(&Frame::Event {
            session: PINNED,
            event: 1,
        })
        .expect("pinned session survives the swap");
    assert_eq!(reply.session(), PINNED);
    pinned
        .call(&Frame::Close { session: PINNED })
        .expect("pinned session closes");

    // v1 retires once its last session is closed or swept: drive the
    // idle sweep until the drained version is released.
    let until = Instant::now() + Duration::from_secs(10);
    loop {
        gw.evict_idle();
        let s = gw.stats();
        if s.versions_retired == 1 && sessions_on(&s, 1) == 0 {
            break;
        }
        assert!(Instant::now() < until, "drained v1 never retired: {s}");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(gw.stats().convictions, 0, "a clean swap convicts nobody");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A mutant converter — internally consistent as an artifact, but no
/// longer satisfying the service — is refused at admission: nothing is
/// stored, no version number is burned, and the running gateway keeps
/// serving v1.
#[test]
fn mutant_artifact_is_refused_and_old_version_keeps_serving() {
    let (components, service) = derived_system();
    let parts: Vec<&Spec> = components.iter().collect();
    let gw = Gateway::new(&parts, &service, GatewayConfig::default()).expect("gateway");
    let mut server = TcpServer::bind(gw.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let dir = tempdir("mutant");
    let mut registry =
        ConverterRegistry::open(&dir, &service, gw.active_version()).expect("registry opens");

    // Some single-transition redirect of the converter that still
    // encodes and instantiates, but fails re-verification.
    let mut refused = 0;
    for k in 0..16 {
        let Some(mutant) = redirect_transition(&components[1], k) else {
            continue;
        };
        let mutated = [&components[0], &mutant];
        let Ok(bytes) = artifact::encode(&mutated, &service) else {
            continue;
        };
        match registry.admit(&bytes) {
            Err(RegistryError::Refused(msg)) => {
                assert!(
                    msg.contains("does not satisfy"),
                    "refusal must name the contract: {msg}"
                );
                refused += 1;
            }
            Err(other) => panic!("mutant refused for the wrong reason: {other}"),
            Ok(admitted) => {
                // A behaviour-preserving redirect: legitimately
                // admitted, but never swapped in by this test.
                assert!(admitted.version >= 2);
            }
        }
    }
    assert!(refused > 0, "no mutant exercised the admission gate");

    // Nothing refused was stored, and the gateway never moved off v1.
    let stored = registry.stored().expect("store listing");
    assert_eq!(
        stored.len() as u32,
        registry.next_version() - 2,
        "refused artifacts must not be stored"
    );
    assert_eq!(gw.active_version(), 1);

    // v1 still serves after the refusals.
    let mut conn = TcpConn::connect(addr).expect("connect");
    let reply = conn
        .call(&Frame::Event {
            session: 9,
            event: 0,
        })
        .expect("old version keeps serving");
    assert_eq!(reply.session(), 9);
    assert_eq!(gw.stats().convictions, 0);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Gateway::swap` itself refuses stale version numbers and alien
/// event tables, independent of the registry.
#[test]
fn swap_gate_refuses_stale_versions_and_alien_tables() {
    let (components, service) = derived_system();
    let parts: Vec<&Spec> = components.iter().collect();
    let gw = Gateway::new(&parts, &service, GatewayConfig::default()).expect("gateway");
    let prog = Arc::new(GuardProgram::new(&parts, &service).expect("program"));

    // Not strictly newer than the active version.
    assert!(gw.swap(1, Arc::clone(&prog)).is_err());
    assert!(gw.swap(0, Arc::clone(&prog)).is_err());

    // A different service alphabet means a different event table, and
    // so a different wire identity: refused regardless of version.
    let mut b = protoquot_spec::SpecBuilder::new("alien-contract");
    let s0 = b.state("s0");
    for e in ["zig", "zag"] {
        b.ext(s0, e, s0);
    }
    let alien_service = b.build().expect("alien service builds");
    let alien = GuardProgram::new(&[&alien_service], &alien_service).expect("alien program");
    assert!(
        gw.swap(2, Arc::new(alien)).is_err(),
        "an alien event table must be refused"
    );

    // The well-formed successor is still accepted afterwards.
    gw.swap(2, prog).expect("legitimate swap");
    assert_eq!(gw.active_version(), 2);
}
