//! Quotient problems with more than 64 external events. The progress
//! engine's `u64` mask fast path cannot represent these; they exercise
//! the dynamic wide-mask path (the seed implementation panicked on
//! `Ext > 64`).

use protoquot_core::{solve, verify_converter};
use protoquot_spec::{Alphabet, Spec, SpecBuilder};

/// A relay ring over `n` distinct external events: the service cycles
/// `x0 … x{n-1}`; B requires an internal `f{i}` nudge after each `x{i}`
/// before it will accept the next one.
fn wide_ring(n: usize) -> (Spec, Spec, Alphabet) {
    let mut sb = SpecBuilder::new("wide-service");
    let hubs: Vec<_> = (0..n).map(|i| sb.state(&format!("u{i}"))).collect();
    for i in 0..n {
        sb.ext(hubs[i], &format!("x{i}"), hubs[(i + 1) % n]);
    }
    let service = sb.build().unwrap();

    let mut bb = SpecBuilder::new("wide-b");
    let ready: Vec<_> = (0..n).map(|i| bb.state(&format!("a{i}"))).collect();
    let pending: Vec<_> = (0..n).map(|i| bb.state(&format!("m{i}"))).collect();
    for i in 0..n {
        bb.ext(ready[i], &format!("x{i}"), pending[i]);
        bb.ext(pending[i], &format!("f{i}"), ready[(i + 1) % n]);
    }
    let b = bb.build().unwrap();
    let int: Alphabet = (0..n)
        .map(|i| format!("f{i}"))
        .collect::<Vec<_>>()
        .iter()
        .map(String::as_str)
        .collect();
    (service, b, int)
}

#[test]
fn seventy_external_events_solve_and_verify() {
    let (service, b, int) = wide_ring(70);
    let ext = b.alphabet().difference(&int);
    assert!(ext.len() > 64, "fixture must exceed the u64 fast path");
    let q = solve(&b, &service, &int).expect("a converter exists");
    verify_converter(&b, &service, &q.converter).expect("derived converter verifies");
    // The driving converter fires each f{i} in turn: one state per
    // phase of the ring survives.
    assert!(q.converter.num_states() >= 70);
    assert_eq!(q.stats.removed_states, 0);
}

/// Exactly at the boundary the fast path still applies; one past it the
/// wide path takes over — both must derive and verify.
#[test]
fn mask_representation_boundary() {
    for n in [64usize, 65] {
        let (service, b, int) = wide_ring(n);
        let q =
            solve(&b, &service, &int).unwrap_or_else(|e| panic!("wide_ring({n}) must solve: {e}"));
        verify_converter(&b, &service, &q.converter).unwrap();
    }
}
