//! Parameterised machine families for the complexity benchmarks
//! (paper §7: the quotient is PSPACE-hard and the safety phase is
//! worst-case exponential, while the progress phase is polynomial in
//! the safety phase's output).

use protoquot_spec::{Alphabet, Spec, SpecBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A linear relay: `acc`, then `n` forwarding hops `m0 … m{n-1}` the
/// converter must drive, then `del`. The quotient grows linearly with
/// `n` — the benign case.
pub fn relay_chain(n: usize) -> (Spec, Alphabet) {
    assert!(n >= 1);
    let mut b = SpecBuilder::new(&format!("relay-{n}"));
    let start = b.state("start");
    let mut prev = b.state("hop0");
    b.ext(start, "acc", prev);
    for i in 0..n {
        let next = b.state(&format!("hop{}", i + 1));
        b.ext(prev, &format!("m{i}"), next);
        prev = next;
    }
    b.ext(prev, "del", start);
    let int: Alphabet = (0..n)
        .map(|i| format!("m{i}"))
        .collect::<Vec<_>>()
        .iter()
        .map(String::as_str)
        .collect();
    (b.build().expect("relay is well-formed"), int)
}

/// A family with an exponential safety phase: `B` consists of `n`
/// independent one-bit registers the converter can toggle (`t<i>`),
/// plus a probe protocol. After `acc`, B nondeterministically (via an
/// internal choice) commits to a secret subset pattern; `del` is only
/// enabled once the toggles match. The converter cannot observe the
/// choice, so its pair sets track subsets of register valuations.
///
/// In practice the interesting measurement is the growth of the
/// safety-phase state count with `n`, which is exponential because the
/// converter alphabet's trace space over `n` toggles must be explored
/// against `2^n` register valuations.
pub fn toggle_puzzle(n: usize) -> (Spec, Alphabet) {
    assert!((1..=10).contains(&n));
    let mut b = SpecBuilder::new(&format!("toggles-{n}"));
    // States: (registers valuation, phase) where phase 0 = idle,
    // 1 = delivering. Registers start at 0; del enabled iff all 1s,
    // resetting to all 0s.
    let num = 1usize << n;
    let idle: Vec<_> = (0..num).map(|v| b.state(&format!("i{v}"))).collect();
    let busy: Vec<_> = (0..num).map(|v| b.state(&format!("b{v}"))).collect();
    for v in 0..num {
        b.ext(idle[v], "acc", busy[v]);
        for bit in 0..n {
            let w = v ^ (1 << bit);
            b.ext(idle[v], &format!("t{bit}"), idle[w]);
            b.ext(busy[v], &format!("t{bit}"), busy[w]);
        }
    }
    b.ext(busy[num - 1], "del", idle[0]);
    b.initial(idle[0]);
    let names: Vec<String> = (0..n).map(|i| format!("t{i}")).collect();
    let int: Alphabet = names.iter().map(String::as_str).collect();
    (b.build().expect("toggle puzzle is well-formed"), int)
}

/// Parameters for [`random_component`].
#[derive(Clone, Copy, Debug)]
pub struct RandomParams {
    /// Number of states.
    pub states: usize,
    /// Number of `Int` events.
    pub int_events: usize,
    /// Outgoing external transitions per state (approximate).
    pub ext_degree: usize,
    /// Probability (percent) of an internal transition per state.
    pub int_percent: u32,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            states: 8,
            int_events: 3,
            ext_degree: 2,
            int_percent: 30,
        }
    }
}

/// A seeded random `B` component over `Ext = {acc, del}` plus
/// `Int = {m0 …}`: used by property tests ("every derived quotient
/// verifies") and robustness benches. The machine is made connected by
/// a random spanning arborescence before the extra edges are thrown in.
pub fn random_component(seed: u64, p: RandomParams) -> (Spec, Alphabet) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SpecBuilder::new(&format!("random-{seed}"));
    let states: Vec<_> = (0..p.states).map(|i| b.state(&format!("s{i}"))).collect();
    let int_names: Vec<String> = (0..p.int_events).map(|i| format!("m{i}")).collect();
    let mut all_events: Vec<String> = vec!["acc".into(), "del".into()];
    all_events.extend(int_names.iter().cloned());

    // Spanning structure: state i>0 reachable from a random earlier one.
    for i in 1..p.states {
        let from = rng.gen_range(0..i);
        let ev = &all_events[rng.gen_range(0..all_events.len())];
        b.ext(states[from], ev, states[i]);
    }
    // Extra edges.
    for &s in &states {
        for _ in 0..p.ext_degree {
            let ev = &all_events[rng.gen_range(0..all_events.len())];
            let to = states[rng.gen_range(0..p.states)];
            b.ext(s, ev, to);
        }
        if rng.gen_range(0..100) < p.int_percent {
            let to = states[rng.gen_range(0..p.states)];
            b.int(s, to);
        }
    }
    // Guarantee the full interface is declared even if unused.
    for ev in &all_events {
        b.event(ev);
    }
    let int: Alphabet = int_names.iter().map(String::as_str).collect();
    (b.build().expect("random component is well-formed"), int)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_chain_shape() {
        let (s, int) = relay_chain(3);
        assert_eq!(s.num_states(), 5);
        assert_eq!(int.len(), 3);
        assert!(s.alphabet().contains(protoquot_spec::EventId::new("acc")));
    }

    #[test]
    fn toggle_puzzle_shape() {
        let (s, int) = toggle_puzzle(3);
        assert_eq!(s.num_states(), 2 * 8);
        assert_eq!(int.len(), 3);
    }

    #[test]
    fn random_component_is_deterministic_in_seed() {
        let (a, _) = random_component(42, RandomParams::default());
        let (b, _) = random_component(42, RandomParams::default());
        assert_eq!(a.num_states(), b.num_states());
        assert_eq!(a.num_external(), b.num_external());
        assert_eq!(a.num_internal(), b.num_internal());
        let (c, _) = random_component(43, RandomParams::default());
        // Different seeds almost surely differ somewhere.
        assert!(
            a.num_external() != c.num_external()
                || a.num_internal() != c.num_internal()
                || format!("{a:?}") != format!("{c:?}")
        );
    }

    #[test]
    fn random_component_declares_interface() {
        let (s, int) = random_component(7, RandomParams::default());
        for e in int.iter() {
            assert!(s.alphabet().contains(e));
        }
        assert!(s.alphabet().contains(protoquot_spec::EventId::new("del")));
    }
}

/// The genuinely-exponential family (EXP-C1): a *small* `B` whose
/// quotient is exponential. Classic NFA→DFA blowup embedded in the
/// quotient: after `acc`, B loops on converter events `m0`/`m1` and
/// nondeterministically guesses that an `m1` was the `n`-th-from-last
/// symbol; only then is `del` enabled. The safety phase must track the
/// subset of guess positions — one converter state per reachable
/// subset, ~`2^n` of them — while `|B| = n + 2`.
pub fn nfa_blowup(n: usize) -> (Spec, Alphabet) {
    assert!(n >= 1);
    let mut b = SpecBuilder::new(&format!("nfa-blowup-{n}"));
    let idle = b.state("idle");
    let q0 = b.state("q0");
    b.ext(idle, "acc", q0);
    b.ext(q0, "m0", q0);
    b.ext(q0, "m1", q0);
    let mut prev = b.state("r1");
    b.ext(q0, "m1", prev); // the guess
    for i in 2..=n {
        let next = b.state(&format!("r{i}"));
        b.ext(prev, "m0", next);
        b.ext(prev, "m1", next);
        prev = next;
    }
    b.ext(prev, "del", idle);
    let int: Alphabet = ["m0", "m1"].into_iter().collect();
    (b.build().expect("nfa family is well-formed"), int)
}

#[cfg(test)]
mod blowup_tests {
    use super::*;

    #[test]
    fn nfa_blowup_is_small_in_n() {
        for n in 1..6 {
            let (s, _) = nfa_blowup(n);
            assert_eq!(s.num_states(), n + 2);
        }
    }

    #[test]
    fn nfa_blowup_quotient_is_exponential() {
        // The safety phase output roughly doubles per increment of n
        // while B grows by one state: the §7 worst case realised.
        let service = crate::service::exactly_once();
        let na = protoquot_spec::normalize(&service);
        let mut sizes = Vec::new();
        for n in [3usize, 4, 5, 6] {
            let (b, int) = nfa_blowup(n);
            let s = protoquot_core::safety_phase(
                &b,
                &na,
                &int,
                false,
                protoquot_core::SafetyLimits::default(),
            )
            .unwrap()
            .unwrap();
            sizes.push(s.c0.num_states());
        }
        for w in sizes.windows(2) {
            assert!(
                w[1] as f64 >= 1.7 * w[0] as f64,
                "expected ~2x growth, got {sizes:?}"
            );
        }
    }

    #[test]
    fn nfa_blowup_converter_exists_and_verifies() {
        let service = crate::service::exactly_once();
        let (b, int) = nfa_blowup(3);
        let q = protoquot_core::solve(&b, &service, &int).unwrap();
        protoquot_core::verify_converter(&b, &service, &q.converter).unwrap();
    }
}
