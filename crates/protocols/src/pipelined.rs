//! A pipelined sliding-window protocol over bounded FIFO channels —
//! the window-flow-control generalisation of the paper's stop-and-wait
//! machinery (EXP-FLOW in EXPERIMENTS.md).
//!
//! The sender may have up to `w` messages outstanding (sequence numbers
//! mod `w + 1`); the receiver delivers in order and acknowledges each
//! message; channels are reliable bounded FIFOs (loss recovery is the
//! AB protocol's department — the dimension explored here is
//! *pipelining*).
//!
//! The derived conversion problem is the interesting part: putting the
//! windowed sender in front of the strictly one-at-a-time NS receiver
//! forces the quotient to synthesise a converter that does **flow
//! control** — buffering the pipelined data and withholding
//! acknowledgements so the end-to-end window is never exceeded.

use protoquot_spec::{Spec, SpecBuilder};

/// A reliable simplex FIFO channel with the given capacity: state =
/// the queued message sequence. `-m` enqueues (when not full), `+m`
/// dequeues the head.
pub fn fifo_channel(name: &str, messages: &[&str], capacity: usize) -> Spec {
    assert!(capacity >= 1);
    let mut b = SpecBuilder::new(name);
    // Enumerate all queue contents up to `capacity`.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<usize>> = vec![Vec::new()];
    for _ in 0..capacity {
        let mut next = Vec::new();
        for q in &frontier {
            for m in 0..messages.len() {
                let mut q2 = q.clone();
                q2.push(m);
                queues.push(q2.clone());
                next.push(q2);
            }
        }
        frontier = next;
    }
    let label = |q: &[usize]| {
        if q.is_empty() {
            "ε".to_owned()
        } else {
            q.iter().map(|&m| messages[m]).collect::<Vec<_>>().join("·")
        }
    };
    let ids: Vec<_> = queues.iter().map(|q| b.state(&label(q))).collect();
    let index = |q: &[usize]| queues.iter().position(|x| x == q).unwrap();
    for (qi, q) in queues.iter().enumerate() {
        if q.len() < capacity {
            for (m, name) in messages.iter().enumerate() {
                let mut q2 = q.clone();
                q2.push(m);
                b.ext(ids[qi], &format!("-{name}"), ids[index(&q2)]);
            }
        }
        if let Some((&head, rest)) = q.split_first() {
            b.ext(ids[qi], &format!("+{}", messages[head]), ids[index(rest)]);
        }
    }
    b.initial(ids[0]);
    b.build().expect("fifo channel is well-formed")
}

/// Windowed sender: up to `w` outstanding messages, sequence numbers
/// mod `w + 1`. State `(next phase, outstanding)` plus a pending state
/// between `acc` and the actual transmission.
pub fn window_sender(w: usize) -> Spec {
    assert!(w >= 1);
    let k = w + 1;
    let mut b = SpecBuilder::new(&format!("W0-{w}"));
    // (p, o) for p in 0..k, o in 0..=w ; pending states (p, o) after acc.
    let ready: Vec<Vec<_>> = (0..k)
        .map(|p| (0..=w).map(|o| b.state(&format!("r{p}_{o}"))).collect())
        .collect();
    let pending: Vec<Vec<_>> = (0..k)
        .map(|p| (0..w).map(|o| b.state(&format!("p{p}_{o}"))).collect())
        .collect();
    for p in 0..k {
        for o in 0..=w {
            if o < w {
                b.ext(ready[p][o], "acc", pending[p][o]);
                b.ext(pending[p][o], &format!("-d{p}"), ready[(p + 1) % k][o + 1]);
            }
            if o > 0 {
                // Oldest outstanding has phase (p - o) mod k.
                let oldest = (p + k - (o % k)) % k;
                b.ext(ready[p][o], &format!("+a{oldest}"), ready[p][o - 1]);
                if o < w {
                    b.ext(pending[p][o], &format!("+a{oldest}"), pending[p][o - 1]);
                }
            }
        }
    }
    b.initial(ready[0][0]);
    b.build().expect("window sender is well-formed")
}

/// In-order windowed receiver: expects phase `q`, delivers, acks.
pub fn window_receiver(w: usize) -> Spec {
    assert!(w >= 1);
    let k = w + 1;
    let mut b = SpecBuilder::new(&format!("W1-{w}"));
    let exp: Vec<_> = (0..k).map(|q| b.state(&format!("exp{q}"))).collect();
    let dlv: Vec<_> = (0..k).map(|q| b.state(&format!("dlv{q}"))).collect();
    let ack: Vec<_> = (0..k).map(|q| b.state(&format!("ack{q}"))).collect();
    for q in 0..k {
        b.ext(exp[q], &format!("+d{q}"), dlv[q]);
        b.ext(dlv[q], "del", ack[q]);
        b.ext(ack[q], &format!("-a{q}"), exp[(q + 1) % k]);
    }
    b.initial(exp[0]);
    b.build().expect("window receiver is well-formed")
}

/// The homogeneous windowed system: sender ‖ data FIFO ‖ receiver ‖
/// ack FIFO, all reliable.
pub fn windowed_system(w: usize, capacity: usize) -> Spec {
    let k = w + 1;
    let d_msgs: Vec<String> = (0..k).map(|i| format!("d{i}")).collect();
    let a_msgs: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
    let d_refs: Vec<&str> = d_msgs.iter().map(String::as_str).collect();
    let a_refs: Vec<&str> = a_msgs.iter().map(String::as_str).collect();
    let dfifo = fifo_channel("Dfifo", &d_refs, capacity);
    let afifo = fifo_channel("Afifo", &a_refs, capacity);
    protoquot_spec::compose_all(&[&window_sender(w), &dfifo, &window_receiver(w), &afifo])
        .expect("each event shared pairwise")
        .with_name(&format!("windowed-{w}/{capacity}"))
}

/// The flow-control conversion problem (EXP-FLOW): the windowed sender
/// pipelines through FIFOs, but the destination is the strictly
/// serial NS receiver. The converter must buffer and withhold
/// acknowledgements so that the end-to-end service — `windowed(w)` —
/// is never violated.
pub fn flow_control_configuration(w: usize, capacity: usize) -> crate::paper::Configuration {
    let k = w + 1;
    let d_msgs: Vec<String> = (0..k).map(|i| format!("d{i}")).collect();
    let a_msgs: Vec<String> = (0..k).map(|i| format!("a{i}")).collect();
    let d_refs: Vec<&str> = d_msgs.iter().map(String::as_str).collect();
    let a_refs: Vec<&str> = a_msgs.iter().map(String::as_str).collect();
    let dfifo = fifo_channel("Dfifo", &d_refs, capacity);
    let afifo = fifo_channel("Afifo", &a_refs, capacity);
    let b = protoquot_spec::compose_all(&[
        &window_sender(w),
        &dfifo,
        &afifo,
        &crate::nonseq::ns_receiver(),
    ])
    .expect("each event shared pairwise")
    .with_name(&format!("flow-{w}/{capacity}"));
    let mut int_names: Vec<String> = Vec::new();
    for i in 0..k {
        int_names.push(format!("+d{i}")); // take pipelined data out
        int_names.push(format!("-a{i}")); // ack back (or not yet!)
    }
    int_names.push("+D".into()); // hand to NS receiver
    int_names.push("-A".into()); // its ack
    let int: protoquot_spec::Alphabet = int_names.iter().map(String::as_str).collect();
    let ext: protoquot_spec::Alphabet = ["acc", "del"].into_iter().collect();
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    crate::paper::Configuration { b, int, ext }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::windowed;
    use protoquot_spec::{has_trace, satisfies, trace_of};

    #[test]
    fn fifo_preserves_order_and_capacity() {
        let f = fifo_channel("F", &["x", "y"], 2);
        // 1 + 2 + 4 queue contents.
        assert_eq!(f.num_states(), 7);
        assert!(has_trace(&f, &trace_of(&["-x", "-y", "+x", "+y"])));
        assert!(!has_trace(&f, &trace_of(&["-x", "-y", "+y"])));
        assert!(!has_trace(&f, &trace_of(&["-x", "-y", "-x"])));
        assert!(!has_trace(&f, &trace_of(&["+x"])));
    }

    #[test]
    fn window_sender_pipelines_up_to_w() {
        let s = window_sender(2);
        assert!(has_trace(&s, &trace_of(&["acc", "-d0", "acc", "-d1"])));
        assert!(!has_trace(
            &s,
            &trace_of(&["acc", "-d0", "acc", "-d1", "acc"])
        ));
        // In-order ack frees a slot.
        assert!(has_trace(
            &s,
            &trace_of(&["acc", "-d0", "acc", "-d1", "+a0", "acc", "-d2"])
        ));
        // Out-of-order ack is not accepted.
        assert!(!has_trace(
            &s,
            &trace_of(&["acc", "-d0", "acc", "-d1", "+a1"])
        ));
    }

    #[test]
    fn stop_and_wait_is_the_w1_case() {
        let sys = windowed_system(1, 1);
        let verdict = satisfies(&sys, &windowed(1)).unwrap();
        assert!(verdict.is_ok(), "{:?}", verdict.err());
    }

    #[test]
    fn windowed_system_satisfies_its_window_service() {
        for (w, c) in [(2usize, 2usize), (3, 3)] {
            let sys = windowed_system(w, c);
            let verdict = satisfies(&sys, &windowed(w)).unwrap();
            assert!(verdict.is_ok(), "w={w} c={c}: {:?}", verdict.err());
            // And it genuinely pipelines: the stricter window-1 service
            // is violated.
            assert!(satisfies(&sys, &windowed(1)).unwrap().is_err());
        }
    }

    #[test]
    fn flow_control_converter_derived_and_verified() {
        let cfg = flow_control_configuration(2, 2);
        let service = windowed(2);
        let q = protoquot_core::solve(&cfg.b, &service, &cfg.int)
            .expect("flow-control converter exists");
        protoquot_core::verify_converter(&cfg.b, &service, &q.converter).expect("verifies");
        // The converter must be able to hold two undelivered messages:
        // trace acc acc (two in flight) must be possible end-to-end.
        let composite = protoquot_spec::compose(&cfg.b, &q.converter);
        assert!(has_trace(&composite, &trace_of(&["acc", "acc"])));
        assert!(has_trace(
            &composite,
            &trace_of(&["acc", "acc", "del", "del", "acc"])
        ));
    }

    #[test]
    fn window_cannot_be_shrunk_from_inside() {
        // Instructive impossibility: asking the converter to impose a
        // *smaller* end-to-end window than the sender's is hopeless —
        // `acc` and the data FIFO are not on the converter's interface,
        // so the sender can always run `w` ahead on its own. The solver
        // proves it: not even a safe converter exists, and the witness
        // names the uncontrollable `acc`.
        let cfg = flow_control_configuration(2, 2);
        let service = windowed(1);
        match protoquot_core::solve(&cfg.b, &service, &cfg.int) {
            Err(protoquot_core::QuotientError::NoSafeConverter { violation }) => {
                assert_eq!(violation.event.name(), "acc");
            }
            other => panic!("expected NoSafeConverter, got {other:?}"),
        }
    }
}
