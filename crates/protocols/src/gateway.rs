//! The §6 architectural scenario: transport-level conversion between
//! heterogeneous layered networks (paper Figures 15–18).
//!
//! Two transport protocols with disjoint message vocabularies must
//! jointly provide a connection-oriented service with **orderly close**
//! — the §6 motivating property: "all user data have been delivered to
//! the remote end by the time the connection closes". A naive
//! pass-through entity (Figure 16) synchronises only between user and
//! converter, so the close can outrun delivery; replacing it with a
//! derived converter (Figure 17/18) restores end-to-end ordering.
//!
//! The machines model one connection round: open, one data transfer,
//! close. Transport A is the initiator (user events `open`, `send`,
//! `close`), transport B the responder (user event `deliver`).

use protoquot_spec::{Alphabet, Spec, SpecBuilder};

/// Transport A initiator `TA0`.
///
/// User events: `open`, `send`, `close` (the close *request*; the
/// machine returns to idle only after the FIN/FC handshake, which is
/// how "close completes" is modelled). Peer messages: `CRa` (connect
/// request), `CCa` (connect confirm), `DTa` (data), `AKa` (ack), `FINa`,
/// `FCa` (fin confirm). The crucial feature: the user may request
/// `close` as soon as `+AKa` arrives — so an entity that acknowledges
/// early breaks orderly close.
pub fn transport_a_initiator() -> Spec {
    let mut b = SpecBuilder::new("TA0");
    let idle = b.state("idle");
    let o1 = b.state("opening");
    let o2 = b.state("awaiting_cc");
    let est = b.state("established");
    let d1 = b.state("sending");
    let d2 = b.state("awaiting_ak");
    let rdy = b.state("acked");
    let f0 = b.state("closing");
    let f1 = b.state("awaiting_fc");
    b.ext(idle, "open", o1);
    b.ext(o1, "-CRa", o2);
    b.ext(o2, "+CCa", est);
    b.ext(est, "send", d1);
    b.ext(d1, "-DTa", d2);
    b.ext(d2, "+AKa", rdy);
    b.ext(rdy, "close", f0);
    b.ext(f0, "-FINa", f1);
    b.ext(f1, "+FCa", idle);
    b.build().expect("TA0 is well-formed")
}

/// Transport B responder `TB1`.
///
/// User event: `deliver`. Peer messages: `CRb`, `CCb`, `DTb`, `AKb`,
/// `FINb`, `FCb`. Acknowledges only *after* delivering to the user —
/// the end-to-end guarantee the conversion system must preserve.
pub fn transport_b_responder() -> Spec {
    let mut b = SpecBuilder::new("TB1");
    let idle = b.state("idle");
    let r1 = b.state("answering");
    let est = b.state("established");
    let e1 = b.state("holding_data");
    let e2 = b.state("delivered");
    let rdy = b.state("acked");
    let g1 = b.state("fin_seen");
    b.ext(idle, "+CRb", r1);
    b.ext(r1, "-CCb", est);
    b.ext(est, "+DTb", e1);
    b.ext(e1, "deliver", e2);
    b.ext(e2, "-AKb", rdy);
    b.ext(rdy, "+FINb", g1);
    b.ext(g1, "-FCb", idle);
    b.build().expect("TB1 is well-formed")
}

/// The composite transport service `CST` (one connection round):
/// `open`, then `send`, then `deliver`, then `close` — delivery
/// *precedes* the close request, which is exactly the orderly-close
/// ordering.
pub fn connection_service() -> Spec {
    let mut b = SpecBuilder::new("CST");
    let c0 = b.state("closed");
    let c1 = b.state("opened");
    let c2 = b.state("sent");
    let c3 = b.state("delivered");
    b.ext(c0, "open", c1);
    b.ext(c1, "send", c2);
    b.ext(c2, "deliver", c3);
    b.ext(c3, "close", c0);
    b.build().expect("CST is well-formed")
}

/// The Figure 18 quotient problem: converter co-located with `TB1`,
/// both transport entities reached directly (the reliable internet
/// substrate of §6 is abstracted into direct interaction; see
/// [`symmetric_gateway`] for the variant with lossy network services).
pub fn gateway_configuration() -> crate::paper::Configuration {
    let ta = transport_a_initiator();
    let tb = transport_b_responder();
    let b = protoquot_spec::compose_all(&[&ta, &tb])
        .expect("transport alphabets are disjoint")
        .with_name("TA0||TB1");
    let int = Alphabet::from_names([
        "-CRa", "+CCa", "-DTa", "+AKa", "-FINa", "+FCa", "+CRb", "-CCb", "+DTb", "-AKb", "+FINb",
        "-FCb",
    ]);
    let ext = Alphabet::from_names(["open", "send", "deliver", "close"]);
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    crate::paper::Configuration { b, int, ext }
}

/// The Figure 17 variant: the converter reaches both transport
/// entities through lossy network services (`NSa`, `NSb`), each
/// announcing losses with its own timeout. Timeouts go to the
/// converter, which — as in the paper's symmetric example — may not be
/// able to reconcile safety and progress.
pub fn symmetric_gateway() -> crate::paper::Configuration {
    let ta = transport_a_initiator();
    let tb = transport_b_responder();
    let nsa = crate::channel::duplex_lossy_channel(
        "NSa",
        &["CRa", "CCa", "DTa", "AKa", "FINa", "FCa"],
        "t_a",
    );
    let nsb = crate::channel::duplex_lossy_channel(
        "NSb",
        &["CRb", "CCb", "DTb", "AKb", "FINb", "FCb"],
        "t_b",
    );
    let b = protoquot_spec::compose_all(&[&ta, &nsa, &nsb, &tb])
        .expect("each message event is shared by exactly two components")
        .with_name("TA0||NSa||NSb||TB1");
    // The converter sees the channel-far ends plus both timeouts.
    let int = Alphabet::from_names([
        "+CRa", "-CCa", "+DTa", "-AKa", "+FINa", "-FCa", "t_a", "-CRb", "+CCb", "-DTb", "+AKb",
        "-FINb", "+FCb", "t_b",
    ]);
    let ext = Alphabet::from_names(["open", "send", "deliver", "close"]);
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    crate::paper::Configuration { b, int, ext }
}

/// The Figure 16 naive pass-through entity: relays each message as soon
/// as it arrives and — fatally — acknowledges `DTa` locally, before the
/// data reaches TB1's user. Provided so the §6 example can demonstrate
/// the orderly-close failure concretely.
pub fn naive_passthrough() -> Spec {
    let mut b = SpecBuilder::new("C-naive");
    let states: Vec<_> = (0..12).map(|i| b.state(&format!("n{i}"))).collect();
    let script = [
        "-CRa", "+CRb", "-CCb", "+CCa", "-DTa", "+AKa", // local ack: too early!
        "+DTb", "-AKb", "-FINa", "+FINb", "-FCb", "+FCa",
    ];
    for (i, ev) in script.iter().enumerate() {
        b.ext(states[i], ev, states[(i + 1) % 12]);
    }
    b.initial(states[0]);
    b.build().expect("naive passthrough is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{compose, has_trace, satisfies, trace_of, Violation};

    #[test]
    fn transport_machines_shape() {
        assert_eq!(transport_a_initiator().num_states(), 9);
        assert_eq!(transport_b_responder().num_states(), 7);
        assert!(transport_a_initiator()
            .alphabet()
            .is_disjoint(transport_b_responder().alphabet()));
    }

    #[test]
    fn service_orders_delivery_before_close() {
        let s = connection_service();
        assert!(has_trace(
            &s,
            &trace_of(&["open", "send", "deliver", "close"])
        ));
        assert!(!has_trace(&s, &trace_of(&["open", "send", "close"])));
    }

    #[test]
    fn naive_passthrough_breaks_orderly_close() {
        let cfg = gateway_configuration();
        let composite = compose(&cfg.b, &naive_passthrough());
        match satisfies(&composite, &connection_service()).unwrap() {
            Err(Violation::Safety { trace }) => {
                // The witness closes before delivering.
                let names: Vec<String> = trace.iter().map(|e| e.name()).collect();
                assert_eq!(names, ["open", "send", "close"]);
            }
            other => panic!("expected the orderly-close violation, got {other:?}"),
        }
    }

    #[test]
    fn derived_gateway_converter_preserves_orderly_close() {
        let cfg = gateway_configuration();
        let q = protoquot_core::solve(&cfg.b, &connection_service(), &cfg.int)
            .expect("a correct gateway converter exists");
        protoquot_core::verify_converter(&cfg.b, &connection_service(), &q.converter)
            .expect("derived converter verifies");
        // The derived converter must NOT acknowledge before +DTb/-AKb:
        // no trace …-DTa, +AKa… without an intervening -AKb.
        let composite = compose(&cfg.b, &q.converter);
        assert!(!has_trace(
            &composite,
            &trace_of(&["open", "send", "close"])
        ));
    }
}
