//! Mod-k sequence-number generalisation of the alternating-bit protocol.
//!
//! `k = 2` reduces exactly to the paper's AB protocol (Figure 7) up to
//! state naming; larger `k` gives a family of growing-but-similar
//! protocols used by the scaling benchmarks (EXP-C1/C2): the input
//! machines grow linearly in `k`, and the quotient's work grows with
//! them.
//!
//! Like the paper's AB protocol this is stop-and-wait (one outstanding
//! message); the sequence space, not the window, is what scales.

use protoquot_spec::{Spec, SpecBuilder};

/// Sender with mod-`k` sequence numbers: per phase `i`,
/// `idle_i --acc--> snd_i --(-d<i>)--> wai_i --(+a<i>)--> idle_{i+1}`,
/// with timeout retransmission and stale-ack self-loops.
pub fn modk_sender(k: usize) -> Spec {
    assert!(k >= 2, "need at least two sequence numbers");
    let mut b = SpecBuilder::new(&format!("A0-mod{k}"));
    let idle: Vec<_> = (0..k).map(|i| b.state(&format!("idle{i}"))).collect();
    let snd: Vec<_> = (0..k).map(|i| b.state(&format!("snd{i}"))).collect();
    let wai: Vec<_> = (0..k).map(|i| b.state(&format!("wai{i}"))).collect();
    for i in 0..k {
        b.ext(idle[i], "acc", snd[i]);
        b.ext(snd[i], &format!("-d{i}"), wai[i]);
        b.ext(wai[i], &format!("+a{i}"), idle[(i + 1) % k]);
        b.ext(wai[i], "t_A", snd[i]);
        for j in 0..k {
            if j != i {
                b.ext(wai[i], &format!("+a{j}"), wai[i]); // stale ack
            }
        }
    }
    b.initial(idle[0]);
    b.build().expect("mod-k sender is well-formed")
}

/// Receiver with mod-`k` sequence numbers: delivers `d<i>` when
/// expecting `i`; re-acknowledges the previous number on a duplicate.
pub fn modk_receiver(k: usize) -> Spec {
    assert!(k >= 2, "need at least two sequence numbers");
    let mut b = SpecBuilder::new(&format!("A1-mod{k}"));
    let exp: Vec<_> = (0..k).map(|i| b.state(&format!("exp{i}"))).collect();
    let dlv: Vec<_> = (0..k).map(|i| b.state(&format!("dlv{i}"))).collect();
    let ack: Vec<_> = (0..k).map(|i| b.state(&format!("ack{i}"))).collect();
    for i in 0..k {
        let prev = (i + k - 1) % k;
        b.ext(exp[i], &format!("+d{i}"), dlv[i]);
        b.ext(exp[i], &format!("+d{prev}"), ack[prev]); // duplicate
        b.ext(dlv[i], "del", ack[i]);
        b.ext(ack[i], &format!("-a{i}"), exp[(i + 1) % k]);
    }
    b.initial(exp[0]);
    b.build().expect("mod-k receiver is well-formed")
}

/// The message vocabulary of the mod-`k` protocol (for building its
/// channel via [`crate::channel::duplex_lossy_channel`]).
pub fn modk_messages(k: usize) -> Vec<String> {
    (0..k)
        .map(|i| format!("d{i}"))
        .chain((0..k).map(|i| format!("a{i}")))
        .collect()
}

/// The complete mod-`k` system: sender ‖ lossy channel ‖ receiver.
pub fn modk_system(k: usize) -> Spec {
    let msgs = modk_messages(k);
    let msg_refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
    let ch = crate::channel::duplex_lossy_channel(&format!("ch-mod{k}"), &msg_refs, "t_A");
    protoquot_spec::compose_all(&[&modk_sender(k), &ch, &modk_receiver(k)])
        .expect("mod-k system shares each event pairwise")
        .with_name(&format!("mod{k}-system"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::exactly_once;
    use protoquot_spec::{bisimilar, satisfies};

    #[test]
    fn mod2_is_the_ab_protocol() {
        assert!(bisimilar(&modk_sender(2), &crate::abp::ab_sender()));
        assert!(bisimilar(&modk_receiver(2), &crate::abp::ab_receiver()));
    }

    #[test]
    fn sizes_grow_linearly() {
        for k in 2..=5 {
            assert_eq!(modk_sender(k).num_states(), 3 * k);
            assert_eq!(modk_receiver(k).num_states(), 3 * k);
            assert_eq!(modk_messages(k).len(), 2 * k);
        }
    }

    #[test]
    fn modk_systems_satisfy_exactly_once() {
        for k in 2..=4 {
            let sys = modk_system(k);
            let verdict = satisfies(&sys, &exactly_once()).unwrap();
            assert!(verdict.is_ok(), "mod-{k} failed: {:?}", verdict.err());
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn k1_rejected() {
        modk_sender(1);
    }
}
