//! # protoquot-protocols
//!
//! The protocol and service specification zoo for the Calvert & Lam
//! SIGCOMM '89 reproduction:
//!
//! * [`abp`] — the alternating-bit protocol (paper Figure 7);
//! * [`nonseq`] — the non-sequenced protocol (Figure 8);
//! * [`channel`] — lossy single-slot duplex channels with non-premature
//!   timeouts (Figure 10);
//! * [`service`] — the exactly-once service (Figure 11) and the §5
//!   at-least-once weakening;
//! * [`paper`] — the exact §5 problem configurations (Figures 9 and 13)
//!   plus the complete AB/NS systems used to validate the formalism;
//! * [`sliding`] — a mod-k sequence-number generalisation (k = 2 is the
//!   AB protocol) for scaling studies;
//! * [`families`] — parameterised machine families for the §7
//!   complexity claims and randomized property tests.
//!
//! All machines compose by event *name* (e.g. the sender's `-d0` is the
//! channel's `-d0`), mirroring how the paper wires Figure 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abp;
pub mod channel;
pub mod duplex;
pub mod families;
pub mod frontman;
pub mod gateway;
pub mod nak;
pub mod nonseq;
pub mod paper;
pub mod pipelined;
pub mod service;
pub mod sliding;

pub use abp::{ab_receiver, ab_sender};
pub use channel::{
    ab_channel, duplex_lossy_channel, duplex_premature_timeout_channel, duplex_reliable_channel,
    duplex_spurious_timeout_channel, ns_channel,
};
pub use duplex::{direct_sender, duplex_configuration, duplex_service, rename_suffixed};
pub use families::{nfa_blowup, random_component, relay_chain, toggle_puzzle, RandomParams};
pub use frontman::{
    foreign_client, frontman_configuration, native_client, server, two_client_service,
};
pub use gateway::{
    connection_service, gateway_configuration, naive_passthrough, symmetric_gateway,
    transport_a_initiator, transport_b_responder,
};
pub use nak::{
    ab_to_nak_configuration, corrupting_channel, nak_receiver, nak_sender,
    nak_system_fully_corrupting, nak_system_half_corrupting,
};
pub use nonseq::{ns_receiver, ns_sender};
pub use paper::{
    ab_system, colocated_configuration, ns_system, symmetric_configuration, Configuration,
};
pub use pipelined::{
    fifo_channel, flow_control_configuration, window_receiver, window_sender, windowed_system,
};
pub use service::{at_least_once, exactly_once, windowed};
pub use sliding::{modk_messages, modk_receiver, modk_sender, modk_system};
