//! The non-sequenced (NS) protocol (paper Figure 8).
//!
//! No sequence numbers: the sender `N0` repeatedly transmits a data
//! message `D` until an acknowledgement `A` is received; the receiver
//! `N1` delivers *every* received data message. The protocol guarantees
//! at-least-once delivery, so its service is strictly weaker than the
//! AB protocol's exactly-once service.

use protoquot_spec::{Spec, SpecBuilder};

/// The NS sender `N0` (3 states).
///
/// Interface: `acc` (user), `-D` (data out), `+A` (ack in), `t_N`
/// (timeout from the channel).
pub fn ns_sender() -> Spec {
    let mut b = SpecBuilder::new("N0");
    let n0 = b.state("n0");
    let n1 = b.state("n1");
    let n2 = b.state("n2");
    b.ext(n0, "acc", n1);
    b.ext(n1, "-D", n2);
    b.ext(n2, "+A", n0);
    b.ext(n2, "t_N", n1); // retransmit after loss
    b.build().expect("N0 is well-formed")
}

/// The NS receiver `N1` (3 states).
///
/// Interface: `+D` (data in), `del` (user), `-A` (ack out). Delivers
/// every received message — duplicates included.
pub fn ns_receiver() -> Spec {
    let mut b = SpecBuilder::new("N1");
    let m0 = b.state("m0");
    let m1 = b.state("m1");
    let m2 = b.state("m2");
    b.ext(m0, "+D", m1);
    b.ext(m1, "del", m2);
    b.ext(m2, "-A", m0);
    b.build().expect("N1 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of, Alphabet};

    #[test]
    fn shapes() {
        let s = ns_sender();
        let r = ns_receiver();
        assert_eq!(s.num_states(), 3);
        assert_eq!(r.num_states(), 3);
        assert_eq!(
            s.alphabet(),
            &Alphabet::from_names(["acc", "-D", "+A", "t_N"])
        );
        assert_eq!(r.alphabet(), &Alphabet::from_names(["+D", "del", "-A"]));
    }

    #[test]
    fn sender_retransmits_until_acked() {
        let s = ns_sender();
        assert!(has_trace(
            &s,
            &trace_of(&["acc", "-D", "t_N", "-D", "+A", "acc"])
        ));
        assert!(!has_trace(&s, &trace_of(&["acc", "-D", "-D"])));
        assert!(!has_trace(&s, &trace_of(&["-D"])));
    }

    #[test]
    fn receiver_delivers_every_message() {
        let r = ns_receiver();
        assert!(has_trace(
            &r,
            &trace_of(&["+D", "del", "-A", "+D", "del", "-A"])
        ));
        // Must ack before the next receive (half-duplex discipline).
        assert!(!has_trace(&r, &trace_of(&["+D", "+D"])));
        assert!(!has_trace(&r, &trace_of(&["+D", "del", "del"])));
    }
}
