//! A NAK-based (negative-acknowledgement) protocol over corrupting
//! channels — an extension experiment (EXP-NAK in EXPERIMENTS.md).
//!
//! Where the paper's channels *lose* messages and signal timeouts, these
//! channels *corrupt* them: the receiver always gets something, but it
//! may be garbage (`+junk`). The receiver answers good data with `ack`
//! and garbage with `nak`; the sender retransmits on `nak`.
//!
//! The interesting structure mirrors the paper's §5 conflict in a
//! different guise:
//!
//! * if only the **data** direction corrupts, the NAK protocol provides
//!   exactly-once delivery;
//! * if the **return** direction corrupts too, a garbled response is
//!   ambiguous — was it the ack (retransmitting duplicates) or the nak
//!   (not retransmitting deadlocks)? Exactly-once becomes impossible,
//!   for the same safety/progress reason the paper's symmetric
//!   configuration fails.
//!
//! The corresponding conversion problem (AB sender ↔ NAK machinery) is
//! exercised in the crate tests and the experiment report.

use protoquot_spec::{Spec, SpecBuilder};

/// A corrupting single-slot simplex channel: `-x` in, then either `+x`
/// (intact) or — after an internal corruption step — `+junk_<tag>`.
/// `tag` distinguishes multiple channels' junk events.
pub fn corrupting_channel(name: &str, messages: &[&str], tag: &str) -> Spec {
    let mut b = SpecBuilder::new(name);
    let empty = b.state("empty");
    let garbled = b.state("garbled");
    for m in messages {
        let holding = b.state(&format!("has_{m}"));
        b.ext(empty, &format!("-{m}"), holding);
        b.ext(holding, &format!("+{m}"), empty);
        b.int(holding, garbled);
    }
    b.ext(garbled, &format!("+junk_{tag}"), empty);
    b.initial(empty);
    b.build().expect("corrupting channel is well-formed")
}

/// NAK sender: accepts a message, transmits `msg`, then waits for the
/// response: `ack` completes, `nak` retransmits. If the return channel
/// can corrupt, it may also see `junk_r` — and must decide; this
/// machine retransmits (the safe-for-progress, unsafe-for-duplication
/// choice), which is what makes the full-corruption system fail
/// exactly-once.
pub fn nak_sender() -> Spec {
    let mut b = SpecBuilder::new("K0");
    let idle = b.state("idle");
    let sending = b.state("sending");
    let waiting = b.state("waiting");
    b.ext(idle, "acc", sending);
    b.ext(sending, "-msg", waiting);
    b.ext(waiting, "+ack", idle);
    b.ext(waiting, "+nak", sending);
    b.ext(waiting, "+junk_r", sending); // ambiguous response: retransmit
    b.build().expect("K0 is well-formed")
}

/// NAK receiver: delivers good data then acks; answers garbage with a
/// nak. No sequence numbers, so a retransmission after a corrupted
/// *ack* is delivered twice.
pub fn nak_receiver() -> Spec {
    let mut b = SpecBuilder::new("K1");
    let idle = b.state("idle");
    let holding = b.state("holding");
    let acking = b.state("acking");
    let naking = b.state("naking");
    b.ext(idle, "+msg", holding);
    b.ext(idle, "+junk_d", naking);
    b.ext(holding, "del", acking);
    b.ext(acking, "-ack", idle);
    b.ext(naking, "-nak", idle);
    b.build().expect("K1 is well-formed")
}

/// The data-direction channel (sender → receiver), corrupting.
pub fn nak_data_channel() -> Spec {
    corrupting_channel("Kd", &["msg"], "d")
}

/// The return channel (receiver → sender): reliable variant. It
/// declares `+junk_r` in its interface without ever enabling it, so
/// composing with the sender hides the event (a reliable channel never
/// produces garbage — and per the composition rules, a shared event
/// not enabled on both sides simply cannot occur).
pub fn nak_return_channel_reliable() -> Spec {
    let junk: protoquot_spec::Alphabet = ["+junk_r"].into_iter().collect();
    crate::channel::duplex_reliable_channel("Kr", &["ack", "nak"]).with_alphabet_extended(&junk)
}

/// The return channel: corrupting variant.
pub fn nak_return_channel_corrupting() -> Spec {
    corrupting_channel("Kr", &["ack", "nak"], "r")
}

/// The complete NAK system with a corrupting data channel and a
/// *reliable* return channel: provides exactly-once delivery.
pub fn nak_system_half_corrupting() -> Spec {
    protoquot_spec::compose_all(&[
        &nak_sender(),
        &nak_data_channel(),
        &nak_return_channel_reliable(),
        &nak_receiver(),
    ])
    .expect("each event shared pairwise")
    .with_name("K0||Kd||Kr||K1")
}

/// The complete NAK system with corruption in both directions: the
/// ambiguous garbled response breaks exactly-once.
pub fn nak_system_fully_corrupting() -> Spec {
    protoquot_spec::compose_all(&[
        &nak_sender(),
        &nak_data_channel(),
        &nak_return_channel_corrupting(),
        &nak_receiver(),
    ])
    .expect("each event shared pairwise")
    .with_name("K0||Kd||Kr'||K1")
}

/// The conversion problem: the paper's AB sender (with its lossy
/// channel) on one side, the NAK receiver behind a corrupting data
/// channel on the other; the converter bridges them, seeing the AB
/// channel events, the NAK channel events and the NAK responses
/// directly (it is co-located with the NAK machinery's near end).
pub fn ab_to_nak_configuration() -> crate::paper::Configuration {
    let a0 = crate::abp::ab_sender();
    let ach = crate::channel::ab_channel();
    let kd = nak_data_channel();
    let k1 = nak_receiver();
    // The receiver's responses come straight back to the converter.
    let b = protoquot_spec::compose_all(&[&a0, &ach, &kd, &k1])
        .expect("each event shared pairwise")
        .with_name("A0||Ach||Kd||K1");
    let int: protoquot_spec::Alphabet = [
        "+d0", "+d1", "-a0", "-a1",  // AB channel far end
        "-msg", // into the corrupting data channel
        "-ack", "-nak", // NAK responses, direct
    ]
    .into_iter()
    .collect();
    let ext: protoquot_spec::Alphabet = ["acc", "del"].into_iter().collect();
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    crate::paper::Configuration { b, int, ext }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{at_least_once, exactly_once};
    use protoquot_spec::{satisfies, Violation};

    #[test]
    fn shapes() {
        assert_eq!(nak_sender().num_states(), 3);
        assert_eq!(nak_receiver().num_states(), 4);
        assert_eq!(nak_data_channel().num_states(), 3);
        assert_eq!(nak_return_channel_corrupting().num_states(), 4);
    }

    #[test]
    fn half_corrupting_system_is_exactly_once() {
        let sys = nak_system_half_corrupting();
        let verdict = satisfies(&sys, &exactly_once()).unwrap();
        assert!(
            verdict.is_ok(),
            "half-corrupting NAK failed: {:?}",
            verdict.err()
        );
    }

    #[test]
    fn fully_corrupting_system_duplicates() {
        let sys = nak_system_fully_corrupting();
        match satisfies(&sys, &exactly_once()).unwrap() {
            Err(Violation::Safety { trace }) => {
                let del = protoquot_spec::EventId::new("del");
                assert_eq!(*trace.last().unwrap(), del);
                assert_eq!(trace[trace.len() - 2], del);
            }
            other => panic!("expected duplicate delivery, got {other:?}"),
        }
        // But at-least-once still holds: the retransmit-on-junk choice
        // preserves progress.
        assert!(satisfies(&sys, &at_least_once()).unwrap().is_ok());
    }

    #[test]
    fn ab_to_nak_converter_exists_for_exactly_once() {
        // The converter sees the NAK responses directly (no corruption
        // between it and K1's answers), so — like the paper's
        // co-located configuration — exact delivery is achievable: on
        // `-nak` it retransmits `-msg`, on `-ack` it acknowledges the
        // AB side.
        let cfg = ab_to_nak_configuration();
        let q =
            protoquot_core::solve(&cfg.b, &exactly_once(), &cfg.int).expect("converter must exist");
        protoquot_core::verify_converter(&cfg.b, &exactly_once(), &q.converter)
            .expect("and verify");
        // Its core handles retransmission: some state reacts to -nak by
        // eventually re-sending -msg.
        let nak = protoquot_spec::EventId::new("-nak");
        assert!(q.converter.external_transitions().any(|(_, e, _)| e == nak));
    }

    #[test]
    fn ab_to_nak_with_corrupting_return_fails() {
        // Variant: the converter hears responses through a corrupting
        // return channel — the garbled response is ambiguous and the
        // same conflict as the paper's Fig. 9 appears.
        let a0 = crate::abp::ab_sender();
        let ach = crate::channel::ab_channel();
        let kd = nak_data_channel();
        let kr = nak_return_channel_corrupting();
        let k1 = nak_receiver();
        let b = protoquot_spec::compose_all(&[&a0, &ach, &kd, &kr, &k1])
            .unwrap()
            .with_name("A0||Ach||Kd||Kr'||K1");
        let int: protoquot_spec::Alphabet = [
            "+d0", "+d1", "-a0", "-a1", "-msg", "+ack", "+nak", "+junk_r",
        ]
        .into_iter()
        .collect();
        let r = protoquot_core::solve(&b, &exactly_once(), &int);
        assert!(
            matches!(
                r,
                Err(protoquot_core::QuotientError::NoProgressingConverter { .. })
            ),
            "ambiguous corruption must make exactly-once impossible"
        );
        // The weakening restores existence, as in the paper.
        let q = protoquot_core::solve(&b, &at_least_once(), &int)
            .expect("at-least-once admits a converter");
        protoquot_core::verify_converter(&b, &at_least_once(), &q.converter).unwrap();
    }
}
