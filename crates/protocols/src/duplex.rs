//! Bidirectional conversion (EXP-DUPLEX): one converter mediating two
//! independent directions at once.
//!
//! The paper's example converts a single simplex data flow. Real
//! gateways relay both ways, so this module builds the two-directional
//! version of the co-located problem:
//!
//! * direction 1 (the paper's): AB sender behind its lossy channel,
//!   NS receiver co-located with the converter — events suffixed `_1`;
//! * direction 2 (the mirror): an NS-style sender co-located with the
//!   converter, delivering to the AB *receiver* directly — the
//!   converter plays the AB sender role, attaching sequence bits —
//!   events suffixed `_2`.
//!
//! The service is the interleaved product of two independent
//! alternations. The quotient must derive a converter that runs both
//! conversions concurrently without ever confusing them — a stress
//! test of the pair-set construction on a product-shaped problem.

use crate::paper::Configuration;
use protoquot_spec::{compose, compose_all, Alphabet, Spec, SpecBuilder};

/// Returns a copy of `spec` with every event renamed `e` → `e<suffix>`.
pub fn rename_suffixed(spec: &Spec, suffix: &str) -> Spec {
    let mut out = spec.clone().with_name(&format!("{}{suffix}", spec.name()));
    for e in spec.alphabet().iter() {
        let renamed = protoquot_spec::EventId::new(&format!("{}{suffix}", e.name()));
        out = out
            .rename_event(e, renamed)
            .expect("suffixing cannot collide");
    }
    out
}

/// An NS-style sender with no retransmission machinery: it hands the
/// message to its co-located peer and waits for the direct
/// acknowledgement (nothing between them can be lost).
pub fn direct_sender(acc: &str, data: &str, ack: &str) -> Spec {
    let mut b = SpecBuilder::new("N0-direct");
    let idle = b.state("idle");
    let handing = b.state("handing");
    let waiting = b.state("waiting");
    b.ext(idle, acc, handing);
    b.ext(handing, data, waiting);
    b.ext(waiting, ack, idle);
    b.build().expect("direct sender is well-formed")
}

/// The interleaved-product service: both directions independently
/// alternate `acc_i`/`del_i`.
pub fn duplex_service() -> Spec {
    let s1 = rename_suffixed(&crate::service::exactly_once(), "_1");
    let s2 = rename_suffixed(&crate::service::exactly_once(), "_2");
    compose(&s1, &s2).with_name("S-duplex")
}

/// The full two-directional quotient problem.
pub fn duplex_configuration() -> Configuration {
    // Direction 1: the paper's co-located problem, suffixed.
    let a0 = rename_suffixed(&crate::abp::ab_sender(), "_1");
    let ach = rename_suffixed(&crate::channel::ab_channel(), "_1");
    let n1 = rename_suffixed(&crate::nonseq::ns_receiver(), "_1");
    // Direction 2: direct NS-style sender into the converter, AB
    // receiver taking the converter's sequence-numbered output.
    let n0d = direct_sender("acc_2", "-D_2", "+A_2");
    let a1 = rename_suffixed(&crate::abp::ab_receiver(), "_2");

    let b = compose_all(&[&a0, &ach, &n1, &n0d, &a1])
        .expect("directions are event-disjoint; each event shared pairwise")
        .with_name("duplex-B");
    let int: Alphabet = [
        // direction 1 (as in the paper's Fig. 13, suffixed)
        "+d0_1", "+d1_1", "-a0_1", "-a1_1", "+D_1", "-A_1",
        // direction 2 (converter = AB sender toward A1)
        "-D_2", "+A_2", "+d0_2", "+d1_2", "-a0_2", "-a1_2",
    ]
    .into_iter()
    .collect();
    let ext: Alphabet = ["acc_1", "del_1", "acc_2", "del_2"].into_iter().collect();
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    Configuration { b, int, ext }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of};

    #[test]
    fn rename_suffixed_renames_everything() {
        let s = rename_suffixed(&crate::nonseq::ns_sender(), "_x");
        assert!(s.alphabet().contains(protoquot_spec::EventId::new("acc_x")));
        assert!(s.alphabet().contains(protoquot_spec::EventId::new("-D_x")));
        assert!(!s.alphabet().contains(protoquot_spec::EventId::new("acc")));
        assert_eq!(s.num_states(), 3);
    }

    #[test]
    fn duplex_service_interleaves_directions() {
        let s = duplex_service();
        assert_eq!(s.num_states(), 4);
        assert!(has_trace(
            &s,
            &trace_of(&["acc_1", "acc_2", "del_2", "del_1"])
        ));
        assert!(!has_trace(&s, &trace_of(&["acc_1", "acc_1"])));
        assert!(!has_trace(&s, &trace_of(&["del_2"])));
    }

    #[test]
    fn duplex_configuration_shape() {
        let cfg = duplex_configuration();
        assert_eq!(cfg.int.len(), 12);
        assert_eq!(cfg.ext.len(), 4);
        // The composite is the product of the two directions' systems.
        assert!(cfg.b.num_states() > 100);
    }

    #[test]
    fn duplex_converter_exists_and_verifies() {
        let cfg = duplex_configuration();
        let service = duplex_service();
        let q = protoquot_core::solve(&cfg.b, &service, &cfg.int)
            .expect("a bidirectional converter exists");
        protoquot_core::verify_converter(&cfg.b, &service, &q.converter).expect("and verifies");
        // It genuinely serves both directions: events of each appear.
        let used: Alphabet = q
            .converter
            .external_transitions()
            .map(|(_, e, _)| e)
            .collect();
        assert!(used.contains(protoquot_spec::EventId::new("+d0_1")));
        assert!(used.contains(protoquot_spec::EventId::new("+d0_2")));
        assert!(used.contains(protoquot_spec::EventId::new("-D_2")));
    }
}
