//! The §6 closing scenario: the converter as a **front man** for a
//! server (EXP-FRONT in EXPERIMENTS.md).
//!
//! "TB1 might be a yellow pages server, and TA0 a client on a different
//! network that is designed to work with a slightly different service.
//! The converter serves as a 'front man' for the B server, allowing
//! Network A clients … to access the service. At the same time,
//! 'normal' clients of TB1 can access the server directly."
//!
//! Modelled with one native client (talking to the server's native
//! port directly), one foreign client whose protocol entity speaks a
//! different message vocabulary over a transport channel, and a server
//! that serves one request at a time from either port. The converter
//! bridges the foreign messages onto the server's second port; native
//! traffic never touches it. The service is the interleaved product of
//! two request/response alternations.

use crate::paper::Configuration;
use protoquot_spec::{compose, compose_all, Alphabet, Spec, SpecBuilder};

/// The server: serves one request at a time, from the native port
/// (`rq_n`/`rs_n`) or the front-man port (`rq_f`/`rs_f`).
pub fn server() -> Spec {
    let mut b = SpecBuilder::new("SRV");
    let idle = b.state("idle");
    let busy_n = b.state("busy_n");
    let busy_f = b.state("busy_f");
    b.ext(idle, "rq_n", busy_n);
    b.ext(idle, "rq_f", busy_f);
    b.ext(busy_n, "rs_n", idle);
    b.ext(busy_f, "rs_f", idle);
    b.build().expect("server is well-formed")
}

/// The native client: a direct user of the server's native port.
pub fn native_client() -> Spec {
    let mut b = SpecBuilder::new("NC");
    let idle = b.state("idle");
    let asking = b.state("asking");
    let waiting = b.state("waiting");
    let answering = b.state("answering");
    b.ext(idle, "nreq", asking);
    b.ext(asking, "rq_n", waiting);
    b.ext(waiting, "rs_n", answering);
    b.ext(answering, "nresp", idle);
    b.build().expect("native client is well-formed")
}

/// The foreign client's protocol entity: a different vocabulary (`FQ`
/// request / `FR` response messages) over a transport channel.
pub fn foreign_client() -> Spec {
    let mut b = SpecBuilder::new("FC0");
    let idle = b.state("idle");
    let asking = b.state("asking");
    let waiting = b.state("waiting");
    let answering = b.state("answering");
    b.ext(idle, "freq", asking);
    b.ext(asking, "-FQ", waiting);
    b.ext(waiting, "+FR", answering);
    b.ext(answering, "fresp", idle);
    b.build().expect("foreign client is well-formed")
}

/// The two-client service: both request/response conversations proceed
/// independently (interleaved product of two alternations).
pub fn two_client_service() -> Spec {
    let mk = |name: &str, req: &str, resp: &str| {
        let mut b = SpecBuilder::new(name);
        let i = b.state("i");
        let w = b.state("w");
        b.ext(i, req, w);
        b.ext(w, resp, i);
        b.build().unwrap()
    };
    compose(&mk("Sn", "nreq", "nresp"), &mk("Sf", "freq", "fresp")).with_name("S-two-clients")
}

/// The front-man quotient problem: the converter bridges the foreign
/// transport (`+FQ`/`-FR` at the channel's near end) onto the server's
/// second port (`rq_f`/`rs_f`). Native traffic (`rq_n`/`rs_n`) is
/// entirely outside its interface.
pub fn frontman_configuration() -> Configuration {
    let srv = server();
    let nc = native_client();
    let fc = foreign_client();
    let fch = crate::channel::duplex_reliable_channel("Fch", &["FQ", "FR"]);
    let b = compose_all(&[&srv, &nc, &fc, &fch])
        .expect("each event shared pairwise")
        .with_name("SRV||NC||FC0||Fch");
    let int: Alphabet = ["+FQ", "-FR", "rq_f", "rs_f"].into_iter().collect();
    let ext: Alphabet = ["nreq", "nresp", "freq", "fresp"].into_iter().collect();
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    Configuration { b, int, ext }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of, EventId};

    #[test]
    fn shapes_and_interfaces() {
        assert_eq!(server().num_states(), 3);
        assert_eq!(native_client().num_states(), 4);
        assert_eq!(foreign_client().num_states(), 4);
        let cfg = frontman_configuration();
        assert_eq!(cfg.int.len(), 4);
        assert_eq!(cfg.ext.len(), 4);
    }

    #[test]
    fn service_interleaves_the_clients() {
        let s = two_client_service();
        assert!(has_trace(
            &s,
            &trace_of(&["nreq", "freq", "fresp", "nresp"])
        ));
        assert!(!has_trace(&s, &trace_of(&["nreq", "nreq"])));
        assert!(!has_trace(&s, &trace_of(&["fresp"])));
    }

    #[test]
    fn frontman_converter_derived_and_verified() {
        let cfg = frontman_configuration();
        let service = two_client_service();
        let q = protoquot_core::solve(&cfg.b, &service, &cfg.int).expect("the front man exists");
        protoquot_core::verify_converter(&cfg.b, &service, &q.converter).expect("verifies");
        // The front man never touches native traffic: its alphabet has
        // no native-port events (by problem construction)…
        assert!(!q.converter.alphabet().contains(EventId::new("rq_n")));
        // …and it bridges the foreign vocabulary onto the server port.
        let used: Alphabet = q
            .converter
            .external_transitions()
            .map(|(_, e, _)| e)
            .collect();
        assert!(used.contains(EventId::new("+FQ")));
        assert!(used.contains(EventId::new("rq_f")));
    }

    #[test]
    fn native_round_trips_survive_a_dead_front_man() {
        // "Normal clients of TB1 can access the server directly": even a
        // front man that never does anything leaves the native path
        // usable (though the whole system then fails the two-client
        // service on progress, as it must).
        let cfg = frontman_configuration();
        let mut cb = SpecBuilder::new("stuck");
        cb.state("c0");
        for e in cfg.int.iter() {
            cb.event(&e.name());
        }
        let stuck = cb.build().unwrap();
        let composite = protoquot_spec::compose(&cfg.b, &stuck);
        assert!(has_trace(
            &composite,
            &trace_of(&["nreq", "nresp", "nreq", "nresp"])
        ));
        assert!(protoquot_core::verify_converter(&cfg.b, &two_client_service(), &stuck).is_err());
    }
}
