//! The exact problem configurations of the paper's §5 example.
//!
//! * Figure 9 (symmetric): `B = A0 ‖ Ach ‖ Nch ‖ N1` — the converter
//!   sits between the two lossy channels. The safety phase yields a
//!   converter (Figure 12), but safety and progress conflict — a loss in
//!   `Nch` cannot be told apart as data-loss vs ack-loss — so **no**
//!   converter exists.
//! * Figure 13 (co-located): `B = A0 ‖ Ach ‖ N1` — the converter talks
//!   to the NS receiver directly (`+D`/`-A` synchronise with `N1`), and
//!   the quotient succeeds (Figure 14).
//!
//! Both use the Figure 11 service. The §5 weakening —
//! [`crate::service::at_least_once`] — restores existence for the
//! symmetric configuration.

use crate::abp::{ab_receiver, ab_sender};
use crate::channel::{ab_channel, ns_channel};
use crate::nonseq::{ns_receiver, ns_sender};
use protoquot_spec::{compose_all, Alphabet, Spec};

/// A quotient problem instance: the fixed components `B`, the converter
/// interface `Int`, and the user interface `Ext`.
#[derive(Clone, Debug)]
pub struct Configuration {
    /// The composed fixed components.
    pub b: Spec,
    /// The converter's interface.
    pub int: Alphabet,
    /// The users' interface (= the service alphabet).
    pub ext: Alphabet,
}

/// The Figure 9 configuration: converter between two lossy channels.
pub fn symmetric_configuration() -> Configuration {
    let a0 = ab_sender();
    let ach = ab_channel();
    let nch = ns_channel();
    let n1 = ns_receiver();
    let b = compose_all(&[&a0, &ach, &nch, &n1])
        .expect("paper components share each event pairwise")
        .with_name("A0||Ach||Nch||N1");
    let int = Alphabet::from_names(["+d0", "+d1", "-a0", "-a1", "-D", "+A", "t_N"]);
    let ext = Alphabet::from_names(["acc", "del"]);
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    Configuration { b, int, ext }
}

/// The Figure 13 configuration: converter co-located with the NS
/// receiver (no `Nch`; `+D`/`-A` are direct interactions with `N1`).
pub fn colocated_configuration() -> Configuration {
    let a0 = ab_sender();
    let ach = ab_channel();
    let n1 = ns_receiver();
    let b = compose_all(&[&a0, &ach, &n1])
        .expect("paper components share each event pairwise")
        .with_name("A0||Ach||N1");
    let int = Alphabet::from_names(["+d0", "+d1", "-a0", "-a1", "+D", "-A"]);
    let ext = Alphabet::from_names(["acc", "del"]);
    debug_assert_eq!(b.alphabet(), &int.union(&ext));
    Configuration { b, int, ext }
}

/// The complete AB protocol system `A0 ‖ Ach ‖ A1` — used to validate
/// the formalization: it must satisfy the exactly-once service.
pub fn ab_system() -> Spec {
    compose_all(&[&ab_sender(), &ab_channel(), &ab_receiver()])
        .expect("AB system shares each event pairwise")
        .with_name("A0||Ach||A1")
}

/// The complete NS protocol system `N0 ‖ Nch ‖ N1` — must satisfy the
/// at-least-once service but *not* the exactly-once service.
pub fn ns_system() -> Spec {
    compose_all(&[&ns_sender(), &ns_channel(), &ns_receiver()])
        .expect("NS system shares each event pairwise")
        .with_name("N0||Nch||N1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{at_least_once, exactly_once};
    use protoquot_spec::{satisfies, satisfies_safety, Violation};

    #[test]
    fn configurations_have_expected_interfaces() {
        let sym = symmetric_configuration();
        assert_eq!(sym.int.len(), 7);
        assert_eq!(sym.ext.len(), 2);
        assert!(sym.int.is_disjoint(&sym.ext));
        let col = colocated_configuration();
        assert_eq!(col.int.len(), 6);
        assert!(col.b.num_states() < sym.b.num_states());
    }

    #[test]
    fn ab_system_satisfies_exactly_once() {
        let sys = ab_system();
        let verdict = satisfies(&sys, &exactly_once()).unwrap();
        assert!(verdict.is_ok(), "AB system must work: {:?}", verdict.err());
    }

    #[test]
    fn ns_system_violates_exactly_once_by_duplication() {
        let sys = ns_system();
        match satisfies(&sys, &exactly_once()).unwrap() {
            Err(Violation::Safety { trace }) => {
                // The witness ends in a duplicate delivery.
                let del = protoquot_spec::EventId::new("del");
                assert_eq!(*trace.last().unwrap(), del);
                assert_eq!(trace[trace.len() - 2], del);
            }
            other => panic!("expected duplicate-delivery violation, got {other:?}"),
        }
    }

    #[test]
    fn ns_system_satisfies_at_least_once() {
        let sys = ns_system();
        let verdict = satisfies(&sys, &at_least_once()).unwrap();
        assert!(verdict.is_ok(), "NS system must work: {:?}", verdict.err());
    }

    #[test]
    fn ab_system_is_safe_for_at_least_once_but_wrong_interface() {
        // Same alphabet, so this is legal: exactly-once behaviour is a
        // subset of at-least-once behaviour.
        let sys = ab_system();
        assert!(satisfies_safety(&sys, &at_least_once()).unwrap().is_ok());
    }

    #[test]
    fn composed_sizes_are_modest() {
        // Reachable compositions stay far below the full products.
        let sym = symmetric_configuration();
        assert!(sym.b.num_states() <= 6 * 6 * 4 * 3);
        assert!(sym.b.num_states() > 10);
        let ab = ab_system();
        assert!(ab.num_states() <= 6 * 6 * 6);
    }
}
