//! The alternating-bit protocol (paper Figure 7).
//!
//! Reconstructed from the paper's description: the sender `A0` attaches
//! a one-bit sequence number to each data message (`-d0`/`-d1`); the
//! receiver `A1` delivers each message exactly once, re-acknowledging
//! duplicates; acknowledgements (`a0`/`a1`) carry the sequence number of
//! the last-delivered message. `-x` passes message `x` into a channel,
//! `+x` removes it. Timeouts (`t_A`) are signalled by the lossy channel
//! and never occur prematurely (see [`crate::channel`]).
//!
//! Event conventions match [`crate::channel::duplex_lossy_channel`] so
//! the pieces compose by name.

use protoquot_spec::{Spec, SpecBuilder};

/// The AB sender `A0` (6 states).
///
/// Interface: `acc` (user), `-d0`, `-d1` (data out), `+a0`, `+a1`
/// (acks in), `t_A` (timeout from the channel).
///
/// ```text
/// idle0 --acc--> snd0 --(-d0)--> wai0 --(+a0)--> idle1
///                 ^-- t_A --------|  (stale +a1 self-loops on wai0)
/// idle1 --acc--> snd1 --(-d1)--> wai1 --(+a1)--> idle0
/// ```
pub fn ab_sender() -> Spec {
    let mut b = SpecBuilder::new("A0");
    let idle0 = b.state("idle0");
    let snd0 = b.state("snd0");
    let wai0 = b.state("wai0");
    let idle1 = b.state("idle1");
    let snd1 = b.state("snd1");
    let wai1 = b.state("wai1");
    b.ext(idle0, "acc", snd0);
    b.ext(snd0, "-d0", wai0);
    b.ext(wai0, "+a0", idle1);
    b.ext(wai0, "t_A", snd0);
    b.ext(wai0, "+a1", wai0); // stale ack: ignore
    b.ext(idle1, "acc", snd1);
    b.ext(snd1, "-d1", wai1);
    b.ext(wai1, "+a1", idle0);
    b.ext(wai1, "t_A", snd1);
    b.ext(wai1, "+a0", wai1); // stale ack: ignore
    b.build().expect("A0 is well-formed")
}

/// The AB receiver `A1` (6 states).
///
/// Interface: `+d0`, `+d1` (data in), `del` (user), `-a0`, `-a1`
/// (acks out). A duplicate data message (wrong bit) is re-acknowledged
/// without delivery.
///
/// ```text
/// exp0 --(+d0)--> dlv0 --del--> ack0 --(-a0)--> exp1
/// exp0 --(+d1)--> ack1                       (duplicate: re-ack)
/// exp1 --(+d1)--> dlv1 --del--> ack1 --(-a1)--> exp0
/// exp1 --(+d0)--> ack0                       (duplicate: re-ack)
/// ```
pub fn ab_receiver() -> Spec {
    let mut b = SpecBuilder::new("A1");
    let exp0 = b.state("exp0");
    let dlv0 = b.state("dlv0");
    let ack0 = b.state("ack0");
    let exp1 = b.state("exp1");
    let dlv1 = b.state("dlv1");
    let ack1 = b.state("ack1");
    b.ext(exp0, "+d0", dlv0);
    b.ext(exp0, "+d1", ack1); // duplicate of previous message
    b.ext(dlv0, "del", ack0);
    b.ext(ack0, "-a0", exp1);
    b.ext(exp1, "+d1", dlv1);
    b.ext(exp1, "+d0", ack0); // duplicate
    b.ext(dlv1, "del", ack1);
    b.ext(ack1, "-a1", exp0);
    b.build().expect("A1 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of, Alphabet};

    #[test]
    fn sender_shape() {
        let s = ab_sender();
        assert_eq!(s.num_states(), 6);
        assert_eq!(s.num_internal(), 0);
        assert_eq!(
            s.alphabet(),
            &Alphabet::from_names(["acc", "-d0", "-d1", "+a0", "+a1", "t_A"])
        );
    }

    #[test]
    fn receiver_shape() {
        let r = ab_receiver();
        assert_eq!(r.num_states(), 6);
        assert_eq!(
            r.alphabet(),
            &Alphabet::from_names(["+d0", "+d1", "del", "-a0", "-a1"])
        );
    }

    #[test]
    fn sender_alternates_bits() {
        let s = ab_sender();
        assert!(has_trace(
            &s,
            &trace_of(&["acc", "-d0", "+a0", "acc", "-d1", "+a1", "acc"])
        ));
        // Cannot send d1 in the first round.
        assert!(!has_trace(&s, &trace_of(&["acc", "-d1"])));
        // Cannot accept a second message before the first is acked.
        assert!(!has_trace(&s, &trace_of(&["acc", "-d0", "acc"])));
    }

    #[test]
    fn sender_retransmits_on_timeout() {
        let s = ab_sender();
        assert!(has_trace(
            &s,
            &trace_of(&["acc", "-d0", "t_A", "-d0", "t_A", "-d0", "+a0"])
        ));
        // No premature timeout: nothing outstanding, no t_A.
        assert!(!has_trace(&s, &trace_of(&["t_A"])));
        assert!(!has_trace(&s, &trace_of(&["acc", "t_A"])));
    }

    #[test]
    fn receiver_delivers_exactly_once_per_bit() {
        let r = ab_receiver();
        assert!(has_trace(
            &r,
            &trace_of(&["+d0", "del", "-a0", "+d1", "del", "-a1"])
        ));
        // A duplicate d0 after delivering is re-acked, not re-delivered.
        assert!(has_trace(
            &r,
            &trace_of(&["+d0", "del", "-a0", "+d0", "-a0", "+d1", "del"])
        ));
        assert!(!has_trace(
            &r,
            &trace_of(&["+d0", "del", "-a0", "+d0", "del"])
        ));
    }

    #[test]
    fn receiver_re_acks_old_bit_initially() {
        // An initial d1 is treated as a duplicate of "message -1": ack a1.
        let r = ab_receiver();
        assert!(has_trace(&r, &trace_of(&["+d1", "-a1", "+d0", "del"])));
    }
}
