//! Service specifications (paper Figure 11 and §5 variants).

use protoquot_spec::{Spec, SpecBuilder};

/// The paper's desired service (Figure 11): strict alternation of
/// `acc` (accept a message from the sending user) and `del` (deliver it
/// to the receiving user) — exactly-once delivery.
pub fn exactly_once() -> Spec {
    let mut b = SpecBuilder::new("S-exactly-once");
    let u0 = b.state("u0");
    let u1 = b.state("u1");
    b.ext(u0, "acc", u1);
    b.ext(u1, "del", u0);
    b.build().expect("service is well-formed")
}

/// The §5 weakening: duplicates allowed. After an `acc` and at least
/// one `del`, the service makes an internal (unfair, design-time)
/// choice between "done with this message" (`acc` next) and "a
/// duplicate delivery is coming" (`del` next). Modelling the choice
/// internally gets the acceptance sets right in both directions:
///
/// * an implementation that never duplicates (the AB system, or the
///   exactly-once service itself) satisfies this service via the
///   `{acc}` option;
/// * an implementation that can *force* a duplicate on the user — the
///   NS system after an acknowledgement loss offers only `del` until
///   the retransmitted message is delivered — satisfies it via the
///   `{del}` option.
///
/// The paper notes this weakening makes a converter possible for the
/// symmetric configuration.
pub fn at_least_once() -> Spec {
    let mut b = SpecBuilder::new("S-at-least-once");
    let u0 = b.state("u0");
    let u1 = b.state("u1");
    let hub = b.state("u2");
    let done = b.state("u2-done");
    let dup = b.state("u2-dup");
    b.ext(u0, "acc", u1);
    b.ext(u1, "del", hub);
    b.int(hub, done);
    b.int(hub, dup);
    b.ext(done, "acc", u1);
    b.ext(dup, "del", hub);
    b.build().expect("service is well-formed")
}

/// A windowed generalisation used by the scaling benches: up to `w`
/// accepted-but-undelivered messages may be outstanding, deliveries in
/// order. `w = 1` is [`exactly_once`].
pub fn windowed(w: usize) -> Spec {
    assert!(w >= 1, "window must be positive");
    let mut b = SpecBuilder::new(&format!("S-window-{w}"));
    let states: Vec<_> = (0..=w).map(|i| b.state(&format!("out{i}"))).collect();
    for i in 0..w {
        b.ext(states[i], "acc", states[i + 1]);
        b.ext(states[i + 1], "del", states[i]);
    }
    b.initial(states[0]);
    b.build().expect("service is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, is_normal_form, trace_of};

    #[test]
    fn exactly_once_alternates() {
        let s = exactly_once();
        assert!(is_normal_form(&s));
        assert!(has_trace(&s, &trace_of(&["acc", "del", "acc", "del"])));
        assert!(!has_trace(&s, &trace_of(&["del"])));
        assert!(!has_trace(&s, &trace_of(&["acc", "acc"])));
        assert!(!has_trace(&s, &trace_of(&["acc", "del", "del"])));
    }

    #[test]
    fn at_least_once_allows_duplicates() {
        let s = at_least_once();
        assert!(is_normal_form(&s));
        assert!(has_trace(
            &s,
            &trace_of(&["acc", "del", "del", "del", "acc"])
        ));
        assert!(!has_trace(&s, &trace_of(&["acc", "acc"])));
        assert!(!has_trace(&s, &trace_of(&["del"])));
        assert!(!has_trace(&s, &trace_of(&["acc", "del", "acc", "acc"])));
    }

    #[test]
    fn exactly_once_refines_at_least_once() {
        // Every exactly-once behaviour is an at-least-once behaviour,
        // and because duplicates are optional (internal choice), the
        // refinement holds for progress too.
        assert!(
            protoquot_spec::satisfy::satisfies(&exactly_once(), &at_least_once())
                .unwrap()
                .is_ok()
        );
        // But not vice versa: a duplicate delivery violates safety.
        assert!(
            protoquot_spec::satisfy::satisfies(&at_least_once(), &exactly_once())
                .unwrap()
                .is_err()
        );
    }

    #[test]
    fn windowed_shapes() {
        assert_eq!(windowed(1).num_states(), 2);
        assert_eq!(windowed(3).num_states(), 4);
        let w2 = windowed(2);
        assert!(has_trace(
            &w2,
            &trace_of(&["acc", "acc", "del", "acc", "del", "del"])
        ));
        assert!(!has_trace(&w2, &trace_of(&["acc", "acc", "acc"])));
        assert!(!has_trace(&w2, &trace_of(&["acc", "del", "del"])));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn windowed_zero_panics() {
        windowed(0);
    }
}
