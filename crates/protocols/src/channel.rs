//! Lossy channels with non-premature timeouts (paper Figure 10).
//!
//! A (duplex) channel is modelled as a single-slot store: `-x` puts
//! message `x` in, `+x` takes it out. While holding a message the
//! channel may *lose* it — an unlabelled internal transition, abstracting
//! the actual causes of loss as the paper prescribes — after which the
//! only possible step is the timeout event delivered to the sending
//! side. Timeouts therefore never occur prematurely: the timeout event
//! fires only after an actual loss.

use protoquot_spec::{Spec, SpecBuilder};

/// Builds a single-slot lossy duplex channel.
///
/// * `name` — spec name (`Ach`, `Nch`, …);
/// * `messages` — the message vocabulary; for each `m`, the channel
///   accepts `-m` when empty and offers `+m` while holding it;
/// * `timeout` — the event announcing a loss to the protocol's sender
///   side (e.g. `t_A`); shared by name with that component.
pub fn duplex_lossy_channel(name: &str, messages: &[&str], timeout: &str) -> Spec {
    let mut b = SpecBuilder::new(name);
    let empty = b.state("empty");
    let lost = b.state("lost");
    for m in messages {
        let holding = b.state(&format!("has_{m}"));
        b.ext(empty, &format!("-{m}"), holding);
        b.ext(holding, &format!("+{m}"), empty);
        b.int(holding, lost);
    }
    b.ext(lost, timeout, empty);
    b.initial(empty);
    b.build().expect("channel is well-formed")
}

/// A lossless variant: no loss transition, no timeout event. Models the
/// reliable local path of the paper's co-located configuration
/// (Figure 13) when an explicit channel component is still wanted.
pub fn duplex_reliable_channel(name: &str, messages: &[&str]) -> Spec {
    let mut b = SpecBuilder::new(name);
    let empty = b.state("empty");
    for m in messages {
        let holding = b.state(&format!("has_{m}"));
        b.ext(empty, &format!("-{m}"), holding);
        b.ext(holding, &format!("+{m}"), empty);
    }
    b.initial(empty);
    b.build().expect("channel is well-formed")
}

/// The AB-side channel `Ach` of the paper: carries `d0`, `d1`, `a0`,
/// `a1`; announces losses via `t_A`.
pub fn ab_channel() -> Spec {
    duplex_lossy_channel("Ach", &["d0", "d1", "a0", "a1"], "t_A")
}

/// The NS-side channel `Nch` of the paper: carries `D`, `A`; announces
/// losses via `t_N`.
pub fn ns_channel() -> Spec {
    duplex_lossy_channel("Nch", &["D", "A"], "t_N")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of, Alphabet};

    #[test]
    fn ab_channel_shape() {
        let c = ab_channel();
        // empty + lost + one holding state per message.
        assert_eq!(c.num_states(), 6);
        assert_eq!(c.num_internal(), 4);
        assert_eq!(
            c.alphabet(),
            &Alphabet::from_names(["-d0", "+d0", "-d1", "+d1", "-a0", "+a0", "-a1", "+a1", "t_A"])
        );
    }

    #[test]
    fn ns_channel_shape() {
        let c = ns_channel();
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.num_internal(), 2);
    }

    #[test]
    fn store_and_forward() {
        let c = ns_channel();
        assert!(has_trace(&c, &trace_of(&["-D", "+D", "-A", "+A"])));
        // Single slot: no second put while holding.
        assert!(!has_trace(&c, &trace_of(&["-D", "-D"])));
        assert!(!has_trace(&c, &trace_of(&["-D", "-A"])));
        // Cannot take what was never put.
        assert!(!has_trace(&c, &trace_of(&["+D"])));
    }

    #[test]
    fn timeout_only_after_loss() {
        let c = ns_channel();
        // t_N possible after a put (via the internal loss).
        assert!(has_trace(&c, &trace_of(&["-D", "t_N", "-D"])));
        // But never from the empty channel.
        assert!(!has_trace(&c, &trace_of(&["t_N"])));
    }

    #[test]
    fn loss_consumes_the_message() {
        let c = ns_channel();
        // After a loss is signalled, the message is gone.
        assert!(!has_trace(&c, &trace_of(&["-D", "t_N", "+D"])));
    }

    #[test]
    fn reliable_channel_never_times_out() {
        let c = duplex_reliable_channel("R", &["D", "A"]);
        assert_eq!(c.num_states(), 3);
        assert_eq!(c.num_internal(), 0);
        assert!(has_trace(&c, &trace_of(&["-D", "+D"])));
    }
}

/// A variant where the timeout **races the delivery**: while holding a
/// message the channel may either hand it over or time out (dropping
/// it) — no internal "loss committed" state in between. The paper's
/// channels are stricter ("these timeouts never occur prematurely"):
/// there, a timeout *proves* a loss happened. Here it proves nothing —
/// the message may have been deliverable.
///
/// The tests measure what that modelling choice costs: the AB protocol
/// still provides exactly-once (a raced retransmission is a duplicate,
/// which the sequence bit absorbs), while the NS protocol — fine with
/// the paper's honest timeouts as far as at-least-once goes — keeps
/// the same service but duplicates on races it can no longer tell
/// apart. (A third variant, timeouts firing even on an *empty* duplex
/// channel, genuinely deadlocks the AB system: the spurious
/// retransmission contends with the ack for the single slot. That is a
/// modelling artefact of the shared duplex slot, and a good example of
/// the checker catching an "obviously harmless" specification tweak.)
pub fn duplex_premature_timeout_channel(name: &str, messages: &[&str], timeout: &str) -> Spec {
    let mut b = SpecBuilder::new(name);
    let empty = b.state("empty");
    for m in messages {
        let holding = b.state(&format!("has_{m}"));
        b.ext(empty, &format!("-{m}"), holding);
        b.ext(holding, &format!("+{m}"), empty);
        b.ext(holding, timeout, empty); // races the delivery
    }
    b.initial(empty);
    b.build().expect("channel is well-formed")
}

/// The spurious-timeout variant described above (fires even when
/// empty); exists to demonstrate the deadlock.
pub fn duplex_spurious_timeout_channel(name: &str, messages: &[&str], timeout: &str) -> Spec {
    let mut b = SpecBuilder::new(name);
    let empty = b.state("empty");
    b.ext(empty, timeout, empty);
    for m in messages {
        let holding = b.state(&format!("has_{m}"));
        b.ext(empty, &format!("-{m}"), holding);
        b.ext(holding, &format!("+{m}"), empty);
        b.ext(holding, timeout, empty);
    }
    b.initial(empty);
    b.build().expect("channel is well-formed")
}

#[cfg(test)]
mod premature_tests {
    use super::*;
    use crate::service::{at_least_once, exactly_once};
    use protoquot_spec::{compose_all, satisfies};

    #[test]
    fn ab_protocol_tolerates_premature_timeouts() {
        let ch = duplex_premature_timeout_channel("Ach'", &["d0", "d1", "a0", "a1"], "t_A");
        let sys =
            compose_all(&[&crate::abp::ab_sender(), &ch, &crate::abp::ab_receiver()]).unwrap();
        let verdict = satisfies(&sys, &exactly_once()).unwrap();
        assert!(
            verdict.is_ok(),
            "sequence bits absorb spurious retransmissions: {:?}",
            verdict.err()
        );
    }

    #[test]
    fn spurious_timeouts_deadlock_the_ab_system() {
        // The checker catches the modelling artefact: a spurious
        // retransmission contends with the in-flight ack for the single
        // duplex slot, and neither side can move.
        let ch = duplex_spurious_timeout_channel("Ach''", &["d0", "d1", "a0", "a1"], "t_A");
        let sys =
            compose_all(&[&crate::abp::ab_sender(), &ch, &crate::abp::ab_receiver()]).unwrap();
        match satisfies(&sys, &exactly_once()).unwrap() {
            Err(protoquot_spec::Violation::Progress { offered, .. }) => {
                assert!(offered.is_empty(), "expected a hard deadlock");
            }
            other => panic!("expected the deadlock, got {other:?}"),
        }
    }

    #[test]
    fn ns_protocol_duplicates_under_premature_timeouts() {
        let ch = duplex_premature_timeout_channel("Nch'", &["D", "A"], "t_N");
        let sys = compose_all(&[
            &crate::nonseq::ns_sender(),
            &ch,
            &crate::nonseq::ns_receiver(),
        ])
        .unwrap();
        // A premature timeout while the ack is in flight forces a
        // retransmission the receiver cannot recognise.
        assert!(satisfies(&sys, &exactly_once()).unwrap().is_err());
        assert!(satisfies(&sys, &at_least_once()).unwrap().is_ok());
    }
}
