//! # protoquot-runtime
//!
//! A live gateway runtime for derived protocol converters.
//!
//! The rest of the workspace *derives* and *verifies* converters in
//! the sense of Calvert & Lam's top-down method; this crate *executes*
//! them as a production-shaped relay:
//!
//! * [`codec`] — a length-prefixed wire format whose event frames are
//!   indices into the shared [`protoquot_spec::EventTable`] (stable
//!   across processes because the table is sorted by event name);
//! * [`guard`] — the online conformance guard: trace membership in
//!   `B ‖ C`, service trace inclusion (ψ-hub), and sink-acceptance
//!   progress containment, **determinized at build time** into a DFA
//!   over `(composite-subset, ψ-hub)` pairs so the per-frame check is
//!   one transition-table row; the subset-replaying interpreter is
//!   retained as the differential oracle;
//! * [`gateway`] — a sharded, session-multiplexed relay: striped
//!   session table, per-session bounded queues drained by a worker
//!   pool, backpressure, idle eviction, graceful drain;
//! * [`transport`] — in-memory loopback and blocking TCP carriers of
//!   the same bytes;
//! * [`mod@drive`] — a seeded load generator replaying fleet-style fault
//!   schedules over the wire, attesting stalls to the server;
//! * [`stats`] — lock-free counters with JSON snapshots.
//!
//! The headline property, enforced by `tests/runtime_agreement.rs` at
//! the workspace root: **every event sequence the runtime accepts is a
//! trace the static checker accepts, and every faulty converter the
//! static checker rejects is convicted online** when driven with the
//! same fleet schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod drive;
pub mod gateway;
pub mod guard;
pub mod stats;
pub mod transport;

pub use codec::{Frame, FrameBuffer, RejectReason, Reply, WireCodec, WireError};
pub use drive::{drive, DriveConfig, DriveReport, RunOutcome};
pub use gateway::{Gateway, GatewayConfig, GatewayError, Responder};
pub use guard::{Conviction, GuardBuildStats, GuardProgram, SessionGuard, SessionGuardReference};
pub use stats::{RuntimeStats, StatsSnapshot};
pub use transport::{Conn, LoopbackConn, TcpConn, TcpServer};
