//! # protoquot-runtime
//!
//! A live gateway runtime for derived protocol converters.
//!
//! The rest of the workspace *derives* and *verifies* converters in
//! the sense of Calvert & Lam's top-down method; this crate *executes*
//! them as a production-shaped relay:
//!
//! * [`codec`] — a length-prefixed wire format whose event frames are
//!   indices into the shared [`protoquot_spec::EventTable`] (stable
//!   across processes because the table is sorted by event name);
//! * [`guard`] — the online conformance guard: trace membership in
//!   `B ‖ C`, service trace inclusion (ψ-hub), and sink-acceptance
//!   progress containment, **determinized at build time** into a DFA
//!   over `(composite-subset, ψ-hub)` pairs so the per-frame check is
//!   one transition-table row; the subset-replaying interpreter is
//!   retained as the differential oracle;
//! * [`gateway`] — a sharded, session-multiplexed relay: striped
//!   session table, per-session bounded queues drained by a worker
//!   pool, backpressure, idle eviction, graceful drain; transports
//!   hand it whole readiness batches via [`Gateway::call_batch`] —
//!   one shard lookup, one session lock, and one contiguous guard-DFA
//!   run per session per batch, replies encoded zero-copy into the
//!   caller's outbound buffer (the per-frame [`Gateway::call`] path
//!   is kept as the differential oracle);
//! * [`transport`] — carriers of the same bytes: in-memory loopback,
//!   blocking thread-per-connection TCP ([`TcpServer`], kept as the
//!   differential oracle), and a non-blocking epoll reactor
//!   ([`ReactorServer`]) that serves every connection from a fixed
//!   pool of event loops and multiplexes 100k+ sessions per socket
//!   via the session ids already present in each frame header;
//! * [`mod@drive`] — a seeded load generator replaying fleet-style fault
//!   schedules over the wire, attesting stalls to the server; one
//!   session at a time per connection ([`drive()`]) or many concurrent
//!   sessions multiplexed over each connection ([`drive_mux`]), with
//!   byte-identical reports either way, and an optional per-session
//!   pipeline window ([`DriveConfig::pipeline`]) that speculates
//!   accepts to keep a batching server saturated — deterministic at
//!   any depth;
//! * [`mod@fuzz`] — a vendored deterministic fuzz engine (seeded
//!   corpus, structure-aware frame mutators, panic/hang detection,
//!   ddmin shrinking) over the codec, guard, and gateway dispatch —
//!   `protoquot fuzz`, gated in CI under a pinned seed;
//! * [`mod@adversarial`] — a hostile load generator: eight wire-level
//!   attacks (garbage, truncation, floods, churn, slow-drip,
//!   backpressure abuse, zombies) with a deterministic,
//!   transport-invariant containment report — `drive --adversarial`;
//! * [`stats`] — lock-free counters with JSON snapshots, including
//!   the connection-eviction taxonomy (`slow_consumer`, `slow_read`,
//!   `protocol`) behind the resource limits in [`transport`];
//! * [`artifact`] — the `PQCA` compiled-converter format: specs plus
//!   the prebuilt guard-DFA tables under a content hash, with a
//!   strict fuzzable loader whose [`CompiledArtifact::instantiate`]
//!   demands the rebuilt guard be byte-identical to the stored one;
//! * [`registry`] — the versioned converter store behind live
//!   hot-swap: admission re-runs [`protoquot_spec::verify_system`]
//!   against the pinned service contract before an artifact can go
//!   live via [`Gateway::swap`], while peers negotiate the wire
//!   identity (event-table hash + active version) in a hello
//!   handshake that is byte-identical across transports.
//!
//! The headline property, enforced by `tests/runtime_agreement.rs` at
//! the workspace root: **every event sequence the runtime accepts is a
//! trace the static checker accepts, and every faulty converter the
//! static checker rejects is convicted online** when driven with the
//! same fleet schedules. `tests/reactor_transport.rs` extends the
//! differential across transports: the same campaign produces the
//! same report over loopback, blocking TCP and the reactor, lockstep
//! or multiplexed.
//!
//! The operator-facing guide — every CLI flag, the stats/report JSON
//! schemas, reject reasons, and backpressure/eviction/drain semantics
//! — is `docs/RUNTIME.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod artifact;
pub mod codec;
pub mod drive;
pub mod fuzz;
pub mod gateway;
pub mod guard;
pub mod registry;
pub mod stats;
pub mod transport;

pub use adversarial::{adversarial, AdversarialConfig, AdversarialReport, AttackOutcome};
pub use artifact::{ArtifactDfa, ArtifactError, CompiledArtifact, ARTIFACT_FORMAT, ARTIFACT_MAGIC};
pub use codec::{
    table_hash, Frame, FrameBuffer, RejectReason, Reply, ReplyBuffer, WireCodec, WireError,
};
pub use drive::{drive, drive_mux, DriveConfig, DriveReport, RunOutcome};
pub use fuzz::{Finding, FindingKind, FuzzConfig, FuzzReport, FuzzTarget};
pub use gateway::{BatchScratch, Gateway, GatewayConfig, GatewayError, Responder};
pub use guard::{Conviction, GuardBuildStats, GuardProgram, SessionGuard, SessionGuardReference};
pub use registry::{AdmittedVersion, ConverterRegistry, RegistryError};
pub use stats::{ConnEvictReason, RuntimeStats, StatsSnapshot};
pub use transport::{
    Conn, ConnLimits, LoopbackConn, LoopbackMux, MuxClient, MuxTransport, ReactorConfig,
    ReactorServer, TcpConn, TcpServer,
};
