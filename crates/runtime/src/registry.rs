//! The versioned converter registry: on-disk artifact store plus
//! admission gating for hot-swaps.
//!
//! A [`ConverterRegistry`] is bound to one *service contract* (the
//! unchanged top-level [`Spec`]) and hands out monotonically numbered
//! converter versions. Admission of candidate bytes is the runtime's
//! refinement check, in three layers:
//!
//! 1. **Integrity** — [`CompiledArtifact::decode`]: magic, format,
//!    content hash, strict bounds on every field.
//! 2. **Self-agreement** — [`CompiledArtifact::instantiate`]: the
//!    guard rebuilt from the embedded specs must be byte-identical to
//!    the stored tables, and carry the stored event-table hash.
//! 3. **Contract** — the embedded service spec must equal the
//!    registry's, and [`protoquot_spec::verify_system`] must re-prove
//!    that the parts satisfy it. A converter that would convict honest
//!    traffic can never go live, no matter what its artifact claims.
//!
//! Only then is the artifact persisted (content-addressed as
//! `<content-hash>.pqca` under the registry directory) and assigned
//! the next version number. The returned [`AdmittedVersion`] carries
//! the compiled [`GuardProgram`] ready for [`Gateway::swap`]; the
//! gateway — not the registry — owns the active/draining version
//! slots and the per-version session accounting.
//!
//! [`Gateway::swap`]: crate::gateway::Gateway::swap

use crate::artifact::{ArtifactError, CompiledArtifact};
use crate::guard::GuardProgram;
use protoquot_spec::{verify_system, Spec, SpecError};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Why a candidate artifact was refused admission (or the store
/// misbehaved).
#[derive(Debug)]
pub enum RegistryError {
    /// Reading or writing the on-disk store failed.
    Io(io::Error),
    /// The bytes failed integrity or self-agreement checks.
    Artifact(ArtifactError),
    /// The artifact was derived against a different service contract
    /// than the one this registry serves.
    ServiceMismatch {
        /// Name of the service the registry is bound to.
        expected: String,
        /// Name of the service embedded in the artifact.
        got: String,
    },
    /// `verify_system` refused the rebuilt system: either it failed to
    /// compose/validate, or it does not satisfy the service.
    Refused(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry store: {e}"),
            RegistryError::Artifact(e) => write!(f, "{e}"),
            RegistryError::ServiceMismatch { expected, got } => write!(
                f,
                "artifact serves contract `{got}`, registry is bound to `{expected}`"
            ),
            RegistryError::Refused(m) => write!(f, "admission refused: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> RegistryError {
        RegistryError::Io(e)
    }
}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> RegistryError {
        RegistryError::Artifact(e)
    }
}

impl From<SpecError> for RegistryError {
    fn from(e: SpecError) -> RegistryError {
        RegistryError::Refused(e.to_string())
    }
}

/// One admitted converter version, ready to go live.
pub struct AdmittedVersion {
    /// The version number assigned by the registry (monotonic).
    pub version: u32,
    /// Content hash of the artifact — its identity in the store.
    pub content_hash: u64,
    /// Event-table hash — the wire identity it negotiates.
    pub table_hash: u64,
    /// The compiled guard, ready for `Gateway::swap`.
    pub program: Arc<GuardProgram>,
    /// Where the artifact was persisted.
    pub path: PathBuf,
}

/// A directory of verified converter artifacts for one service
/// contract, handing out monotonically numbered versions.
pub struct ConverterRegistry {
    dir: PathBuf,
    service: Spec,
    threads: usize,
    next_version: u32,
}

impl ConverterRegistry {
    /// Opens (creating if needed) the registry directory `dir`, bound
    /// to `service`. The first admitted artifact becomes version
    /// `base_version + 1` — pass the gateway's current active version
    /// so swaps are always strictly newer.
    pub fn open<P: AsRef<Path>>(
        dir: P,
        service: &Spec,
        base_version: u32,
    ) -> io::Result<ConverterRegistry> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ConverterRegistry {
            dir,
            service: service.clone(),
            threads: 1,
            next_version: base_version.saturating_add(1),
        })
    }

    /// Worker threads for the admission `verify_system` run.
    pub fn with_verify_threads(mut self, threads: usize) -> ConverterRegistry {
        self.threads = threads.max(1);
        self
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The version the next admitted artifact will receive.
    pub fn next_version(&self) -> u32 {
        self.next_version
    }

    /// Content hashes of every artifact currently persisted in the
    /// store (files named `<hash>.pqca`), sorted.
    pub fn stored(&self) -> io::Result<Vec<u64>> {
        let mut hashes = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if path.extension().and_then(|e| e.to_str()) != Some("pqca") {
                continue;
            }
            if let Ok(h) = u64::from_str_radix(stem, 16) {
                hashes.push(h);
            }
        }
        hashes.sort_unstable();
        Ok(hashes)
    }

    /// Runs the full admission gate on candidate bytes; on success the
    /// artifact is persisted and the next version number assigned.
    ///
    /// The admitted program is *not* installed anywhere — pass
    /// `AdmittedVersion::program` to `Gateway::swap` to take it live.
    pub fn admit(&mut self, bytes: &[u8]) -> Result<AdmittedVersion, RegistryError> {
        let artifact = CompiledArtifact::decode(bytes)?;
        let (parts, service, prog) = artifact.instantiate()?;
        if service != self.service {
            return Err(RegistryError::ServiceMismatch {
                expected: self.service.name().to_string(),
                got: service.name().to_string(),
            });
        }
        // The refinement re-check: the embedded system must still
        // satisfy the unchanged contract, proven by the same engine
        // that admitted the original derivation.
        let refs: Vec<&Spec> = parts.iter().collect();
        let verdict = verify_system(&refs, &self.service, self.threads)?;
        if let Err(violation) = &verdict.verdict {
            return Err(RegistryError::Refused(format!(
                "system does not satisfy `{}`: {violation}",
                self.service.name()
            )));
        }
        let path = self
            .dir
            .join(format!("{:016x}.pqca", artifact.content_hash));
        // Content-addressed: identical bytes are already in place.
        if !path.exists() {
            fs::write(&path, bytes)?;
        }
        let version = self.next_version;
        self.next_version += 1;
        Ok(AdmittedVersion {
            version,
            content_hash: artifact.content_hash,
            table_hash: artifact.table_hash,
            program: Arc::new(prog),
            path,
        })
    }

    /// [`ConverterRegistry::admit`] on a file.
    pub fn admit_file<P: AsRef<Path>>(
        &mut self,
        path: P,
    ) -> Result<AdmittedVersion, RegistryError> {
        let bytes = fs::read(path)?;
        self.admit(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::encode;
    use protoquot_core::solve;
    use protoquot_protocols::{colocated_configuration, exactly_once};

    fn derived() -> (Vec<Spec>, Spec) {
        let system = colocated_configuration();
        let service = exactly_once();
        let q = solve(&system.b, &service, &system.int).expect("converter derives");
        (vec![system.b.clone(), q.converter], service)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("protoquot-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn admits_verified_artifacts_with_monotonic_versions() {
        let (parts, service) = derived();
        let refs: Vec<&Spec> = parts.iter().collect();
        let bytes = encode(&refs, &service).unwrap();
        let dir = tempdir("admit");
        let mut reg = ConverterRegistry::open(&dir, &service, 1).unwrap();
        let v2 = reg.admit(&bytes).expect("verified artifact admits");
        assert_eq!(v2.version, 2);
        assert!(v2.path.exists());
        assert_eq!(reg.stored().unwrap(), vec![v2.content_hash]);
        // Re-admitting the same bytes assigns a fresh version but
        // reuses the content-addressed file.
        let v3 = reg.admit(&bytes).unwrap();
        assert_eq!(v3.version, 3);
        assert_eq!(v3.content_hash, v2.content_hash);
        assert_eq!(reg.stored().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A mutant converter — a transition redirected so the system no
    /// longer satisfies the service — is refused at admission even
    /// though its artifact is internally consistent (encoded from the
    /// mutant itself, so hash and tables all agree).
    #[test]
    fn mutant_converter_is_refused_at_admission() {
        let (parts, service) = derived();
        let dir = tempdir("mutant");
        let mut refused = false;
        for k in 0..16 {
            let Some(mutant) = protoquot_sim::redirect_transition(&parts[1], k) else {
                break;
            };
            let mutated: Vec<&Spec> = vec![&parts[0], &mutant];
            let Ok(bytes) = encode(&mutated, &service) else {
                // A mutant that cannot even compile a guard never
                // reaches admission; try the next one.
                continue;
            };
            let mut reg = ConverterRegistry::open(&dir, &service, 1).unwrap();
            if let Err(RegistryError::Refused(msg)) = reg.admit(&bytes) {
                assert!(!msg.is_empty());
                // Nothing was persisted and no version was burned.
                assert_eq!(reg.stored().unwrap(), Vec::<u64>::new());
                assert_eq!(reg.next_version(), 2);
                refused = true;
                break;
            }
            let _ = fs::remove_dir_all(&dir);
        }
        assert!(
            refused,
            "some redirected-transition mutant must be refused at admission"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_service_contract_is_refused() {
        let (parts, service) = derived();
        let refs: Vec<&Spec> = parts.iter().collect();
        let bytes = encode(&refs, &service).unwrap();
        let mut b = protoquot_spec::SpecBuilder::new("other-contract");
        let s0 = b.state("s0");
        for e in ["a", "b"] {
            b.ext(s0, e, s0);
        }
        let other = b.build().unwrap();
        let dir = tempdir("contract");
        let mut reg = ConverterRegistry::open(&dir, &other, 1).unwrap();
        assert!(matches!(
            reg.admit(&bytes),
            Err(RegistryError::ServiceMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_bytes_are_an_artifact_error() {
        let (_, service) = derived();
        let dir = tempdir("corrupt");
        let mut reg = ConverterRegistry::open(&dir, &service, 0).unwrap();
        assert!(matches!(
            reg.admit(b"not an artifact"),
            Err(RegistryError::Artifact(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
