//! The length-prefixed wire codec: frames ↔ spec events.
//!
//! Every message on the wire is a 4-byte big-endian payload length
//! followed by the payload. Payloads start with a 1-byte tag and an
//! 8-byte big-endian session id; event frames add a 2-byte big-endian
//! event index into the shared [`EventTable`].
//!
//! The table index — not the process-local numeric [`EventId`] — is
//! what crosses the wire: [`EventTable`] sorts events by *name*, so a
//! gateway and a remote load generator built from the same service
//! alphabet agree on every index even though their interners handed
//! out different ids.

use protoquot_spec::{Alphabet, EventId, EventTable};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Hard cap on payload length: the protocol's largest payload is the
/// 21-byte hello/hello-ack, so anything bigger is a corrupt or foreign
/// stream.
pub const MAX_PAYLOAD: usize = 64;

const TAG_EVENT: u8 = 0x01;
const TAG_STALL: u8 = 0x02;
const TAG_CLOSE: u8 = 0x03;
const TAG_HELLO: u8 = 0x04;
const TAG_ACCEPTED: u8 = 0x81;
const TAG_REJECTED: u8 = 0x82;
const TAG_HELLO_ACK: u8 = 0x83;

/// A client → gateway message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frame {
    /// One external event of the conversion system, by table index.
    Event {
        /// Session the event belongs to.
        session: u64,
        /// Index into the shared [`EventTable`].
        event: u16,
    },
    /// The client attests that its end of the session has stalled
    /// (no service progress); the guard checks whether the current
    /// trace can in fact reach a progress-violating state.
    Stall {
        /// Session said to be stalled.
        session: u64,
    },
    /// Ends the session and releases its state.
    Close {
        /// Session to close.
        session: u64,
    },
    /// Version negotiation, sent once at connection open: the client's
    /// [`EventTable`] hash ([`table_hash`]) and the converter version it
    /// was built against (0 = any). A gateway acks with
    /// [`Reply::HelloAck`] on agreement and rejects with
    /// [`RejectReason::VersionMismatch`] otherwise. Hellos address the
    /// connection, not a session; the session field is conventionally 0
    /// and takes no session slot.
    Hello {
        /// Conventionally 0 — hello is per-connection.
        session: u64,
        /// FNV-1a hash of the sender's event table ([`table_hash`]).
        table_hash: u64,
        /// Registry version the sender expects, or 0 for "whatever is
        /// active".
        version: u32,
    },
}

impl Frame {
    /// The session id the frame addresses.
    pub fn session(&self) -> u64 {
        match *self {
            Frame::Event { session, .. }
            | Frame::Stall { session }
            | Frame::Close { session }
            | Frame::Hello { session, .. } => session,
        }
    }
}

/// Why the gateway refused a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The event extends no trace of the composed system B‖C: the
    /// online guard's state set went empty.
    NotATrace,
    /// The event is a trace of B‖C but not of the service: ψ has no
    /// step for it — the dynamic twin of a safety violation.
    ServiceViolation,
    /// A progress-violating state of the B‖C × service product is
    /// reachable under the observed trace (confirmed stall).
    Stalled,
    /// The session already carries a conviction; no further events are
    /// tracked.
    Convicted,
    /// The session's bounded queue is full.
    Backpressure,
    /// The gateway is draining for shutdown and accepts no new work.
    Draining,
    /// The session was closed or evicted.
    Closed,
    /// The event index is outside the shared table.
    UnknownEvent,
    /// The frame overran a configured resource budget (per-session
    /// frame budget, or per-connection session cap at the transport).
    ResourceLimit,
    /// Version negotiation failed: the peer's hello carried an
    /// [`EventTable`] hash (or pinned converter version) that does not
    /// match the active one — or a hello was required and never came.
    VersionMismatch,
}

impl RejectReason {
    /// Stable snake_case name for reports and stats keys.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::NotATrace => "not_a_trace",
            RejectReason::ServiceViolation => "service_violation",
            RejectReason::Stalled => "stalled",
            RejectReason::Convicted => "convicted",
            RejectReason::Backpressure => "backpressure",
            RejectReason::Draining => "draining",
            RejectReason::Closed => "closed",
            RejectReason::UnknownEvent => "unknown_event",
            RejectReason::ResourceLimit => "resource_limit",
            RejectReason::VersionMismatch => "version_mismatch",
        }
    }

    /// Whether the reason is a *conviction* — the online guard's
    /// verdict on the session's trace — as opposed to an operational
    /// rejection (flow control, lifecycle, malformed input, budgets)
    /// that says nothing about the converter's correctness.
    pub fn is_conviction(self) -> bool {
        matches!(
            self,
            RejectReason::NotATrace
                | RejectReason::ServiceViolation
                | RejectReason::Stalled
                | RejectReason::Convicted
        )
    }

    fn code(self) -> u8 {
        match self {
            RejectReason::NotATrace => 1,
            RejectReason::ServiceViolation => 2,
            RejectReason::Stalled => 3,
            RejectReason::Convicted => 4,
            RejectReason::Backpressure => 5,
            RejectReason::Draining => 6,
            RejectReason::Closed => 7,
            RejectReason::UnknownEvent => 8,
            RejectReason::ResourceLimit => 9,
            RejectReason::VersionMismatch => 10,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<RejectReason> {
        Some(match c {
            1 => RejectReason::NotATrace,
            2 => RejectReason::ServiceViolation,
            3 => RejectReason::Stalled,
            4 => RejectReason::Convicted,
            5 => RejectReason::Backpressure,
            6 => RejectReason::Draining,
            7 => RejectReason::Closed,
            8 => RejectReason::UnknownEvent,
            9 => RejectReason::ResourceLimit,
            10 => RejectReason::VersionMismatch,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::NotATrace => "not-a-trace",
            RejectReason::ServiceViolation => "service-violation",
            RejectReason::Stalled => "stalled",
            RejectReason::Convicted => "convicted",
            RejectReason::Backpressure => "backpressure",
            RejectReason::Draining => "draining",
            RejectReason::Closed => "closed",
            RejectReason::UnknownEvent => "unknown-event",
            RejectReason::ResourceLimit => "resource-limit",
            RejectReason::VersionMismatch => "version-mismatch",
        };
        f.write_str(s)
    }
}

/// A gateway → client message: exactly one per submitted frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The frame was processed and the session trace extended.
    Accepted {
        /// Session the reply belongs to.
        session: u64,
    },
    /// The frame was refused.
    Rejected {
        /// Session the reply belongs to.
        session: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Version negotiation succeeded: answers a [`Frame::Hello`] with
    /// the gateway's own [`EventTable`] hash and the active converter
    /// version, so both ends can log what they agreed on.
    HelloAck {
        /// Echoes the hello's session (conventionally 0).
        session: u64,
        /// FNV-1a hash of the gateway's event table ([`table_hash`]).
        table_hash: u64,
        /// The active converter version serving this connection.
        version: u32,
    },
}

impl Reply {
    /// The session id the reply addresses.
    pub fn session(&self) -> u64 {
        match *self {
            Reply::Accepted { session }
            | Reply::Rejected { session, .. }
            | Reply::HelloAck { session, .. } => session,
        }
    }
}

/// A malformed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Encodes a frame as length prefix + payload.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    match *frame {
        Frame::Event { session, event } => {
            out.push(TAG_EVENT);
            out.extend_from_slice(&session.to_be_bytes());
            out.extend_from_slice(&event.to_be_bytes());
        }
        Frame::Stall { session } => {
            out.push(TAG_STALL);
            out.extend_from_slice(&session.to_be_bytes());
        }
        Frame::Close { session } => {
            out.push(TAG_CLOSE);
            out.extend_from_slice(&session.to_be_bytes());
        }
        Frame::Hello {
            session,
            table_hash,
            version,
        } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&session.to_be_bytes());
            out.extend_from_slice(&table_hash.to_be_bytes());
            out.extend_from_slice(&version.to_be_bytes());
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_be_bytes());
}

/// Largest encoded reply on the wire: 4-byte length prefix plus the
/// 21-byte `HelloAck` payload. [`encode_reply_array`] is sized by it;
/// the hot-path replies (`Accepted`, `Rejected`) still use 13–14 bytes.
pub const MAX_REPLY_WIRE: usize = 25;

/// Encodes `reply` into a stack buffer — the allocation-free twin of
/// [`encode_reply`] for per-reply responder paths that would otherwise
/// pay one `Vec` per reply. Returns the buffer and the encoded length.
pub fn encode_reply_array(reply: &Reply) -> ([u8; MAX_REPLY_WIRE], usize) {
    let mut buf = [0u8; MAX_REPLY_WIRE];
    match *reply {
        Reply::Accepted { session } => {
            buf[3] = 9;
            buf[4] = TAG_ACCEPTED;
            buf[5..13].copy_from_slice(&session.to_be_bytes());
            (buf, 13)
        }
        Reply::Rejected { session, reason } => {
            buf[3] = 10;
            buf[4] = TAG_REJECTED;
            buf[5..13].copy_from_slice(&session.to_be_bytes());
            buf[13] = reason.code();
            (buf, 14)
        }
        Reply::HelloAck {
            session,
            table_hash,
            version,
        } => {
            buf[3] = 21;
            buf[4] = TAG_HELLO_ACK;
            buf[5..13].copy_from_slice(&session.to_be_bytes());
            buf[13..21].copy_from_slice(&table_hash.to_be_bytes());
            buf[21..25].copy_from_slice(&version.to_be_bytes());
            (buf, 25)
        }
    }
}

/// Encodes a reply as length prefix + payload.
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    match *reply {
        Reply::Accepted { session } => {
            out.push(TAG_ACCEPTED);
            out.extend_from_slice(&session.to_be_bytes());
        }
        Reply::Rejected { session, reason } => {
            out.push(TAG_REJECTED);
            out.extend_from_slice(&session.to_be_bytes());
            out.push(reason.code());
        }
        Reply::HelloAck {
            session,
            table_hash,
            version,
        } => {
            out.push(TAG_HELLO_ACK);
            out.extend_from_slice(&session.to_be_bytes());
            out.extend_from_slice(&table_hash.to_be_bytes());
            out.extend_from_slice(&version.to_be_bytes());
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_be_bytes());
}

fn session_of(payload: &[u8]) -> Result<u64, WireError> {
    let bytes: [u8; 8] = payload
        .get(1..9)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| WireError("payload too short for a session id".into()))?;
    Ok(u64::from_be_bytes(bytes))
}

/// Decodes one frame payload (without the length prefix).
pub fn decode_frame(payload: &[u8]) -> Result<Frame, WireError> {
    let tag = *payload
        .first()
        .ok_or_else(|| WireError("empty payload".into()))?;
    let session = session_of(payload)?;
    match (tag, payload.len()) {
        (TAG_EVENT, 11) => {
            let event = u16::from_be_bytes([payload[9], payload[10]]);
            Ok(Frame::Event { session, event })
        }
        (TAG_STALL, 9) => Ok(Frame::Stall { session }),
        (TAG_CLOSE, 9) => Ok(Frame::Close { session }),
        (TAG_HELLO, 21) => {
            let table_hash = u64::from_be_bytes(payload[9..17].try_into().unwrap());
            let version = u32::from_be_bytes(payload[17..21].try_into().unwrap());
            Ok(Frame::Hello {
                session,
                table_hash,
                version,
            })
        }
        (tag, len) => Err(WireError(format!("bad frame tag {tag:#x} / length {len}"))),
    }
}

/// Decodes one reply payload (without the length prefix).
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let tag = *payload
        .first()
        .ok_or_else(|| WireError("empty payload".into()))?;
    let session = session_of(payload)?;
    match (tag, payload.len()) {
        (TAG_ACCEPTED, 9) => Ok(Reply::Accepted { session }),
        (TAG_REJECTED, 10) => {
            let reason = RejectReason::from_code(payload[9])
                .ok_or_else(|| WireError(format!("bad reject reason {}", payload[9])))?;
            Ok(Reply::Rejected { session, reason })
        }
        (TAG_HELLO_ACK, 21) => {
            let table_hash = u64::from_be_bytes(payload[9..17].try_into().unwrap());
            let version = u32::from_be_bytes(payload[17..21].try_into().unwrap());
            Ok(Reply::HelloAck {
                session,
                table_hash,
                version,
            })
        }
        (tag, len) => Err(WireError(format!("bad reply tag {tag:#x} / length {len}"))),
    }
}

/// A torn-stream error: EOF struck mid-message. Carries a [`WireError`]
/// payload (so callers can tell protocol damage from transport
/// failures) under [`io::ErrorKind::UnexpectedEof`].
fn torn(context: &str, got: usize, want: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        WireError(format!(
            "torn stream: EOF {context} ({got} of {want} bytes)"
        )),
    )
}

/// Reads one length-prefixed payload. `Ok(None)` on clean end of
/// stream (EOF before the first length byte); EOF anywhere *inside* a
/// message — mid-length-prefix or mid-payload — is a torn stream and
/// surfaces as an [`io::Error`] wrapping a [`WireError`].
pub fn read_payload<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(torn("inside a length prefix", got, 4)),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len == 0 || len > MAX_PAYLOAD {
        return Err(WireError(format!("payload length {len} out of range")).into());
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(torn("inside a payload", got, len)),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// Reads one frame; `Ok(None)` on clean end of stream.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    match read_payload(r)? {
        None => Ok(None),
        Some(p) => Ok(Some(decode_frame(&p)?)),
    }
}

/// Reads one reply; `Ok(None)` on clean end of stream.
pub fn read_reply<R: Read>(r: &mut R) -> io::Result<Option<Reply>> {
    match read_payload(r)? {
        None => Ok(None),
        Some(p) => Ok(Some(decode_reply(&p)?)),
    }
}

/// Writes one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(16);
    encode_frame(frame, &mut buf);
    w.write_all(&buf)
}

/// Writes one reply (length prefix + payload).
pub fn write_reply<W: Write>(w: &mut W, reply: &Reply) -> io::Result<()> {
    let mut buf = Vec::with_capacity(16);
    encode_reply(reply, &mut buf);
    w.write_all(&buf)
}

/// The incremental decode engine shared by [`FrameBuffer`] and
/// [`ReplyBuffer`]: accumulates raw stream bytes, yields complete
/// length-prefixed payloads in order, compacts the consumed prefix
/// lazily.
/// Consumed-prefix bytes below which `extend` keeps carrying the
/// prefix instead of compacting: a large batched read followed by a
/// frame-at-a-time drain must never memmove per frame. Past the
/// threshold, compaction additionally waits until at least half the
/// buffer is consumed, so every memmove is amortized over at least as
/// many consumed bytes as it copies — O(1) per byte overall.
const COMPACT_MIN: usize = 4096;

#[derive(Default)]
struct PayloadBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (reset when fully drained, compacted
    /// once it grows past [`COMPACT_MIN`] *and* half the buffer).
    start: usize,
    /// Compactions that moved bytes, for memmove-regression tests.
    compactions: u64,
}

impl PayloadBuffer {
    fn extend(&mut self, bytes: &[u8]) {
        if self.start >= self.buf.len() {
            // Fully consumed: reset without moving a byte. This is the
            // steady state of a server draining every buffered frame
            // before the next read.
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_MIN && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
            self.compactions += 1;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete payload (without its length prefix), or
    /// `Ok(None)` when more bytes are needed. Consumes the message.
    fn next_payload(&mut self) -> Result<Option<&[u8]>, WireError> {
        let pending = &self.buf[self.start..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len == 0 || len > MAX_PAYLOAD {
            return Err(WireError(format!("payload length {len} out of range")));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start = at + len;
        Ok(Some(&self.buf[at..at + len]))
    }

    fn is_mid_message(&self) -> bool {
        self.start < self.buf.len()
    }

    fn torn_error(&self) -> WireError {
        WireError(format!(
            "torn stream: EOF with {} buffered bytes of a partial frame",
            self.buf.len() - self.start
        ))
    }
}

/// An incremental frame decoder: bytes go in as they arrive off a
/// stream, complete frames come out in order — so a transport can
/// decode *every* frame already buffered per wakeup instead of paying
/// one syscall round per frame (the gateway then drains them in one
/// batch).
///
/// EOF bookkeeping matches [`read_frame`]: ending the stream between
/// messages is clean, ending it mid-message is a torn stream.
#[derive(Default)]
pub struct FrameBuffer {
    inner: PayloadBuffer,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.inner.extend(bytes);
    }

    /// Pops the next complete frame, or `Ok(None)` when more bytes are
    /// needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match self.inner.next_payload()? {
            None => Ok(None),
            Some(p) => Ok(Some(decode_frame(p)?)),
        }
    }

    /// Whether the buffer holds a partial message: EOF now would be a
    /// torn stream, not a clean close.
    pub fn is_mid_message(&self) -> bool {
        self.inner.is_mid_message()
    }

    /// The torn-stream error for an EOF at this point; call only when
    /// [`FrameBuffer::is_mid_message`] is true.
    pub fn torn_error(&self) -> WireError {
        self.inner.torn_error()
    }

    /// Compactions that actually moved buffered bytes — the regression
    /// counter behind the amortized-O(1) guarantee: draining a large
    /// batched read frame by frame performs zero of these.
    pub fn compactions(&self) -> u64 {
        self.inner.compactions
    }
}

/// The client-side mirror of [`FrameBuffer`]: incremental decode of
/// gateway replies. A multiplexing driver reads whatever the socket has,
/// feeds it here, and dispatches each decoded [`Reply`] to the session
/// it names — many sessions' replies interleave on one connection.
#[derive(Default)]
pub struct ReplyBuffer {
    inner: PayloadBuffer,
}

impl ReplyBuffer {
    /// An empty buffer.
    pub fn new() -> ReplyBuffer {
        ReplyBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.inner.extend(bytes);
    }

    /// Pops the next complete reply, or `Ok(None)` when more bytes are
    /// needed.
    pub fn next_reply(&mut self) -> Result<Option<Reply>, WireError> {
        match self.inner.next_payload()? {
            None => Ok(None),
            Some(p) => Ok(Some(decode_reply(p)?)),
        }
    }

    /// Whether the buffer holds a partial message: EOF now would be a
    /// torn stream, not a clean close.
    pub fn is_mid_message(&self) -> bool {
        self.inner.is_mid_message()
    }

    /// The torn-stream error for an EOF at this point; call only when
    /// [`ReplyBuffer::is_mid_message`] is true.
    pub fn torn_error(&self) -> WireError {
        self.inner.torn_error()
    }

    /// Compactions that actually moved buffered bytes; see
    /// [`FrameBuffer::compactions`].
    pub fn compactions(&self) -> u64 {
        self.inner.compactions
    }
}

/// FNV-1a hash of an [`EventTable`]'s event *names*, in table (i.e.
/// sorted-name) order, each name terminated by a NUL so the
/// concatenation is unambiguous.
///
/// This is the version-negotiation fingerprint carried by
/// [`Frame::Hello`] and [`Reply::HelloAck`]: two processes agree on it
/// exactly when they map every wire index to the same event name, which
/// is the property the codec needs — numeric [`EventId`]s are
/// process-local and never enter the hash.
pub fn table_hash(table: &EventTable) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    let mut byte = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for i in 0..table.len() {
        let e = table
            .event(i as u32)
            .expect("indices below len are populated");
        for &b in e.name().as_bytes() {
            byte(b);
        }
        byte(0);
    }
    h
}

/// Maps spec events to wire indices and back, over the shared
/// name-sorted [`EventTable`].
#[derive(Clone)]
pub struct WireCodec {
    table: Arc<EventTable>,
}

/// Most events one [`EventTable`] can carry on the wire: frame event
/// indices are 2 bytes, so indices run 0..=65535.
pub const MAX_WIRE_EVENTS: usize = u16::MAX as usize + 1;

impl WireCodec {
    /// A codec over `alphabet` (the observable interface of the
    /// conversion system, i.e. the service alphabet).
    ///
    /// Fails with a [`WireError`] when the alphabet holds more events
    /// than a 2-byte wire index can address ([`MAX_WIRE_EVENTS`]) —
    /// silently truncating indices would alias distinct events.
    pub fn new(alphabet: &Alphabet) -> Result<WireCodec, WireError> {
        WireCodec::from_table(Arc::new(EventTable::new(alphabet)))
    }

    /// A codec sharing an existing table; same size limit as
    /// [`WireCodec::new`].
    pub fn from_table(table: Arc<EventTable>) -> Result<WireCodec, WireError> {
        if table.len() > MAX_WIRE_EVENTS {
            return Err(WireError(format!(
                "event table holds {} events but wire indices are 16-bit \
                 (max {MAX_WIRE_EVENTS})",
                table.len()
            )));
        }
        Ok(WireCodec { table })
    }

    /// The shared table.
    pub fn table(&self) -> &Arc<EventTable> {
        &self.table
    }

    /// The negotiation fingerprint of the shared table; see
    /// [`table_hash`].
    pub fn table_hash(&self) -> u64 {
        table_hash(&self.table)
    }

    /// The event frame for `e` in `session`, or `None` if `e` is not
    /// an observable event.
    pub fn event_frame(&self, session: u64, e: EventId) -> Option<Frame> {
        let idx = self.table.lookup(e)?;
        // Construction guarantees the table fits; stay checked anyway
        // so a table swapped in behind the codec cannot alias events.
        Some(Frame::Event {
            session,
            event: u16::try_from(idx).ok()?,
        })
    }

    /// The event behind wire index `idx`, or `None` if out of range.
    pub fn event_of(&self, idx: u16) -> Option<EventId> {
        self.table.event(u32::from(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::Alphabet;

    #[test]
    fn frames_round_trip() {
        for f in [
            Frame::Event {
                session: 0xDEAD_BEEF_1234_5678,
                event: 513,
            },
            Frame::Stall { session: 7 },
            Frame::Close { session: u64::MAX },
            Frame::Hello {
                session: 0,
                table_hash: 0x0123_4567_89AB_CDEF,
                version: 42,
            },
        ] {
            let mut buf = Vec::new();
            encode_frame(&f, &mut buf);
            let mut r = io::Cursor::new(buf);
            assert_eq!(read_frame(&mut r).unwrap(), Some(f));
            assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
        }
    }

    #[test]
    fn replies_round_trip() {
        let mut replies = vec![
            Reply::Accepted { session: 1 },
            Reply::HelloAck {
                session: 0,
                table_hash: 0xFEED_FACE_CAFE_F00D,
                version: 3,
            },
        ];
        for reason in [
            RejectReason::NotATrace,
            RejectReason::ServiceViolation,
            RejectReason::Stalled,
            RejectReason::Convicted,
            RejectReason::Backpressure,
            RejectReason::Draining,
            RejectReason::Closed,
            RejectReason::UnknownEvent,
            RejectReason::ResourceLimit,
            RejectReason::VersionMismatch,
        ] {
            replies.push(Reply::Rejected { session: 9, reason });
        }
        for reply in replies {
            let mut buf = Vec::new();
            encode_reply(&reply, &mut buf);
            let mut r = io::Cursor::new(buf);
            assert_eq!(read_reply(&mut r).unwrap(), Some(reply));
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(&[TAG_EVENT, 0, 0]).is_err());
        assert!(decode_reply(&[0x77, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Oversized length prefix.
        let mut r = io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF, 0]);
        assert!(read_payload(&mut r).is_err());
        // Truncated length prefix.
        let mut r = io::Cursor::new(vec![0, 0]);
        assert!(read_payload(&mut r).is_err());
    }

    #[test]
    fn codec_indices_depend_on_names_not_interner_history() {
        // Intern the later name first: numeric ids disagree with name
        // order, wire indices must not.
        let _ = protoquot_spec::EventId::new("zz_codec_probe");
        let a: Alphabet = ["zz_codec_probe", "aa_codec_probe"].into_iter().collect();
        let codec = WireCodec::new(&a).unwrap();
        assert_eq!(codec.event_of(0).unwrap().name(), "aa_codec_probe");
        assert_eq!(codec.event_of(1).unwrap().name(), "zz_codec_probe");
        let f = codec
            .event_frame(3, protoquot_spec::EventId::new("zz_codec_probe"))
            .unwrap();
        assert_eq!(
            f,
            Frame::Event {
                session: 3,
                event: 1
            }
        );
        assert!(codec
            .event_frame(3, protoquot_spec::EventId::new("unrelated"))
            .is_none());
    }

    /// The negotiation fingerprint depends on event *names* only: two
    /// codecs built from the same alphabet agree regardless of interner
    /// history, and any alphabet difference changes the hash.
    #[test]
    fn table_hash_is_name_stable_and_alphabet_sensitive() {
        let _ = protoquot_spec::EventId::new("zz_hash_probe");
        let a: Alphabet = ["zz_hash_probe", "aa_hash_probe"].into_iter().collect();
        let b: Alphabet = ["aa_hash_probe", "zz_hash_probe"].into_iter().collect();
        let ca = WireCodec::new(&a).unwrap();
        let cb = WireCodec::new(&b).unwrap();
        assert_eq!(ca.table_hash(), cb.table_hash());
        let c: Alphabet = ["aa_hash_probe", "zz_hash_probe", "mm_hash_probe"]
            .into_iter()
            .collect();
        let cc = WireCodec::new(&c).unwrap();
        assert_ne!(ca.table_hash(), cc.table_hash());
        // NUL termination keeps name boundaries unambiguous.
        let d: Alphabet = ["ab", "c"].into_iter().collect();
        let e: Alphabet = ["a", "bc"].into_iter().collect();
        assert_ne!(
            WireCodec::new(&d).unwrap().table_hash(),
            WireCodec::new(&e).unwrap().table_hash()
        );
    }

    #[test]
    fn oversized_event_tables_are_rejected_at_construction() {
        // One event past the 16-bit index space: constructing the codec
        // must fail instead of silently truncating indices on the wire.
        let a: Alphabet = (0..=MAX_WIRE_EVENTS)
            .map(|i| protoquot_spec::EventId::new(&format!("ev{i:06}")))
            .collect();
        assert_eq!(a.len(), MAX_WIRE_EVENTS + 1);
        let err = match WireCodec::new(&a) {
            Ok(_) => panic!("oversized table must not build a codec"),
            Err(e) => e,
        };
        assert!(
            err.0.contains("16-bit"),
            "error should name the wire limit: {err}"
        );

        // Exactly at the limit is fine, and the extreme index survives
        // the round trip un-truncated.
        let full: Alphabet = (0..MAX_WIRE_EVENTS)
            .map(|i| protoquot_spec::EventId::new(&format!("ev{i:06}")))
            .collect();
        let codec = WireCodec::new(&full).unwrap();
        let last = protoquot_spec::EventId::new(&format!("ev{:06}", MAX_WIRE_EVENTS - 1));
        let f = codec.event_frame(1, last).unwrap();
        assert_eq!(
            f,
            Frame::Event {
                session: 1,
                event: u16::MAX
            }
        );
        assert_eq!(codec.event_of(u16::MAX), Some(last));
    }

    /// EOF at every possible byte offset of an encoded frame: offset 0
    /// is a clean end of stream, any other offset is a torn stream that
    /// must surface as a `WireError`, never as a silent `Ok(None)`.
    #[test]
    fn truncation_at_every_offset_is_a_torn_stream() {
        let frame = Frame::Event {
            session: 0x0102_0304_0506_0708,
            event: 513,
        };
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        assert_eq!(bytes.len(), 15, "4-byte prefix + 11-byte payload");
        for cut in 0..bytes.len() {
            let mut r = io::Cursor::new(bytes[..cut].to_vec());
            match read_frame(&mut r) {
                Ok(None) => assert_eq!(cut, 0, "clean EOF only before the first byte"),
                Ok(Some(f)) => panic!("cut at {cut} produced a frame {f:?}"),
                Err(e) => {
                    assert!(cut > 0, "cut at 0 must be a clean EOF");
                    let wire = e
                        .get_ref()
                        .map(|inner| inner.is::<WireError>())
                        .unwrap_or(false);
                    assert!(wire, "cut at {cut}: expected a WireError, got {e:?}");
                }
            }
        }
        // The full message still parses, and the stream then ends clean.
        let mut r = io::Cursor::new(bytes.clone());
        assert_eq!(read_frame(&mut r).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // Replies behave identically (shared read_payload path).
        let reply = Reply::Rejected {
            session: 5,
            reason: RejectReason::Stalled,
        };
        let mut bytes = Vec::new();
        encode_reply(&reply, &mut bytes);
        for cut in 1..bytes.len() {
            let mut r = io::Cursor::new(bytes[..cut].to_vec());
            assert!(read_reply(&mut r).is_err(), "reply cut at {cut} must error");
        }
    }

    #[test]
    fn frame_buffer_decodes_batches_and_detects_torn_streams() {
        let frames = [
            Frame::Event {
                session: 1,
                event: 2,
            },
            Frame::Stall { session: 3 },
            Frame::Close { session: 4 },
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes);
        }
        // Feed byte by byte: frames pop out exactly at their boundaries.
        let mut fb = FrameBuffer::new();
        let mut decoded = Vec::new();
        for b in &bytes {
            fb.extend(std::slice::from_ref(b));
            while let Some(f) = fb.next_frame().unwrap() {
                decoded.push(f);
            }
        }
        assert_eq!(decoded, frames);
        assert!(!fb.is_mid_message(), "all bytes consumed");

        // Feed everything at once plus half of another frame: three
        // frames decode in one batch, the remainder marks a torn EOF.
        let mut fb = FrameBuffer::new();
        let mut torn = bytes.clone();
        let mut extra = Vec::new();
        encode_frame(&Frame::Stall { session: 9 }, &mut extra);
        torn.extend_from_slice(&extra[..extra.len() / 2]);
        fb.extend(&torn);
        let mut decoded = Vec::new();
        while let Some(f) = fb.next_frame().unwrap() {
            decoded.push(f);
        }
        assert_eq!(decoded, frames);
        assert!(fb.is_mid_message());
        assert!(fb.torn_error().0.contains("torn stream"));

        // Corrupt lengths surface as errors, not hangs.
        let mut fb = FrameBuffer::new();
        fb.extend(&[0xFF, 0xFF, 0xFF, 0xFF, 0]);
        assert!(fb.next_frame().is_err());
    }

    /// The session id survives the wire byte-exactly for every frame
    /// and reply shape, across the whole u64 range.
    #[test]
    fn session_ids_round_trip_across_the_codec() {
        let sessions = [0u64, 1, 0xFF, 0x0100, u32::MAX as u64, 1 << 40, u64::MAX];
        for &session in &sessions {
            for frame in [
                Frame::Event { session, event: 0 },
                Frame::Event {
                    session,
                    event: u16::MAX,
                },
                Frame::Stall { session },
                Frame::Close { session },
            ] {
                let mut buf = Vec::new();
                encode_frame(&frame, &mut buf);
                let mut fb = FrameBuffer::new();
                fb.extend(&buf);
                let back = fb.next_frame().unwrap().unwrap();
                assert_eq!(back, frame);
                assert_eq!(back.session(), session);
            }
            for reply in [
                Reply::Accepted { session },
                Reply::Rejected {
                    session,
                    reason: RejectReason::NotATrace,
                },
            ] {
                let mut buf = Vec::new();
                encode_reply(&reply, &mut buf);
                let mut rb = ReplyBuffer::new();
                rb.extend(&buf);
                let back = rb.next_reply().unwrap().unwrap();
                assert_eq!(back, reply);
                assert_eq!(back.session(), session);
            }
        }
    }

    /// Frames from distinct sessions interleaved on one connection
    /// decode to the right sessions, in wire order, whether the bytes
    /// arrive all at once or dribble in one at a time.
    #[test]
    fn interleaved_sessions_on_one_connection_decode_to_the_right_sessions() {
        // 8 sessions, round-robin interleaved: session s sends event s,
        // then a stall, then a close — 24 frames on one byte stream.
        let mut expect = Vec::new();
        for round in 0..3u8 {
            for s in 0..8u64 {
                expect.push(match round {
                    0 => Frame::Event {
                        session: 0x1000 + s,
                        event: s as u16,
                    },
                    1 => Frame::Stall {
                        session: 0x1000 + s,
                    },
                    _ => Frame::Close {
                        session: 0x1000 + s,
                    },
                });
            }
        }
        let mut bytes = Vec::new();
        for f in &expect {
            encode_frame(f, &mut bytes);
        }

        // One shot.
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        let mut got = Vec::new();
        while let Some(f) = fb.next_frame().unwrap() {
            got.push(f);
        }
        assert_eq!(got, expect);

        // Byte-at-a-time (worst-case segmentation).
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for b in &bytes {
            fb.extend(std::slice::from_ref(b));
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, expect);

        // And the reply direction: the gateway answers out of session
        // order (worker scheduling), the client must still attribute
        // each reply to the session its header names.
        let replies: Vec<Reply> = (0..8u64)
            .rev()
            .map(|s| {
                if s % 2 == 0 {
                    Reply::Accepted {
                        session: 0x1000 + s,
                    }
                } else {
                    Reply::Rejected {
                        session: 0x1000 + s,
                        reason: RejectReason::Stalled,
                    }
                }
            })
            .collect();
        let mut bytes = Vec::new();
        for r in &replies {
            encode_reply(r, &mut bytes);
        }
        let mut rb = ReplyBuffer::new();
        let mut got = Vec::new();
        for chunk in bytes.chunks(3) {
            rb.extend(chunk);
            while let Some(r) = rb.next_reply().unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, replies);
        assert!(!rb.is_mid_message());
    }

    /// The stack-buffer reply encoder produces byte-identical wire
    /// output to the `Vec` encoder for every reply shape.
    #[test]
    fn reply_array_encoder_matches_vec_encoder() {
        let mut replies = vec![
            Reply::Accepted { session: 0 },
            Reply::Accepted { session: u64::MAX },
            Reply::HelloAck {
                session: 0,
                table_hash: u64::MAX,
                version: u32::MAX,
            },
        ];
        for reason in [
            RejectReason::NotATrace,
            RejectReason::ServiceViolation,
            RejectReason::Stalled,
            RejectReason::Convicted,
            RejectReason::Backpressure,
            RejectReason::Draining,
            RejectReason::Closed,
            RejectReason::UnknownEvent,
            RejectReason::ResourceLimit,
            RejectReason::VersionMismatch,
        ] {
            replies.push(Reply::Rejected {
                session: 0xDEAD_BEEF,
                reason,
            });
        }
        for reply in replies {
            let mut wire = Vec::new();
            encode_reply(&reply, &mut wire);
            let (buf, len) = encode_reply_array(&reply);
            assert!(len <= MAX_REPLY_WIRE);
            assert_eq!(&buf[..len], &wire[..], "{reply:?}");
        }
    }

    /// A 64 KiB chunk of min-size frames decodes without quadratic
    /// memmoves: the consumed prefix just advances (zero compactions),
    /// and even a sustained read/drain cycle compacts at most once per
    /// `COMPACT_MIN` consumed bytes instead of once per frame.
    #[test]
    fn large_batched_reads_drain_without_per_frame_compaction() {
        let mut frame = Vec::new();
        encode_frame(&Frame::Stall { session: 42 }, &mut frame);
        assert_eq!(frame.len(), 13, "min-size frame is 13 wire bytes");
        let per_chunk = (64 * 1024) / frame.len();
        let chunk: Vec<u8> = frame
            .iter()
            .cycle()
            .take(per_chunk * frame.len())
            .copied()
            .collect();
        assert!(chunk.len() > 64 * 1024 - frame.len());

        // One batched read, frame-at-a-time drain: no compaction at all.
        let mut fb = FrameBuffer::new();
        fb.extend(&chunk);
        let mut decoded = 0;
        while fb.next_frame().unwrap().is_some() {
            decoded += 1;
        }
        assert_eq!(decoded, per_chunk);
        assert_eq!(fb.compactions(), 0, "draining must not memmove");

        // Sustained operation: 32 more such chunks through the same
        // buffer, fully drained between reads, still never compacts
        // (the fully-consumed reset path is free).
        for _ in 0..32 {
            fb.extend(&chunk);
            while fb.next_frame().unwrap().is_some() {}
        }
        assert_eq!(fb.compactions(), 0);

        // Worst case — a partial frame always pending so the reset path
        // never fires: compactions stay amortized (bounded by consumed
        // bytes / COMPACT_MIN), nowhere near one per frame.
        let mut fb = FrameBuffer::new();
        fb.extend(&frame[..5]);
        let mut total = 0usize;
        let mut frames = 0u64;
        for _ in 0..64 {
            fb.extend(&frame[5..]); // complete the pending frame,
            fb.extend(&chunk); // batch in a fresh chunk,
            fb.extend(&frame[..5]); // and leave a new torn tail.
            total += frame.len() + chunk.len() + 5;
            while fb.next_frame().unwrap().is_some() {
                frames += 1;
            }
            assert!(fb.is_mid_message());
        }
        assert_eq!(frames, 64 * (per_chunk as u64 + 1));
        assert!(
            fb.compactions() <= (total / COMPACT_MIN) as u64 + 1,
            "{} compactions over {} consumed bytes is not amortized",
            fb.compactions(),
            total
        );
    }

    /// EOF at every byte offset of a reply message through the
    /// incremental buffer: offset 0 (and any message boundary) is
    /// clean, everywhere else is a torn stream.
    #[test]
    fn reply_buffer_truncation_at_every_offset() {
        let reply = Reply::Rejected {
            session: 0x0A0B_0C0D_0E0F_1011,
            reason: RejectReason::ServiceViolation,
        };
        let mut bytes = Vec::new();
        encode_reply(&reply, &mut bytes);
        assert_eq!(bytes.len(), 14, "4-byte prefix + 10-byte payload");
        for cut in 0..=bytes.len() {
            let mut rb = ReplyBuffer::new();
            rb.extend(&bytes[..cut]);
            let decoded = rb.next_reply().unwrap();
            if cut == bytes.len() {
                assert_eq!(decoded, Some(reply));
                assert!(!rb.is_mid_message());
            } else {
                assert_eq!(decoded, None, "cut at {cut} must not yield a reply");
                if cut == 0 {
                    assert!(!rb.is_mid_message(), "empty buffer is a clean EOF");
                } else {
                    assert!(rb.is_mid_message(), "cut at {cut} must be torn");
                    assert!(rb.torn_error().0.contains("torn stream"));
                }
            }
        }
    }
}
