//! The length-prefixed wire codec: frames ↔ spec events.
//!
//! Every message on the wire is a 4-byte big-endian payload length
//! followed by the payload. Payloads start with a 1-byte tag and an
//! 8-byte big-endian session id; event frames add a 2-byte big-endian
//! event index into the shared [`EventTable`].
//!
//! The table index — not the process-local numeric [`EventId`] — is
//! what crosses the wire: [`EventTable`] sorts events by *name*, so a
//! gateway and a remote load generator built from the same service
//! alphabet agree on every index even though their interners handed
//! out different ids.

use protoquot_spec::{Alphabet, EventId, EventTable};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Hard cap on payload length: the protocol's largest payload is 11
/// bytes, so anything bigger is a corrupt or foreign stream.
pub const MAX_PAYLOAD: usize = 64;

const TAG_EVENT: u8 = 0x01;
const TAG_STALL: u8 = 0x02;
const TAG_CLOSE: u8 = 0x03;
const TAG_ACCEPTED: u8 = 0x81;
const TAG_REJECTED: u8 = 0x82;

/// A client → gateway message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Frame {
    /// One external event of the conversion system, by table index.
    Event {
        /// Session the event belongs to.
        session: u64,
        /// Index into the shared [`EventTable`].
        event: u16,
    },
    /// The client attests that its end of the session has stalled
    /// (no service progress); the guard checks whether the current
    /// trace can in fact reach a progress-violating state.
    Stall {
        /// Session said to be stalled.
        session: u64,
    },
    /// Ends the session and releases its state.
    Close {
        /// Session to close.
        session: u64,
    },
}

impl Frame {
    /// The session id the frame addresses.
    pub fn session(&self) -> u64 {
        match *self {
            Frame::Event { session, .. } | Frame::Stall { session } | Frame::Close { session } => {
                session
            }
        }
    }
}

/// Why the gateway refused a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The event extends no trace of the composed system B‖C: the
    /// online guard's state set went empty.
    NotATrace,
    /// The event is a trace of B‖C but not of the service: ψ has no
    /// step for it — the dynamic twin of a safety violation.
    ServiceViolation,
    /// A progress-violating state of the B‖C × service product is
    /// reachable under the observed trace (confirmed stall).
    Stalled,
    /// The session already carries a conviction; no further events are
    /// tracked.
    Convicted,
    /// The session's bounded queue is full.
    Backpressure,
    /// The gateway is draining for shutdown and accepts no new work.
    Draining,
    /// The session was closed or evicted.
    Closed,
    /// The event index is outside the shared table.
    UnknownEvent,
}

impl RejectReason {
    /// Stable snake_case name for reports and stats keys.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::NotATrace => "not_a_trace",
            RejectReason::ServiceViolation => "service_violation",
            RejectReason::Stalled => "stalled",
            RejectReason::Convicted => "convicted",
            RejectReason::Backpressure => "backpressure",
            RejectReason::Draining => "draining",
            RejectReason::Closed => "closed",
            RejectReason::UnknownEvent => "unknown_event",
        }
    }

    fn code(self) -> u8 {
        match self {
            RejectReason::NotATrace => 1,
            RejectReason::ServiceViolation => 2,
            RejectReason::Stalled => 3,
            RejectReason::Convicted => 4,
            RejectReason::Backpressure => 5,
            RejectReason::Draining => 6,
            RejectReason::Closed => 7,
            RejectReason::UnknownEvent => 8,
        }
    }

    fn from_code(c: u8) -> Option<RejectReason> {
        Some(match c {
            1 => RejectReason::NotATrace,
            2 => RejectReason::ServiceViolation,
            3 => RejectReason::Stalled,
            4 => RejectReason::Convicted,
            5 => RejectReason::Backpressure,
            6 => RejectReason::Draining,
            7 => RejectReason::Closed,
            8 => RejectReason::UnknownEvent,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::NotATrace => "not-a-trace",
            RejectReason::ServiceViolation => "service-violation",
            RejectReason::Stalled => "stalled",
            RejectReason::Convicted => "convicted",
            RejectReason::Backpressure => "backpressure",
            RejectReason::Draining => "draining",
            RejectReason::Closed => "closed",
            RejectReason::UnknownEvent => "unknown-event",
        };
        f.write_str(s)
    }
}

/// A gateway → client message: exactly one per submitted frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reply {
    /// The frame was processed and the session trace extended.
    Accepted {
        /// Session the reply belongs to.
        session: u64,
    },
    /// The frame was refused.
    Rejected {
        /// Session the reply belongs to.
        session: u64,
        /// Why.
        reason: RejectReason,
    },
}

impl Reply {
    /// The session id the reply addresses.
    pub fn session(&self) -> u64 {
        match *self {
            Reply::Accepted { session } | Reply::Rejected { session, .. } => session,
        }
    }
}

/// A malformed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Encodes a frame as length prefix + payload.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    match *frame {
        Frame::Event { session, event } => {
            out.push(TAG_EVENT);
            out.extend_from_slice(&session.to_be_bytes());
            out.extend_from_slice(&event.to_be_bytes());
        }
        Frame::Stall { session } => {
            out.push(TAG_STALL);
            out.extend_from_slice(&session.to_be_bytes());
        }
        Frame::Close { session } => {
            out.push(TAG_CLOSE);
            out.extend_from_slice(&session.to_be_bytes());
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_be_bytes());
}

/// Encodes a reply as length prefix + payload.
pub fn encode_reply(reply: &Reply, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    match *reply {
        Reply::Accepted { session } => {
            out.push(TAG_ACCEPTED);
            out.extend_from_slice(&session.to_be_bytes());
        }
        Reply::Rejected { session, reason } => {
            out.push(TAG_REJECTED);
            out.extend_from_slice(&session.to_be_bytes());
            out.push(reason.code());
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_be_bytes());
}

fn session_of(payload: &[u8]) -> Result<u64, WireError> {
    let bytes: [u8; 8] = payload
        .get(1..9)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| WireError("payload too short for a session id".into()))?;
    Ok(u64::from_be_bytes(bytes))
}

/// Decodes one frame payload (without the length prefix).
pub fn decode_frame(payload: &[u8]) -> Result<Frame, WireError> {
    let tag = *payload
        .first()
        .ok_or_else(|| WireError("empty payload".into()))?;
    let session = session_of(payload)?;
    match (tag, payload.len()) {
        (TAG_EVENT, 11) => {
            let event = u16::from_be_bytes([payload[9], payload[10]]);
            Ok(Frame::Event { session, event })
        }
        (TAG_STALL, 9) => Ok(Frame::Stall { session }),
        (TAG_CLOSE, 9) => Ok(Frame::Close { session }),
        (tag, len) => Err(WireError(format!("bad frame tag {tag:#x} / length {len}"))),
    }
}

/// Decodes one reply payload (without the length prefix).
pub fn decode_reply(payload: &[u8]) -> Result<Reply, WireError> {
    let tag = *payload
        .first()
        .ok_or_else(|| WireError("empty payload".into()))?;
    let session = session_of(payload)?;
    match (tag, payload.len()) {
        (TAG_ACCEPTED, 9) => Ok(Reply::Accepted { session }),
        (TAG_REJECTED, 10) => {
            let reason = RejectReason::from_code(payload[9])
                .ok_or_else(|| WireError(format!("bad reject reason {}", payload[9])))?;
            Ok(Reply::Rejected { session, reason })
        }
        (tag, len) => Err(WireError(format!("bad reply tag {tag:#x} / length {len}"))),
    }
}

/// Reads one length-prefixed payload. `Ok(None)` on clean end of
/// stream (EOF before the first length byte).
pub fn read_payload<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len == 0 || len > MAX_PAYLOAD {
        return Err(WireError(format!("payload length {len} out of range")).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one frame; `Ok(None)` on clean end of stream.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    match read_payload(r)? {
        None => Ok(None),
        Some(p) => Ok(Some(decode_frame(&p)?)),
    }
}

/// Reads one reply; `Ok(None)` on clean end of stream.
pub fn read_reply<R: Read>(r: &mut R) -> io::Result<Option<Reply>> {
    match read_payload(r)? {
        None => Ok(None),
        Some(p) => Ok(Some(decode_reply(&p)?)),
    }
}

/// Writes one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let mut buf = Vec::with_capacity(16);
    encode_frame(frame, &mut buf);
    w.write_all(&buf)
}

/// Writes one reply (length prefix + payload).
pub fn write_reply<W: Write>(w: &mut W, reply: &Reply) -> io::Result<()> {
    let mut buf = Vec::with_capacity(16);
    encode_reply(reply, &mut buf);
    w.write_all(&buf)
}

/// Maps spec events to wire indices and back, over the shared
/// name-sorted [`EventTable`].
#[derive(Clone)]
pub struct WireCodec {
    table: Arc<EventTable>,
}

impl WireCodec {
    /// A codec over `alphabet` (the observable interface of the
    /// conversion system, i.e. the service alphabet).
    pub fn new(alphabet: &Alphabet) -> WireCodec {
        WireCodec {
            table: Arc::new(EventTable::new(alphabet)),
        }
    }

    /// A codec sharing an existing table.
    pub fn from_table(table: Arc<EventTable>) -> WireCodec {
        WireCodec { table }
    }

    /// The shared table.
    pub fn table(&self) -> &Arc<EventTable> {
        &self.table
    }

    /// The event frame for `e` in `session`, or `None` if `e` is not
    /// an observable event.
    pub fn event_frame(&self, session: u64, e: EventId) -> Option<Frame> {
        let idx = self.table.lookup(e)?;
        Some(Frame::Event {
            session,
            event: idx as u16,
        })
    }

    /// The event behind wire index `idx`, or `None` if out of range.
    pub fn event_of(&self, idx: u16) -> Option<EventId> {
        self.table.event(idx as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::Alphabet;

    #[test]
    fn frames_round_trip() {
        for f in [
            Frame::Event {
                session: 0xDEAD_BEEF_1234_5678,
                event: 513,
            },
            Frame::Stall { session: 7 },
            Frame::Close { session: u64::MAX },
        ] {
            let mut buf = Vec::new();
            encode_frame(&f, &mut buf);
            let mut r = io::Cursor::new(buf);
            assert_eq!(read_frame(&mut r).unwrap(), Some(f));
            assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF after frame");
        }
    }

    #[test]
    fn replies_round_trip() {
        let mut replies = vec![Reply::Accepted { session: 1 }];
        for reason in [
            RejectReason::NotATrace,
            RejectReason::ServiceViolation,
            RejectReason::Stalled,
            RejectReason::Convicted,
            RejectReason::Backpressure,
            RejectReason::Draining,
            RejectReason::Closed,
            RejectReason::UnknownEvent,
        ] {
            replies.push(Reply::Rejected { session: 9, reason });
        }
        for reply in replies {
            let mut buf = Vec::new();
            encode_reply(&reply, &mut buf);
            let mut r = io::Cursor::new(buf);
            assert_eq!(read_reply(&mut r).unwrap(), Some(reply));
        }
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        assert!(decode_frame(&[]).is_err());
        assert!(decode_frame(&[TAG_EVENT, 0, 0]).is_err());
        assert!(decode_reply(&[0x77, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Oversized length prefix.
        let mut r = io::Cursor::new(vec![0xFF, 0xFF, 0xFF, 0xFF, 0]);
        assert!(read_payload(&mut r).is_err());
        // Truncated length prefix.
        let mut r = io::Cursor::new(vec![0, 0]);
        assert!(read_payload(&mut r).is_err());
    }

    #[test]
    fn codec_indices_depend_on_names_not_interner_history() {
        // Intern the later name first: numeric ids disagree with name
        // order, wire indices must not.
        let _ = protoquot_spec::EventId::new("zz_codec_probe");
        let a: Alphabet = ["zz_codec_probe", "aa_codec_probe"].into_iter().collect();
        let codec = WireCodec::new(&a);
        assert_eq!(codec.event_of(0).unwrap().name(), "aa_codec_probe");
        assert_eq!(codec.event_of(1).unwrap().name(), "zz_codec_probe");
        let f = codec
            .event_frame(3, protoquot_spec::EventId::new("zz_codec_probe"))
            .unwrap();
        assert_eq!(
            f,
            Frame::Event {
                session: 3,
                event: 1
            }
        );
        assert!(codec
            .event_frame(3, protoquot_spec::EventId::new("unrelated"))
            .is_none());
    }
}
