//! Wire transports: in-memory loopback, blocking TCP, and the epoll
//! reactor.
//!
//! Every transport speaks the length-prefixed codec from
//! [`crate::codec`]. [`LoopbackConn`] round-trips every frame and reply
//! through the encoder/decoder so in-process benchmarks exercise the
//! real wire format; [`TcpServer`]/[`TcpConn`] carry the same bytes
//! over `std::net` sockets with one blocking reader thread per
//! connection; [`ReactorServer`] carries them over *non-blocking*
//! sockets driven by a small fixed pool of epoll event-loop threads,
//! so concurrency is bounded by session state, not by thread count.
//!
//! Two client shapes exist. [`Conn`] is lockstep — one outstanding
//! frame per connection, reply matching trivial — and both servers
//! accept it. [`MuxTransport`] is the multiplexed shape: a driver
//! queues frames from *many* sessions onto one connection, flushes
//! them in one batch, and attributes each interleaved reply to the
//! session its header names ([`MuxClient`] over TCP, [`LoopbackMux`]
//! in process). The reactor plus a mux client is how `protoquot drive
//! --sessions-per-conn N` holds tens of thousands of concurrent
//! sessions over a handful of sockets.
//!
//! ## Reactor anatomy
//!
//! [`ReactorServer::bind`] spawns `loops` event-loop threads, each
//! owning one `reactor::Poll`. Loop 0 also owns the (non-blocking)
//! listener and hands accepted connections round-robin to all loops
//! through per-loop inboxes, waking the target loop. Per readiness
//! wakeup a loop reads everything the socket has, feeds a
//! [`FrameBuffer`], and submits every complete frame to the gateway;
//! replies are encoded by whichever gateway worker finished the frame
//! into the connection's shared outbound buffer, and the owning loop
//! is woken to flush it. `EPOLLOUT` interest is registered only while
//! flushed-behind bytes remain, and a connection whose outbound buffer
//! outgrows [`ReactorConfig::outbuf_cap`] (a client that stopped
//! reading) is dropped as a counted
//! [`ConnEvictReason::SlowConsumer`] eviction rather than buffered
//! without bound. Each readiness event reads a bounded number of
//! chunks so a firehosing peer cannot starve its loop's other
//! connections or defer that cap; [`ConnLimits`] adds the per-
//! connection session cap and the torn-frame read deadline.

use crate::codec::{
    decode_frame, decode_reply, encode_frame, encode_reply, encode_reply_array, read_payload,
    write_frame, write_reply, Frame, FrameBuffer, RejectReason, Reply, ReplyBuffer,
};
use crate::gateway::{BatchScratch, Gateway};
use crate::stats::ConnEvictReason;
use reactor::{Events, Interest, Poll, Token, Waker};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection resource limits, enforced by both socket servers
/// (the in-process loopbacks have no connection to bound).
///
/// These are the transport half of the convict-or-evict invariant: a
/// peer that floods sessions is *rejected* frame by frame
/// ([`RejectReason::ResourceLimit`]), a peer that drips a frame past
/// the read deadline is *evicted*
/// ([`ConnEvictReason::SlowRead`]) — either way the worker pool and
/// the event loops keep serving everyone else.
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Live sessions one connection may hold at once (a `Close` frees
    /// its slot). Frames naming a session beyond the cap bounce with
    /// [`RejectReason::ResourceLimit`] without touching the gateway.
    /// `0` disables the cap — the default, because multiplexed
    /// campaigns legitimately hold 100k+ sessions on one socket.
    pub max_sessions_per_conn: usize,
    /// How long a connection may sit *mid-frame* (length prefix or
    /// payload started but unfinished) before it is cut as a
    /// slow-reader attack. Measured from the first byte of the
    /// unfinished message. `Duration::ZERO` disables the deadline.
    pub read_deadline: Duration,
    /// Require version negotiation: a connection's first frame must be
    /// a hello carrying the gateway's event-table hash. A legacy peer
    /// that leads with anything else is answered with one counted
    /// [`RejectReason::VersionMismatch`] and cut. `false` (the
    /// default) answers hellos when offered but tolerates their
    /// absence.
    pub require_hello: bool,
}

impl Default for ConnLimits {
    fn default() -> ConnLimits {
        ConnLimits {
            max_sessions_per_conn: 0,
            // Complete frames are ≤ 15 bytes; a peer mid-frame for ten
            // seconds is dripping, not slow.
            read_deadline: Duration::from_secs(10),
            require_hello: false,
        }
    }
}

/// What a transport does with one decoded frame, as decided by
/// [`ConnSessions::gate`]. Every server path maps these identically,
/// which is what keeps negotiation byte-identical across transports.
enum Gate {
    /// Submit the frame to the gateway.
    Forward,
    /// Answer `reply` at the transport; keep the connection.
    Reply(Reply),
    /// Answer `reply`, then cut the connection.
    Refuse(Reply),
}

/// Tracks the live-session set of one connection against
/// [`ConnLimits::max_sessions_per_conn`], plus whether the connection
/// has completed hello negotiation.
#[derive(Default)]
struct ConnSessions {
    live: HashSet<u64>,
    /// Whether a hello was acked on this connection.
    hello_done: bool,
}

impl ConnSessions {
    /// Admits `frame` against the cap: `Ok(())` to submit it to the
    /// gateway, `Err(reason)` to bounce it at the transport.
    fn admit(&mut self, frame: &Frame, cap: usize) -> Result<(), RejectReason> {
        match frame {
            Frame::Close { session } => {
                self.live.remove(session);
                Ok(())
            }
            Frame::Event { session, .. } | Frame::Stall { session } => {
                if self.live.contains(session) {
                    return Ok(());
                }
                if cap > 0 && self.live.len() >= cap {
                    return Err(RejectReason::ResourceLimit);
                }
                self.live.insert(*session);
                Ok(())
            }
            // Hello is connection-level: it never holds a session slot.
            Frame::Hello { .. } => Ok(()),
        }
    }

    /// Connection-level admission for one decoded frame: hello
    /// negotiation first, then the session cap. Shared by every server
    /// path of both transports.
    fn gate(&mut self, gateway: &Gateway, frame: &Frame, limits: &ConnLimits) -> Gate {
        match frame {
            Frame::Hello {
                session,
                table_hash,
                version,
            } => {
                let reply = gateway.hello(*session, *table_hash, *version);
                if matches!(reply, Reply::HelloAck { .. }) {
                    self.hello_done = true;
                    Gate::Reply(reply)
                } else {
                    Gate::Refuse(reply)
                }
            }
            _ if limits.require_hello && !self.hello_done => Gate::Refuse(
                gateway.transport_reject(frame.session(), RejectReason::VersionMismatch),
            ),
            _ => match self.admit(frame, limits.max_sessions_per_conn) {
                Ok(()) => Gate::Forward,
                Err(reason) => Gate::Reply(gateway.transport_reject(frame.session(), reason)),
            },
        }
    }
}

/// One side of a frame/reply conversation with a gateway.
pub trait Conn {
    /// Sends `frame` and blocks for its reply.
    fn call(&mut self, frame: &Frame) -> io::Result<Reply>;
}

/// In-process transport: encodes, decodes, and calls the gateway
/// directly — the wire format without the socket.
pub struct LoopbackConn {
    gateway: Gateway,
    buf: Vec<u8>,
}

impl LoopbackConn {
    /// A loopback connection onto `gateway`.
    pub fn new(gateway: Gateway) -> LoopbackConn {
        LoopbackConn {
            gateway,
            buf: Vec::with_capacity(32),
        }
    }
}

impl Conn for LoopbackConn {
    fn call(&mut self, frame: &Frame) -> io::Result<Reply> {
        self.buf.clear();
        encode_frame(frame, &mut self.buf);
        let decoded = decode_frame(&self.buf[4..])?;
        let reply = self.gateway.call(decoded);
        self.buf.clear();
        encode_reply(&reply, &mut self.buf);
        Ok(decode_reply(&self.buf[4..])?)
    }
}

/// Client side of the TCP transport.
pub struct TcpConn {
    stream: TcpStream,
}

impl TcpConn {
    /// Connects to a serving gateway at `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpConn { stream })
    }

    /// Connects and negotiates: sends a hello carrying `table_hash`
    /// (version unpinned) and fails with [`io::ErrorKind::ConnectionRefused`]
    /// unless the server acks it. Required against servers running
    /// with [`ConnLimits::require_hello`].
    pub fn connect_negotiated<A: ToSocketAddrs>(addr: A, table_hash: u64) -> io::Result<TcpConn> {
        let mut conn = TcpConn::connect(addr)?;
        match conn.call(&Frame::Hello {
            session: 0,
            table_hash,
            version: 0,
        })? {
            Reply::HelloAck { .. } => Ok(conn),
            Reply::Rejected { reason, .. } => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server refused hello: {reason}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply: {other:?}"),
            )),
        }
    }
}

impl Conn for TcpConn {
    fn call(&mut self, frame: &Frame) -> io::Result<Reply> {
        write_frame(&mut self.stream, frame)?;
        match read_payload(&mut self.stream)? {
            Some(payload) => Ok(decode_reply(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-call",
            )),
        }
    }
}

/// A running TCP acceptor in front of a gateway.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` and serves `gateway` with default [`ConnLimits`]
    /// until [`TcpServer::stop`].
    ///
    /// Each accepted connection gets a reader thread; replies are
    /// written back by gateway workers through a shared write half, so
    /// a slow client never blocks the acceptor.
    pub fn bind<A: ToSocketAddrs>(gateway: Gateway, addr: A) -> io::Result<TcpServer> {
        TcpServer::bind_with(gateway, addr, ConnLimits::default())
    }

    /// [`TcpServer::bind`] with explicit per-connection limits.
    pub fn bind_with<A: ToSocketAddrs>(
        gateway: Gateway,
        addr: A,
        limits: ConnLimits,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let gateway = gateway.clone();
                        let stop = Arc::clone(&accept_stop);
                        gateway.runtime_stats().note_conn_open();
                        conns.push(std::thread::spawn(move || {
                            let _ = serve_connection(&gateway, stream, &stop, limits);
                            gateway.runtime_stats().note_conn_close();
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every connection thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads frames off one connection; replies are written (in completion
/// order — lockstep clients see call order) through a mutex-shared
/// clone of the stream.
///
/// Reads are batched: every socket wakeup pulls whatever bytes are
/// available into a [`FrameBuffer`] and processes *all* complete frames
/// it holds, so pipelined clients pay one read syscall for a whole
/// burst of frames. When the gateway has batching enabled the burst
/// goes through [`Gateway::call_batch`] — replies for the whole chunk
/// are encoded into one reusable buffer and written with a single
/// locked `write_all`; otherwise each frame is submitted individually.
/// Partial frames stay buffered across reads; an EOF that strands one
/// is reported as a torn stream, never silently dropped. Cuts that
/// evict an abusive peer (garbage, torn stream, slow drip) are
/// attributed in the gateway stats per [`ConnEvictReason`].
fn serve_connection(
    gateway: &Gateway,
    stream: TcpStream,
    stop: &AtomicBool,
    limits: ConnLimits,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    let mut frames = FrameBuffer::new();
    let mut sessions = ConnSessions::default();
    let mut chunk = [0u8; 16 * 1024];
    let batching = gateway.batching_enabled();
    // Batch-path scratch, reused across read wakeups.
    let mut batch: Vec<Frame> = Vec::new();
    let mut admitted: Vec<Frame> = Vec::new();
    let mut scratch = BatchScratch::new();
    let mut out: Vec<u8> = Vec::new();
    // First byte of an unfinished message, for the read deadline.
    let mut mid_since: Option<Instant> = None;
    while !stop.load(Ordering::Acquire) {
        let got = match reader.read(&mut chunk) {
            Ok(0) => {
                if frames.is_mid_message() {
                    gateway
                        .runtime_stats()
                        .note_conn_evict(ConnEvictReason::Protocol);
                    return Err(frames.torn_error().into());
                }
                break; // clean EOF, between messages
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if let Some(since) = mid_since {
                    if !limits.read_deadline.is_zero() && since.elapsed() >= limits.read_deadline {
                        gateway
                            .runtime_stats()
                            .note_conn_evict(ConnEvictReason::SlowRead);
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "frame unfinished past the read deadline",
                        ));
                    }
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        frames.extend(&chunk[..got]);
        if batching {
            gateway.runtime_stats().note_bytes_in(got);
            // Decode everything first; frames decoded before any wire
            // damage are still answered, matching the per-frame path.
            batch.clear();
            let mut wire_err = None;
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => batch.push(frame),
                    Ok(None) => break,
                    Err(e) => {
                        wire_err = Some(e);
                        break;
                    }
                }
            }
            out.clear();
            let mut slow = |frame: Frame| {
                let writer = Arc::clone(&writer);
                gateway.submit(
                    frame,
                    Box::new(move |reply| {
                        let mut w = writer.lock().unwrap();
                        let _ = write_reply(&mut *w, &reply);
                    }),
                );
            };
            admitted.clear();
            let mut refused = false;
            for &frame in &batch {
                match sessions.gate(gateway, &frame, &limits) {
                    Gate::Forward => admitted.push(frame),
                    Gate::Reply(reply) => {
                        // Flush the admitted run first so a bounced
                        // session's earlier replies keep their order.
                        gateway.call_batch(&admitted, &mut scratch, &mut out, &mut slow);
                        admitted.clear();
                        encode_reply(&reply, &mut out);
                    }
                    Gate::Refuse(reply) => {
                        gateway.call_batch(&admitted, &mut scratch, &mut out, &mut slow);
                        admitted.clear();
                        encode_reply(&reply, &mut out);
                        refused = true;
                        break;
                    }
                }
            }
            gateway.call_batch(&admitted, &mut scratch, &mut out, &mut slow);
            admitted.clear();
            if !out.is_empty() {
                let mut w = writer.lock().unwrap();
                w.write_all(&out)?;
                gateway.runtime_stats().note_bytes_out(out.len());
            }
            if refused {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "connection refused at hello negotiation",
                ));
            }
            if let Some(e) = wire_err {
                gateway
                    .runtime_stats()
                    .note_conn_evict(ConnEvictReason::Protocol);
                return Err(e.into());
            }
        } else {
            loop {
                match frames.next_frame() {
                    Ok(Some(frame)) => {
                        match sessions.gate(gateway, &frame, &limits) {
                            Gate::Forward => {}
                            Gate::Reply(reply) => {
                                let mut w = writer.lock().unwrap();
                                let _ = write_reply(&mut *w, &reply);
                                continue;
                            }
                            Gate::Refuse(reply) => {
                                let mut w = writer.lock().unwrap();
                                let _ = write_reply(&mut *w, &reply);
                                return Err(io::Error::new(
                                    io::ErrorKind::ConnectionRefused,
                                    "connection refused at hello negotiation",
                                ));
                            }
                        }
                        let writer = Arc::clone(&writer);
                        gateway.submit(
                            frame,
                            Box::new(move |reply| {
                                let mut w = writer.lock().unwrap();
                                let _ = write_reply(&mut *w, &reply);
                            }),
                        );
                    }
                    Ok(None) => break,
                    Err(e) => {
                        gateway
                            .runtime_stats()
                            .note_conn_evict(ConnEvictReason::Protocol);
                        return Err(e.into());
                    }
                }
            }
        }
        // The deadline clock starts when a message is left unfinished
        // and is *not* reset by later partial progress: a drip client
        // feeding one byte per poll must still run out of road.
        if frames.is_mid_message() {
            mid_since.get_or_insert_with(Instant::now);
        } else {
            mid_since = None;
        }
    }
    Ok(())
}

/// Token of each loop's waker registration.
const TOKEN_WAKER: Token = Token(0);
/// Token of the listener registration (loop 0 only).
const TOKEN_LISTENER: Token = Token(1);
/// First token handed to an accepted connection.
const TOKEN_CONN_BASE: usize = 2;
/// Read chunk size per readiness wakeup.
const READ_CHUNK: usize = 64 * 1024;

/// How many `READ_CHUNK`-sized reads one readiness event may consume
/// before the event loop takes back control to flush replies and serve
/// other connections. See `read_conn` for why this bound must exist.
const MAX_READS_PER_EVENT: usize = 4;
/// Outbound bytes a connection may fall behind before it is dropped as
/// a dead or stalled reader. Generous: a full per-session queue's worth
/// of replies for thousands of sessions fits in a fraction of this.
pub const OUTBUF_CAP: usize = 4 << 20;

/// Tuning knobs of a [`ReactorServer`].
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Event-loop threads. Each owns one epoll instance; connections
    /// are assigned round-robin at accept time. Two loops saturate the
    /// guard DFA on small machines; more only help past several
    /// thousand *active* (not merely resident) connections.
    pub loops: usize,
    /// Outbound bytes a connection may fall behind before it is cut as
    /// a slow consumer ([`ConnEvictReason::SlowConsumer`]). Defaults to
    /// [`OUTBUF_CAP`]; tests shrink it to force the eviction path.
    pub outbuf_cap: usize,
    /// Per-connection session cap and read deadline.
    pub limits: ConnLimits,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            loops: 2,
            outbuf_cap: OUTBUF_CAP,
            limits: ConnLimits::default(),
        }
    }
}

/// Outbound bytes of one reactor connection, shared between the
/// event loop (flush side) and gateway-worker responders (append side).
#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    /// Flushed prefix of `buf` (partial-write tracking).
    start: usize,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        if self.start > 0 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// The cross-thread face of one event loop: how the acceptor hands it
/// connections and how responders ask it to flush.
struct LoopShared {
    waker: Waker,
    /// Connections accepted but not yet registered on this loop.
    inbox: Mutex<Vec<TcpStream>>,
    /// Tokens with fresh outbound bytes to flush.
    flush: Mutex<Vec<usize>>,
    stop: AtomicBool,
}

impl LoopShared {
    /// Queue `token` for a flush and wake the loop. Called by gateway
    /// workers after appending a reply to the connection's [`OutBuf`].
    fn request_flush(&self, token: usize) {
        self.flush.lock().unwrap().push(token);
        let _ = self.waker.wake();
    }
}

/// Per-connection state owned by its event loop.
struct ReactorConn {
    stream: TcpStream,
    frames: FrameBuffer,
    out: Arc<Mutex<OutBuf>>,
    /// Whether the registration currently includes `EPOLLOUT`.
    write_interest: bool,
    /// Live sessions on this connection, for the per-connection cap.
    sessions: ConnSessions,
    /// First byte of an unfinished inbound message, for the read
    /// deadline sweep.
    mid_since: Option<Instant>,
    /// Frames decoded from the current readiness event, reused across
    /// events (batched path only).
    batch: Vec<Frame>,
    /// Admitted run being accumulated for [`Gateway::call_batch`].
    admitted: Vec<Frame>,
    /// Session-grouping scratch for [`Gateway::call_batch`].
    scratch: BatchScratch,
}

/// A non-blocking TCP acceptor in front of a gateway: all connections
/// are driven by a fixed pool of epoll event-loop threads, so the
/// thread count is constant no matter how many clients — or how many
/// multiplexed sessions per client — are live. See the module docs for
/// the full data path.
pub struct ReactorServer {
    addr: SocketAddr,
    loops: Vec<Arc<LoopShared>>,
    handles: Vec<JoinHandle<()>>,
}

impl ReactorServer {
    /// Binds `addr` and serves `gateway` from `cfg.loops` event-loop
    /// threads until [`ReactorServer::stop`].
    pub fn bind<A: ToSocketAddrs>(
        gateway: Gateway,
        addr: A,
        cfg: ReactorConfig,
    ) -> io::Result<ReactorServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let n = cfg.loops.max(1);
        let mut polls = Vec::with_capacity(n);
        let mut loops = Vec::with_capacity(n);
        for _ in 0..n {
            let poll = Poll::new()?;
            let waker = Waker::new(&poll, TOKEN_WAKER)?;
            polls.push(poll);
            loops.push(Arc::new(LoopShared {
                waker,
                inbox: Mutex::new(Vec::new()),
                flush: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            }));
        }

        let mut handles = Vec::with_capacity(n);
        let next = Arc::new(AtomicUsize::new(0));
        let mut listener = Some(listener);
        for (i, poll) in polls.into_iter().enumerate() {
            let gateway = gateway.clone();
            let shared = Arc::clone(&loops[i]);
            // Loop 0 owns the listener and hands connections to peers.
            let listener = if i == 0 {
                let l = listener.take().expect("listener assigned once");
                poll.register(l.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
                Some(l)
            } else {
                None
            };
            let peers: Vec<Arc<LoopShared>> = loops.clone();
            let next = Arc::clone(&next);
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                event_loop(
                    &gateway,
                    &poll,
                    &shared,
                    listener.as_ref(),
                    &peers,
                    &next,
                    &cfg,
                );
            }));
        }
        Ok(ReactorServer {
            addr,
            loops,
            handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops every event loop and joins it; live connections are
    /// dropped (their sessions stay in the gateway until evicted).
    pub fn stop(&mut self) {
        for l in &self.loops {
            l.stop.store(true, Ordering::Release);
            let _ = l.waker.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One event-loop thread: readiness events in, gateway submissions and
/// reply flushes out. Runs until its `LoopShared::stop` flag is set.
fn event_loop(
    gateway: &Gateway,
    poll: &Poll,
    shared: &Arc<LoopShared>,
    listener: Option<&TcpListener>,
    peers: &[Arc<LoopShared>],
    next: &AtomicUsize,
    cfg: &ReactorConfig,
) {
    let mut events = Events::with_capacity(512);
    let mut conns: HashMap<usize, ReactorConn> = HashMap::new();
    let mut next_token = TOKEN_CONN_BASE;
    let mut chunk = vec![0u8; READ_CHUNK];
    // Read-deadline sweep cadence: often enough to cut a dripper soon
    // after its deadline, rarely enough to stay off the hot path even
    // when readiness events keep the loop from ever hitting the poll
    // timeout.
    let deadline = cfg.limits.read_deadline;
    let sweep_every = (deadline / 4).clamp(Duration::from_millis(25), Duration::from_secs(1));
    let mut last_sweep = Instant::now();
    loop {
        // The timeout is a safety net for a lost wakeup; every real
        // transition arrives as a readiness event or a waker nudge.
        if poll
            .poll(&mut events, Some(Duration::from_millis(100)))
            .is_err()
        {
            break;
        }
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let mut accept_burst = false;
        for ev in events.iter() {
            match ev.token() {
                TOKEN_WAKER => shared.waker.drain(),
                TOKEN_LISTENER => accept_burst = true,
                Token(t) => {
                    let keep = match conns.get_mut(&t) {
                        // A stale event for a connection dropped earlier
                        // in this batch.
                        None => continue,
                        Some(conn) => {
                            let mut keep = true;
                            if ev.is_writable() {
                                keep = flush_conn(gateway, poll, Token(t), conn, cfg.outbuf_cap)
                                    .is_ok();
                            }
                            if keep && ev.is_readable() {
                                keep = read_conn(gateway, shared, Token(t), conn, &mut chunk, cfg);
                                // Inline batch replies land in the
                                // outbound buffer without a waker
                                // round-trip; flush them right away —
                                // even before a cut, so a negotiation
                                // refusal reaches the peer.
                                keep = flush_conn(gateway, poll, Token(t), conn, cfg.outbuf_cap)
                                    .is_ok()
                                    && keep;
                            }
                            keep
                        }
                    };
                    if !keep {
                        drop_conn(gateway, poll, &mut conns, t);
                    }
                }
            }
        }
        if accept_burst {
            if let Some(listener) = listener {
                accept_all(
                    listener,
                    peers,
                    next,
                    shared,
                    &mut conns,
                    &mut next_token,
                    poll,
                    gateway,
                );
            }
        }
        // Register connections handed over by the acceptor loop.
        let handed: Vec<TcpStream> = std::mem::take(&mut *shared.inbox.lock().unwrap());
        for stream in handed {
            register_conn(poll, &mut conns, &mut next_token, stream, gateway);
        }
        // Flush connections whose responders appended replies.
        let mut dirty: Vec<usize> = std::mem::take(&mut *shared.flush.lock().unwrap());
        dirty.sort_unstable();
        dirty.dedup();
        for t in dirty {
            let keep = match conns.get_mut(&t) {
                None => continue,
                Some(conn) => flush_conn(gateway, poll, Token(t), conn, cfg.outbuf_cap).is_ok(),
            };
            if !keep {
                drop_conn(gateway, poll, &mut conns, t);
            }
        }
        // Read-deadline sweep: cut connections stuck mid-frame.
        if !deadline.is_zero() && last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            let expired: Vec<usize> = conns
                .iter()
                .filter(|(_, c)| c.mid_since.is_some_and(|s| s.elapsed() >= deadline))
                .map(|(&t, _)| t)
                .collect();
            for t in expired {
                gateway
                    .runtime_stats()
                    .note_conn_evict(ConnEvictReason::SlowRead);
                drop_conn(gateway, poll, &mut conns, t);
            }
        }
    }
    // Shutdown: deregister and drop everything this loop owns.
    let tokens: Vec<usize> = conns.keys().copied().collect();
    for t in tokens {
        drop_conn(gateway, poll, &mut conns, t);
    }
}

/// Accepts until the listener would block, assigning each connection
/// round-robin over all loops (self included).
#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    peers: &[Arc<LoopShared>],
    next: &AtomicUsize,
    shared: &Arc<LoopShared>,
    conns: &mut HashMap<usize, ReactorConn>,
    next_token: &mut usize,
    poll: &Poll,
    gateway: &Gateway,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                gateway.runtime_stats().note_conn_open();
                let target = next.fetch_add(1, Ordering::Relaxed) % peers.len();
                if Arc::ptr_eq(&peers[target], shared) {
                    register_conn(poll, conns, next_token, stream, gateway);
                } else {
                    peers[target].inbox.lock().unwrap().push(stream);
                    let _ = peers[target].waker.wake();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Puts one accepted stream under this loop's epoll and conn table.
fn register_conn(
    poll: &Poll,
    conns: &mut HashMap<usize, ReactorConn>,
    next_token: &mut usize,
    stream: TcpStream,
    gateway: &Gateway,
) {
    let token = *next_token;
    *next_token += 1;
    let ok = stream.set_nodelay(true).is_ok()
        && stream.set_nonblocking(true).is_ok()
        && poll
            .register(stream.as_raw_fd(), Token(token), Interest::READABLE)
            .is_ok();
    if !ok {
        gateway.runtime_stats().note_conn_close();
        return;
    }
    conns.insert(
        token,
        ReactorConn {
            stream,
            frames: FrameBuffer::new(),
            out: Arc::new(Mutex::new(OutBuf::default())),
            write_interest: false,
            sessions: ConnSessions::default(),
            mid_since: None,
            batch: Vec::new(),
            admitted: Vec::new(),
            scratch: BatchScratch::new(),
        },
    );
}

/// Drains the socket's readable bytes into the connection's
/// [`FrameBuffer`] and processes every complete frame — through
/// [`Gateway::call_batch`] when batching is enabled, per-frame
/// `submit` otherwise. Returns `false` when the connection is finished
/// (EOF, error, or protocol damage); frames decoded before the damage
/// are still answered either way.
fn read_conn(
    gateway: &Gateway,
    shared: &Arc<LoopShared>,
    token: Token,
    conn: &mut ReactorConn,
    chunk: &mut [u8],
    cfg: &ReactorConfig,
) -> bool {
    if !gateway.batching_enabled() {
        return read_conn_per_frame(gateway, shared, token, conn, chunk, cfg);
    }
    let mut keep = read_into_batch(gateway, conn, chunk);
    if !conn.batch.is_empty() {
        keep = process_batch(gateway, shared, token, conn, cfg) && keep;
        conn.batch.clear();
    }
    keep
}

/// Batched read half: pulls bounded chunks into the frame buffer and
/// decodes complete frames into `conn.batch` without touching the
/// gateway. Returns whether the connection stays registered.
fn read_into_batch(gateway: &Gateway, conn: &mut ReactorConn, chunk: &mut [u8]) -> bool {
    // Bounded work per readiness event. A peer that writes continuously
    // would otherwise keep this loop inside `read` forever — starving
    // every other connection on the loop AND the flush pass that
    // enforces `outbuf_cap`, so its reply backlog could grow without
    // bound while it never reads. Registrations are level-triggered, so
    // leftover bytes re-report on the next poll, after flushes ran.
    let mut reads = 0usize;
    loop {
        if reads == MAX_READS_PER_EVENT {
            return true;
        }
        reads += 1;
        match conn.stream.read(chunk) {
            // EOF. A partial frame left in the buffer is a torn stream;
            // either way the connection is done after the frames
            // already decoded are processed.
            Ok(0) => {
                if conn.frames.is_mid_message() {
                    gateway
                        .runtime_stats()
                        .note_conn_evict(ConnEvictReason::Protocol);
                }
                return false;
            }
            Ok(n) => {
                gateway.runtime_stats().note_bytes_in(n);
                conn.frames.extend(&chunk[..n]);
                loop {
                    match conn.frames.next_frame() {
                        Ok(Some(frame)) => conn.batch.push(frame),
                        Ok(None) => break,
                        // Adversarial or corrupt input: cut the
                        // connection, exactly like the blocking server.
                        Err(_) => {
                            gateway
                                .runtime_stats()
                                .note_conn_evict(ConnEvictReason::Protocol);
                            return false;
                        }
                    }
                }
                // Track when the tail of an unfinished frame first
                // appeared; the event loop's sweep cuts the connection
                // if it lingers past the read deadline. Partial
                // progress does not reset the clock — that would let a
                // dripper stay alive one byte at a time.
                if conn.frames.is_mid_message() {
                    conn.mid_since.get_or_insert_with(Instant::now);
                } else {
                    conn.mid_since = None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Runs one readiness event's decoded frames through
/// [`Gateway::call_batch`] under a single outbound-buffer lock: one
/// session-grouped DFA pass, inline replies appended straight to the
/// buffer, contended sessions forwarded to the worker queue with the
/// classic responder. The caller flushes once afterwards — inline
/// replies never pay the waker round-trip. Returns `false` when the
/// connection must be cut (hello negotiation refused); the refusal
/// reply is already in the outbound buffer.
fn process_batch(
    gateway: &Gateway,
    shared: &Arc<LoopShared>,
    token: Token,
    conn: &mut ReactorConn,
    cfg: &ReactorConfig,
) -> bool {
    let out = &conn.out;
    let mut ob = out.lock().unwrap();
    let mut slow = |frame: Frame| {
        let out = Arc::clone(out);
        let shared = Arc::clone(shared);
        gateway.submit(
            frame,
            Box::new(move |reply| {
                encode_reply(&reply, &mut out.lock().unwrap().buf);
                shared.request_flush(token.0);
            }),
        );
    };
    conn.admitted.clear();
    let mut keep = true;
    for &frame in &conn.batch {
        match conn.sessions.gate(gateway, &frame, &cfg.limits) {
            Gate::Forward => conn.admitted.push(frame),
            Gate::Reply(reply) => {
                // Flush the admitted run first so a bounced session's
                // earlier replies keep their order in the buffer.
                gateway.call_batch(&conn.admitted, &mut conn.scratch, &mut ob.buf, &mut slow);
                conn.admitted.clear();
                encode_reply(&reply, &mut ob.buf);
            }
            Gate::Refuse(reply) => {
                gateway.call_batch(&conn.admitted, &mut conn.scratch, &mut ob.buf, &mut slow);
                conn.admitted.clear();
                encode_reply(&reply, &mut ob.buf);
                keep = false;
                break;
            }
        }
    }
    gateway.call_batch(&conn.admitted, &mut conn.scratch, &mut ob.buf, &mut slow);
    conn.admitted.clear();
    keep
}

/// Per-frame fallback ([`GatewayConfig::batching`] off): every decoded
/// frame is submitted individually and every reply pays a responder
/// and a flush wakeup. Kept as the differential oracle for the batched
/// path.
///
/// [`GatewayConfig::batching`]: crate::gateway::GatewayConfig::batching
fn read_conn_per_frame(
    gateway: &Gateway,
    shared: &Arc<LoopShared>,
    token: Token,
    conn: &mut ReactorConn,
    chunk: &mut [u8],
    cfg: &ReactorConfig,
) -> bool {
    let mut reads = 0usize;
    loop {
        if reads == MAX_READS_PER_EVENT {
            return true;
        }
        reads += 1;
        match conn.stream.read(chunk) {
            Ok(0) => {
                if conn.frames.is_mid_message() {
                    gateway
                        .runtime_stats()
                        .note_conn_evict(ConnEvictReason::Protocol);
                }
                return false;
            }
            Ok(n) => {
                gateway.runtime_stats().note_bytes_in(n);
                conn.frames.extend(&chunk[..n]);
                loop {
                    match conn.frames.next_frame() {
                        Ok(Some(frame)) => {
                            match conn.sessions.gate(gateway, &frame, &cfg.limits) {
                                Gate::Forward => {}
                                Gate::Reply(reply) => {
                                    encode_reply(&reply, &mut conn.out.lock().unwrap().buf);
                                    shared.request_flush(token.0);
                                    continue;
                                }
                                Gate::Refuse(reply) => {
                                    // The cut's refusal reply still
                                    // goes out: the event loop flushes
                                    // once before dropping the conn.
                                    encode_reply(&reply, &mut conn.out.lock().unwrap().buf);
                                    return false;
                                }
                            }
                            let out = Arc::clone(&conn.out);
                            let shared = Arc::clone(shared);
                            gateway.submit(
                                frame,
                                Box::new(move |reply| {
                                    encode_reply(&reply, &mut out.lock().unwrap().buf);
                                    shared.request_flush(token.0);
                                }),
                            );
                        }
                        Ok(None) => break,
                        Err(_) => {
                            gateway
                                .runtime_stats()
                                .note_conn_evict(ConnEvictReason::Protocol);
                            return false;
                        }
                    }
                }
                if conn.frames.is_mid_message() {
                    conn.mid_since.get_or_insert_with(Instant::now);
                } else {
                    conn.mid_since = None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Writes as much buffered output as the socket takes. Registers
/// `EPOLLOUT` interest while bytes remain, drops it once drained, and
/// evicts the connection as a counted slow consumer when the backlog
/// exceeds `outbuf_cap`.
fn flush_conn(
    gateway: &Gateway,
    poll: &Poll,
    token: Token,
    conn: &mut ReactorConn,
    outbuf_cap: usize,
) -> io::Result<()> {
    let mut out = conn.out.lock().unwrap();
    while out.pending() > 0 {
        let start = out.start;
        match (&conn.stream).write(&out.buf[start..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                out.start += n;
                gateway.runtime_stats().note_bytes_out(n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if out.pending() == 0 {
        out.buf.clear();
        out.start = 0;
        if conn.write_interest {
            poll.reregister(conn.stream.as_raw_fd(), token, Interest::READABLE)?;
            conn.write_interest = false;
        }
    } else {
        if out.pending() > outbuf_cap {
            gateway
                .runtime_stats()
                .note_conn_evict(ConnEvictReason::SlowConsumer);
            return Err(io::Error::other(
                "reactor connection outbound backlog over cap",
            ));
        }
        out.compact();
        if !conn.write_interest {
            poll.reregister(
                conn.stream.as_raw_fd(),
                token,
                Interest::READABLE.add(Interest::WRITABLE),
            )?;
            conn.write_interest = true;
        }
    }
    Ok(())
}

/// Deregisters and forgets one connection.
fn drop_conn(
    gateway: &Gateway,
    poll: &Poll,
    conns: &mut HashMap<usize, ReactorConn>,
    token: usize,
) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poll.deregister(conn.stream.as_raw_fd());
        gateway.runtime_stats().note_conn_close();
    }
}

/// A connection carrying frames from many sessions at once: queue
/// frames, then [`MuxTransport::exchange`] to flush them and collect
/// whatever replies have arrived. Reply attribution is by the session
/// id in each reply header — valid because the driver keeps at most
/// one outstanding frame per session.
pub trait MuxTransport {
    /// Buffers `frame` for the next exchange.
    fn queue(&mut self, frame: &Frame) -> io::Result<()>;

    /// Flushes queued frames and appends decoded replies to `replies`.
    /// With `wait` true, blocks until at least one reply arrives;
    /// otherwise returns once the outbound bytes are flushed (or would
    /// block) and the readable bytes are drained.
    fn exchange(&mut self, wait: bool, replies: &mut Vec<Reply>) -> io::Result<()>;
}

/// Client side of the multiplexed TCP transport: one non-blocking
/// socket, frames batch-encoded into one outbound buffer, replies
/// batch-decoded through a [`ReplyBuffer`]. Blocks (when asked to) on
/// its own single-fd epoll instance rather than spinning.
pub struct MuxClient {
    stream: TcpStream,
    poll: Poll,
    out: OutBuf,
    replies: ReplyBuffer,
    chunk: Vec<u8>,
}

impl MuxClient {
    /// Connects to a serving gateway at `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<MuxClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let poll = Poll::new()?;
        poll.register(stream.as_raw_fd(), Token(0), Interest::READABLE)?;
        Ok(MuxClient {
            stream,
            poll,
            out: OutBuf::default(),
            replies: ReplyBuffer::new(),
            chunk: vec![0u8; READ_CHUNK],
        })
    }

    /// Connects and negotiates: sends a hello carrying `table_hash`
    /// (version unpinned) and fails with [`io::ErrorKind::ConnectionRefused`]
    /// unless the server acks it before anything else.
    pub fn connect_negotiated<A: ToSocketAddrs>(addr: A, table_hash: u64) -> io::Result<MuxClient> {
        let mut conn = MuxClient::connect(addr)?;
        conn.queue(&Frame::Hello {
            session: 0,
            table_hash,
            version: 0,
        })?;
        let mut replies = Vec::new();
        conn.exchange(true, &mut replies)?;
        match replies.first() {
            Some(Reply::HelloAck { .. }) => Ok(conn),
            Some(Reply::Rejected { reason, .. }) => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("server refused hello: {reason}"),
            )),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello reply: {other:?}"),
            )),
        }
    }

    /// Writes until the socket would block; true when fully flushed.
    fn try_flush(&mut self) -> io::Result<bool> {
        while self.out.pending() > 0 {
            let start = self.out.start;
            match (&self.stream).write(&self.out.buf[start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.out.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.buf.clear();
        self.out.start = 0;
        Ok(true)
    }

    /// Reads until the socket would block, decoding replies. Returns
    /// how many replies were appended.
    fn try_read(&mut self, replies: &mut Vec<Reply>) -> io::Result<usize> {
        let mut got = 0;
        loop {
            match self.stream.read(&mut self.chunk) {
                Ok(0) => {
                    return if self.replies.is_mid_message() {
                        Err(self.replies.torn_error().into())
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection with frames outstanding",
                        ))
                    };
                }
                Ok(n) => {
                    self.replies.extend(&self.chunk[..n]);
                    while let Some(r) = self.replies.next_reply()? {
                        replies.push(r);
                        got += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(got),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl MuxTransport for MuxClient {
    fn queue(&mut self, frame: &Frame) -> io::Result<()> {
        encode_frame(frame, &mut self.out.buf);
        Ok(())
    }

    fn exchange(&mut self, wait: bool, replies: &mut Vec<Reply>) -> io::Result<()> {
        let mut events = Events::with_capacity(4);
        loop {
            let flushed = self.try_flush()?;
            let got = self.try_read(replies)?;
            if got > 0 || (!wait && flushed) {
                return Ok(());
            }
            let interest = if flushed {
                Interest::READABLE
            } else {
                Interest::READABLE.add(Interest::WRITABLE)
            };
            self.poll
                .reregister(self.stream.as_raw_fd(), Token(0), interest)?;
            self.poll
                .poll(&mut events, Some(Duration::from_millis(100)))?;
        }
    }
}

/// In-process [`MuxTransport`]: frames go through the real encoder and
/// decoder; with batching enabled they accumulate until
/// [`MuxTransport::exchange`] runs the whole burst through
/// [`Gateway::call_batch`] and decodes the inline reply bytes from a
/// reused wire buffer, otherwise each frame goes straight into
/// [`Gateway::submit`]. Slow-path replies round-trip the wire format
/// (stack-encoded, no per-reply allocation) into a condvar-guarded
/// queue the exchange drains. The differential twin of [`MuxClient`]
/// for socket-free tests and benchmarks.
pub struct LoopbackMux {
    gateway: Gateway,
    pending: Arc<(Mutex<Vec<Reply>>, Condvar)>,
    buf: Vec<u8>,
    /// Decoded frames awaiting the next exchange (batched path only).
    queued: Vec<Frame>,
    /// Session-grouping scratch for [`Gateway::call_batch`].
    scratch: BatchScratch,
    /// Reused inline-reply wire buffer.
    wire: Vec<u8>,
    /// Reused inline-reply decoder.
    rdec: ReplyBuffer,
}

impl LoopbackMux {
    /// A multiplexed loopback connection onto `gateway`.
    pub fn new(gateway: Gateway) -> LoopbackMux {
        LoopbackMux {
            gateway,
            pending: Arc::new((Mutex::new(Vec::new()), Condvar::new())),
            buf: Vec::with_capacity(32),
            queued: Vec::new(),
            scratch: BatchScratch::new(),
            wire: Vec::new(),
            rdec: ReplyBuffer::new(),
        }
    }
}

/// The slow-path responder both loopback-mux paths share: round-trips
/// the reply through the stack wire encoder into the pending queue.
fn loopback_mux_responder(
    pending: &Arc<(Mutex<Vec<Reply>>, Condvar)>,
) -> Box<dyn FnOnce(Reply) + Send + 'static> {
    let pending = Arc::clone(pending);
    Box::new(move |reply| {
        let (wire, len) = encode_reply_array(&reply);
        if let Ok(reply) = decode_reply(&wire[4..len]) {
            let (lock, cv) = &*pending;
            lock.lock().unwrap().push(reply);
            cv.notify_one();
        }
    })
}

impl MuxTransport for LoopbackMux {
    fn queue(&mut self, frame: &Frame) -> io::Result<()> {
        self.buf.clear();
        encode_frame(frame, &mut self.buf);
        let decoded = decode_frame(&self.buf[4..])?;
        if self.gateway.batching_enabled() {
            self.queued.push(decoded);
            return Ok(());
        }
        self.gateway
            .submit(decoded, loopback_mux_responder(&self.pending));
        Ok(())
    }

    fn exchange(&mut self, wait: bool, replies: &mut Vec<Reply>) -> io::Result<()> {
        let mut inline = 0usize;
        if !self.queued.is_empty() {
            self.wire.clear();
            let gateway = &self.gateway;
            let pending = &self.pending;
            let mut slow = |frame: Frame| {
                gateway.submit(frame, loopback_mux_responder(pending));
            };
            gateway.call_batch(&self.queued, &mut self.scratch, &mut self.wire, &mut slow);
            self.queued.clear();
            self.rdec.extend(&self.wire);
            while let Some(r) = self.rdec.next_reply()? {
                replies.push(r);
                inline += 1;
            }
        }
        let (lock, cv) = &*self.pending;
        let mut got = lock.lock().unwrap();
        if wait && inline == 0 {
            // Gateway workers always answer admitted frames, so a bare
            // wait cannot hang; the timeout guards responder drops
            // during teardown.
            while got.is_empty() {
                let (g, _) = cv
                    .wait_timeout(got, Duration::from_millis(100))
                    .map_err(|_| io::Error::other("poisoned reply queue"))?;
                got = g;
            }
        }
        replies.append(&mut got);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::RejectReason;
    use crate::gateway::GatewayConfig;
    use protoquot_spec::{EventId, Spec, SpecBuilder};

    fn relay_gateway() -> Gateway {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let implementation: Spec = b.build().unwrap();
        let mut b = SpecBuilder::new("service");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        let service = b.build().unwrap();
        Gateway::new(&[&implementation], &service, GatewayConfig::default()).unwrap()
    }

    #[test]
    fn loopback_round_trips_through_the_codec() {
        let gw = relay_gateway();
        let mut conn = LoopbackConn::new(gw.clone());
        let acc = gw.codec().event_frame(7, EventId::new("acc")).unwrap();
        assert_eq!(conn.call(&acc).unwrap(), Reply::Accepted { session: 7 });
        let bad = gw.codec().event_frame(7, EventId::new("acc")).unwrap();
        assert_eq!(
            conn.call(&bad).unwrap(),
            Reply::Rejected {
                session: 7,
                reason: RejectReason::NotATrace,
            }
        );
        gw.drain();
    }

    #[test]
    fn reactor_serves_concurrent_lockstep_clients() {
        let gw = relay_gateway();
        let mut server =
            ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default()).unwrap();
        let addr = server.local_addr();
        let acc = EventId::new("acc");
        let del = EventId::new("del");
        std::thread::scope(|scope| {
            for session in 0..4u64 {
                let codec = gw.codec().clone();
                scope.spawn(move || {
                    let mut conn = TcpConn::connect(addr).unwrap();
                    for _ in 0..20 {
                        let f = codec.event_frame(session, acc).unwrap();
                        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session });
                        let f = codec.event_frame(session, del).unwrap();
                        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session });
                    }
                    let close = Frame::Close { session };
                    assert_eq!(conn.call(&close).unwrap(), Reply::Accepted { session });
                });
            }
        });
        server.stop();
        let snap = gw.stats();
        assert_eq!(snap.accepted, 4 * 40);
        assert_eq!(snap.convictions, 0);
        assert_eq!(snap.connections_opened, 4);
        assert_eq!(snap.connections_closed, 4);
        gw.drain();
    }

    /// Many sessions multiplexed over one reactor connection: every
    /// reply lands on the session its header names, and the guard sees
    /// each session's frames in order.
    #[test]
    fn reactor_multiplexes_sessions_over_one_connection() {
        let gw = relay_gateway();
        let mut server = ReactorServer::bind(
            gw.clone(),
            "127.0.0.1:0",
            ReactorConfig {
                loops: 1,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let codec = gw.codec().clone();
        let acc = EventId::new("acc");
        let del = EventId::new("del");

        let sessions: Vec<u64> = (0..64).collect();
        let mut mux = MuxClient::connect(addr).unwrap();
        // Round-robin: every session sends acc, then every session del,
        // for 10 rounds — all interleaved on one socket.
        let mut outstanding = 0usize;
        let mut replies = Vec::new();
        let mut accepted = std::collections::HashMap::new();
        for round in 0..20 {
            let ev = if round % 2 == 0 { acc } else { del };
            for &s in &sessions {
                mux.queue(&codec.event_frame(s, ev).unwrap()).unwrap();
                outstanding += 1;
            }
            while outstanding > 0 {
                mux.exchange(true, &mut replies).unwrap();
                for r in replies.drain(..) {
                    match r {
                        Reply::Accepted { session } => {
                            *accepted.entry(session).or_insert(0u32) += 1;
                        }
                        other => panic!("unexpected reply {other:?}"),
                    }
                    outstanding -= 1;
                }
            }
        }
        for &s in &sessions {
            assert_eq!(accepted[&s], 20, "session {s} reply attribution");
        }
        server.stop();
        let snap = gw.stats();
        assert_eq!(snap.accepted, 64 * 20);
        assert_eq!(snap.convictions, 0);
        gw.drain();
    }

    /// Garbage bytes on one connection cut that connection — and only
    /// that connection; the server keeps serving others.
    #[test]
    fn reactor_drops_corrupt_connections_and_survives() {
        let gw = relay_gateway();
        let mut server = ReactorServer::bind(
            gw.clone(),
            "127.0.0.1:0",
            ReactorConfig {
                loops: 1,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // A client that speaks garbage: oversized length prefix.
        let mut evil = TcpStream::connect(addr).unwrap();
        evil.write_all(&[0xFF; 32]).unwrap();
        // The server must cut it: reads eventually see EOF/reset.
        evil.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = [0u8; 16];
        loop {
            match evil.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }

        // A well-behaved client still gets served.
        let codec = gw.codec().clone();
        let mut conn = TcpConn::connect(addr).unwrap();
        let f = codec.event_frame(1, EventId::new("acc")).unwrap();
        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session: 1 });
        server.stop();
        gw.drain();
    }

    /// A client that dies mid-frame (torn stream) is dropped without
    /// taking the loop down.
    #[test]
    fn reactor_survives_torn_streams() {
        let gw = relay_gateway();
        let mut server = ReactorServer::bind(
            gw.clone(),
            "127.0.0.1:0",
            ReactorConfig {
                loops: 1,
                ..ReactorConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let codec = gw.codec().clone();

        let mut torn = TcpStream::connect(addr).unwrap();
        let mut bytes = Vec::new();
        encode_frame(
            &codec.event_frame(5, EventId::new("acc")).unwrap(),
            &mut bytes,
        );
        torn.write_all(&bytes[..bytes.len() / 2]).unwrap();
        drop(torn);

        let mut conn = TcpConn::connect(addr).unwrap();
        let f = codec.event_frame(2, EventId::new("acc")).unwrap();
        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session: 2 });
        server.stop();
        gw.drain();
    }

    #[test]
    fn loopback_mux_interleaves_sessions() {
        let gw = relay_gateway();
        let codec = gw.codec().clone();
        let mut mux = LoopbackMux::new(gw.clone());
        let acc = EventId::new("acc");
        let mut outstanding = 0usize;
        for s in 0..16u64 {
            mux.queue(&codec.event_frame(s, acc).unwrap()).unwrap();
            outstanding += 1;
        }
        let mut seen = std::collections::HashSet::new();
        let mut replies = Vec::new();
        while outstanding > 0 {
            mux.exchange(true, &mut replies).unwrap();
            for r in replies.drain(..) {
                assert!(matches!(r, Reply::Accepted { .. }));
                assert!(seen.insert(r.session()), "duplicate reply for {r:?}");
                outstanding -= 1;
            }
        }
        assert_eq!(seen.len(), 16);
        gw.drain();
    }

    /// Strict negotiation on both servers: a negotiated client is
    /// served, a mismatched hash is refused at connect, and a legacy
    /// no-hello peer gets one counted `VersionMismatch` and is cut.
    #[test]
    fn strict_hello_gates_both_transports() {
        let acc = EventId::new("acc");
        for reactor in [false, true] {
            let gw = relay_gateway();
            let hash = gw.table_hash();
            let limits = ConnLimits {
                require_hello: true,
                ..ConnLimits::default()
            };
            let (addr, mut tcp_server, mut reactor_server) = if reactor {
                let s = ReactorServer::bind(
                    gw.clone(),
                    "127.0.0.1:0",
                    ReactorConfig {
                        limits,
                        ..ReactorConfig::default()
                    },
                )
                .unwrap();
                (s.local_addr(), None, Some(s))
            } else {
                let s = TcpServer::bind_with(gw.clone(), "127.0.0.1:0", limits).unwrap();
                (s.local_addr(), Some(s), None)
            };
            let f = gw.codec().event_frame(1, acc).unwrap();
            // A negotiated client is served normally.
            let mut conn = TcpConn::connect_negotiated(addr, hash).unwrap();
            assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session: 1 });
            // A peer speaking a different event table never gets in.
            let err = match TcpConn::connect_negotiated(addr, hash ^ 1) {
                Err(e) => e,
                Ok(_) => panic!("mismatched table hash must be refused at hello"),
            };
            assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
            // A legacy peer that skips the hello is bounced and cut.
            let mut legacy = TcpConn::connect(addr).unwrap();
            assert_eq!(
                legacy.call(&f).unwrap(),
                Reply::Rejected {
                    session: 1,
                    reason: RejectReason::VersionMismatch,
                }
            );
            // The negotiated mux shape works against the same server.
            let mut mux = MuxClient::connect_negotiated(addr, hash).unwrap();
            let f2 = gw.codec().event_frame(2, acc).unwrap();
            mux.queue(&f2).unwrap();
            let mut replies = Vec::new();
            mux.exchange(true, &mut replies).unwrap();
            assert_eq!(replies, vec![Reply::Accepted { session: 2 }]);
            if let Some(s) = tcp_server.as_mut() {
                s.stop();
            }
            if let Some(s) = reactor_server.as_mut() {
                s.stop();
            }
            let snap = gw.stats();
            assert!(
                snap.rejects.contains(&("version_mismatch", 2)),
                "reactor={reactor}: {:?}",
                snap.rejects
            );
            gw.drain();
        }
    }

    #[test]
    fn tcp_serves_concurrent_lockstep_clients() {
        let gw = relay_gateway();
        let mut server = TcpServer::bind(gw.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let acc = EventId::new("acc");
        let del = EventId::new("del");
        std::thread::scope(|scope| {
            for session in 0..4u64 {
                let codec = gw.codec().clone();
                scope.spawn(move || {
                    let mut conn = TcpConn::connect(addr).unwrap();
                    for _ in 0..20 {
                        let f = codec.event_frame(session, acc).unwrap();
                        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session });
                        let f = codec.event_frame(session, del).unwrap();
                        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session });
                    }
                    let close = Frame::Close { session };
                    assert_eq!(conn.call(&close).unwrap(), Reply::Accepted { session });
                });
            }
        });
        let snap = gw.stats();
        assert_eq!(snap.accepted, 4 * 40);
        assert_eq!(snap.convictions, 0);
        server.stop();
        gw.drain();
    }
}
