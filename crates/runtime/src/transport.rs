//! Wire transports: in-memory loopback and blocking TCP.
//!
//! Both sides speak the length-prefixed codec from [`crate::codec`].
//! [`LoopbackConn`] round-trips every frame and reply through the
//! encoder/decoder so in-process benchmarks exercise the real wire
//! format; [`TcpServer`]/[`TcpConn`] carry the same bytes over
//! `std::net` sockets. Clients are lockstep per connection (one
//! outstanding frame), which keeps reply matching trivial.

use crate::codec::{
    decode_frame, decode_reply, encode_frame, encode_reply, read_payload, write_frame, write_reply,
    Frame, FrameBuffer, Reply,
};
use crate::gateway::Gateway;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One side of a frame/reply conversation with a gateway.
pub trait Conn {
    /// Sends `frame` and blocks for its reply.
    fn call(&mut self, frame: &Frame) -> io::Result<Reply>;
}

/// In-process transport: encodes, decodes, and calls the gateway
/// directly — the wire format without the socket.
pub struct LoopbackConn {
    gateway: Gateway,
    buf: Vec<u8>,
}

impl LoopbackConn {
    /// A loopback connection onto `gateway`.
    pub fn new(gateway: Gateway) -> LoopbackConn {
        LoopbackConn {
            gateway,
            buf: Vec::with_capacity(32),
        }
    }
}

impl Conn for LoopbackConn {
    fn call(&mut self, frame: &Frame) -> io::Result<Reply> {
        self.buf.clear();
        encode_frame(frame, &mut self.buf);
        let decoded = decode_frame(&self.buf[4..])?;
        let reply = self.gateway.call(decoded);
        self.buf.clear();
        encode_reply(&reply, &mut self.buf);
        Ok(decode_reply(&self.buf[4..])?)
    }
}

/// Client side of the TCP transport.
pub struct TcpConn {
    stream: TcpStream,
}

impl TcpConn {
    /// Connects to a serving gateway at `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpConn { stream })
    }
}

impl Conn for TcpConn {
    fn call(&mut self, frame: &Frame) -> io::Result<Reply> {
        write_frame(&mut self.stream, frame)?;
        match read_payload(&mut self.stream)? {
            Some(payload) => Ok(decode_reply(&payload)?),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-call",
            )),
        }
    }
}

/// A running TCP acceptor in front of a gateway.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` and serves `gateway` until [`TcpServer::stop`].
    ///
    /// Each accepted connection gets a reader thread; replies are
    /// written back by gateway workers through a shared write half, so
    /// a slow client never blocks the acceptor.
    pub fn bind<A: ToSocketAddrs>(gateway: Gateway, addr: A) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let gateway = gateway.clone();
                        let stop = Arc::clone(&accept_stop);
                        conns.push(std::thread::spawn(move || {
                            let _ = serve_connection(&gateway, stream, &stop);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every connection thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads frames off one connection, submitting each to the gateway;
/// replies are written (in completion order — lockstep clients see
/// call order) through a mutex-shared clone of the stream.
///
/// Reads are batched: every socket wakeup pulls whatever bytes are
/// available into a [`FrameBuffer`] and submits *all* complete frames
/// it holds, so pipelined clients pay one read syscall — and one
/// worker scheduling round per session — for a whole burst of frames.
/// Partial frames stay buffered across reads; an EOF that strands one
/// is reported as a torn stream, never silently dropped.
fn serve_connection(gateway: &Gateway, stream: TcpStream, stop: &AtomicBool) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = stream;
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    while !stop.load(Ordering::Acquire) {
        let got = match reader.read(&mut chunk) {
            Ok(0) => {
                if frames.is_mid_message() {
                    return Err(frames.torn_error().into());
                }
                break; // clean EOF, between messages
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(e) => return Err(e),
        };
        frames.extend(&chunk[..got]);
        loop {
            match frames.next_frame() {
                Ok(Some(frame)) => {
                    let writer = Arc::clone(&writer);
                    gateway.submit(
                        frame,
                        Box::new(move |reply| {
                            let mut w = writer.lock().unwrap();
                            let _ = write_reply(&mut *w, &reply);
                        }),
                    );
                }
                Ok(None) => break,
                Err(e) => return Err(e.into()),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::RejectReason;
    use crate::gateway::GatewayConfig;
    use protoquot_spec::{EventId, Spec, SpecBuilder};

    fn relay_gateway() -> Gateway {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let implementation: Spec = b.build().unwrap();
        let mut b = SpecBuilder::new("service");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        let service = b.build().unwrap();
        Gateway::new(&[&implementation], &service, GatewayConfig::default()).unwrap()
    }

    #[test]
    fn loopback_round_trips_through_the_codec() {
        let gw = relay_gateway();
        let mut conn = LoopbackConn::new(gw.clone());
        let acc = gw.codec().event_frame(7, EventId::new("acc")).unwrap();
        assert_eq!(conn.call(&acc).unwrap(), Reply::Accepted { session: 7 });
        let bad = gw.codec().event_frame(7, EventId::new("acc")).unwrap();
        assert_eq!(
            conn.call(&bad).unwrap(),
            Reply::Rejected {
                session: 7,
                reason: RejectReason::NotATrace,
            }
        );
        gw.drain();
    }

    #[test]
    fn tcp_serves_concurrent_lockstep_clients() {
        let gw = relay_gateway();
        let mut server = TcpServer::bind(gw.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let acc = EventId::new("acc");
        let del = EventId::new("del");
        std::thread::scope(|scope| {
            for session in 0..4u64 {
                let codec = gw.codec().clone();
                scope.spawn(move || {
                    let mut conn = TcpConn::connect(addr).unwrap();
                    for _ in 0..20 {
                        let f = codec.event_frame(session, acc).unwrap();
                        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session });
                        let f = codec.event_frame(session, del).unwrap();
                        assert_eq!(conn.call(&f).unwrap(), Reply::Accepted { session });
                    }
                    let close = Frame::Close { session };
                    assert_eq!(conn.call(&close).unwrap(), Reply::Accepted { session });
                });
            }
        });
        let snap = gw.stats();
        assert_eq!(snap.accepted, 4 * 40);
        assert_eq!(snap.convictions, 0);
        server.stop();
        gw.drain();
    }
}
