//! Seeded load generator: replays fleet-style schedules over the wire.
//!
//! [`drive`] runs the same weighted random executions as the
//! `protoquot-sim` soak fleet — same [`derive_seed`] per run, same
//! fault biasing, same [`ServiceMonitor`]/[`ProgressWatchdog`]
//! machinery — but relays every *solo* (externally visible) event to a
//! serving gateway as a wire frame and records the verdicts coming
//! back. Each run is one session; worker threads claim run indices
//! from an atomic counter and the outcomes are re-sorted by run, so
//! the resulting [`DriveReport`] is identical at any client or server
//! thread count.
//!
//! Every run is executed by a resumable `SessionTask` state machine:
//! `advance(reply) -> Option<Frame>` hands the driver the next frame
//! to send and parks the task until that frame's reply arrives. Both
//! campaign shapes are thin loops over it —
//!
//! * [`drive`] (lockstep): one [`Conn`] per thread, one live task at a
//!   time, `call` per frame;
//! * [`drive_mux`] (multiplexed): one [`MuxTransport`] per thread
//!   carrying up to [`DriveConfig::sessions_per_conn`] concurrent
//!   tasks, frames batched per exchange and replies dispatched to
//!   tasks by the session id in their headers.
//!
//! Because the two paths share the per-session state machine verbatim
//! and each task keeps exactly one frame outstanding by default (so
//! per-session wire order is program order and the gateway's bounded
//! queues never push back), a mux campaign produces the *same* report
//! as a lockstep campaign over the same config — transports and
//! concurrency change the schedule of bytes, not the verdicts.
//! `tests/reactor_transport.rs` pins this byte-for-byte across
//! transports. [`DriveConfig::pipeline`] deepens the per-session
//! window (speculative accepts, see `PipelinedTask`) so the load
//! generator can saturate a batching server; reports stay
//! deterministic at any depth.
//!
//! When the local watchdog sees a deadlock or livelock, the client
//! *attests* a stall ([`crate::codec::Frame::Stall`]); the gateway
//! confirms or dismisses it against the compiled product. A faulty
//! converter therefore gets convicted either on a relayed frame
//! (safety) or on the attested stall (progress).

use crate::codec::{Frame, Reply, WireCodec};
use crate::transport::{Conn, MuxTransport};
use protoquot_sim::{
    derive_seed, Action, ExternalPolicy, FaultPlan, FaultState, MonitorVerdict, ProgressVerdict,
    ProgressWatchdog, Runner, ServiceMonitor, System,
};
use protoquot_spec::Spec;
use serde::Value;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of one drive campaign.
#[derive(Clone, Debug)]
pub struct DriveConfig {
    /// Sessions (independent runs) to drive.
    pub runs: u64,
    /// Client worker threads, each with its own connection.
    pub threads: usize,
    /// Campaign seed; run `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Step budget per run.
    pub max_steps: u64,
    /// Fault models biasing every run's schedule.
    pub faults: FaultPlan,
    /// Service-silent steps before the watchdog probes.
    pub quiescence_threshold: u64,
    /// Global states explored per watchdog probe.
    pub probe_budget: usize,
    /// Stop claiming new runs after this wall-clock budget (soak mode).
    pub duration: Option<Duration>,
    /// Concurrent sessions each connection multiplexes in
    /// [`drive_mux`] campaigns (total concurrency = `threads` × this).
    /// Ignored by the lockstep [`drive`] path.
    pub sessions_per_conn: u64,
    /// Outstanding frames each multiplexed session keeps in flight
    /// (clamped to at least 1; ignored by the lockstep [`drive`]
    /// path). Above 1 the driver *speculates*: it consumes an
    /// optimistic `Accepted` for each unanswered event frame and keeps
    /// sending, rolling the accounting back if the real reply turns
    /// out to be a rejection. Reports stay deterministic and
    /// thread/carrier-invariant at any depth, and runs that are never
    /// rejected (a clean converter) report identically to depth 1;
    /// rejected runs may legitimately count extra `frames_sent` for
    /// the frames that were already on the wire when the rejection
    /// landed.
    pub pipeline: u64,
}

impl Default for DriveConfig {
    fn default() -> DriveConfig {
        DriveConfig {
            runs: 100,
            threads: 1,
            seed: 0xD41E,
            max_steps: 600,
            faults: FaultPlan::none(),
            quiescence_threshold: 64,
            probe_budget: 20_000,
            duration: None,
            sessions_per_conn: 1,
            pipeline: 1,
        }
    }
}

/// What happened to one driven session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Run index (= wire session id).
    pub run: u64,
    /// Simulator steps executed (internal moves included).
    pub steps: u64,
    /// Event frames relayed to the gateway.
    pub frames_sent: u64,
    /// Frames the gateway accepted.
    pub accepted: u64,
    /// Whether the client attested a stall.
    pub stall_attested: bool,
    /// Server-side conviction (reject reason name), if any. Only
    /// reasons where [`crate::codec::RejectReason::is_conviction`]
    /// holds — verdicts against the converter — land here.
    pub conviction: Option<String>,
    /// Operational rejection (reject reason name), if any: the server
    /// refused the session for resource/overload reasons
    /// (`resource_limit`, `overloaded`, …) without judging the
    /// converter. The run still stops, but it is not a conviction.
    pub rejected: Option<String>,
    /// What the local monitor/watchdog concluded.
    pub local_verdict: &'static str,
    /// Transport failure, if the run died on I/O.
    pub io_error: Option<String>,
}

/// Aggregated result of a drive campaign.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Runs driven.
    pub runs: u64,
    /// Total event frames relayed.
    pub frames_sent: u64,
    /// Total frames accepted by the gateway.
    pub accepted: u64,
    /// Runs that ended with a server-side conviction.
    pub convicted_runs: u64,
    /// Runs ended by an operational rejection (not a conviction).
    pub rejected_runs: u64,
    /// Stall attestations sent.
    pub stalls_attested: u64,
    /// Runs that died on transport errors.
    pub io_errors: u64,
    /// Per-run outcomes, sorted by run index.
    pub outcomes: Vec<RunOutcome>,
}

impl DriveReport {
    /// No convictions, no operational rejections, and no transport
    /// failures.
    pub fn is_clean(&self) -> bool {
        self.convicted_runs == 0 && self.rejected_runs == 0 && self.io_errors == 0
    }

    /// The report as a JSON value tree (thread-count invariant).
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("runs".into(), Value::Int(self.runs as i128));
        o.insert("frames_sent".into(), Value::Int(self.frames_sent as i128));
        o.insert("accepted".into(), Value::Int(self.accepted as i128));
        o.insert(
            "convicted_runs".into(),
            Value::Int(self.convicted_runs as i128),
        );
        o.insert(
            "rejected_runs".into(),
            Value::Int(self.rejected_runs as i128),
        );
        o.insert(
            "stalls_attested".into(),
            Value::Int(self.stalls_attested as i128),
        );
        o.insert("io_errors".into(), Value::Int(self.io_errors as i128));
        o.insert(
            "outcomes".into(),
            Value::Arr(self.outcomes.iter().map(RunOutcome::to_value).collect()),
        );
        Value::Obj(o)
    }

    /// The report as a compact JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("report serialization cannot fail")
    }
}

impl RunOutcome {
    /// One outcome as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("run".into(), Value::Int(self.run as i128));
        o.insert("steps".into(), Value::Int(self.steps as i128));
        o.insert("frames_sent".into(), Value::Int(self.frames_sent as i128));
        o.insert("accepted".into(), Value::Int(self.accepted as i128));
        o.insert("stall_attested".into(), Value::Bool(self.stall_attested));
        o.insert(
            "conviction".into(),
            match &self.conviction {
                Some(c) => Value::Str(c.clone()),
                None => Value::Null,
            },
        );
        o.insert(
            "rejected".into(),
            match &self.rejected {
                Some(r) => Value::Str(r.clone()),
                None => Value::Null,
            },
        );
        o.insert(
            "local_verdict".into(),
            Value::Str(self.local_verdict.to_string()),
        );
        o.insert(
            "io_error".into(),
            match &self.io_error {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        );
        Value::Obj(o)
    }
}

impl std::fmt::Display for DriveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runs {} | frames {} accepted {} | convicted {} | rejected {} | stalls attested {} | io errors {}",
            self.runs,
            self.frames_sent,
            self.accepted,
            self.convicted_runs,
            self.rejected_runs,
            self.stalls_attested,
            self.io_errors
        )
    }
}

/// Drives `cfg.runs` sessions of `components` (including the converter)
/// against a gateway reached through `mk_conn`, monitoring each run
/// locally against `service`.
pub fn drive<F>(components: &[Spec], service: &Spec, cfg: &DriveConfig, mk_conn: F) -> DriveReport
where
    F: Fn() -> io::Result<Box<dyn Conn>> + Sync,
{
    let codec = match WireCodec::new(service.alphabet()) {
        Ok(c) => c,
        Err(e) => {
            // The service alphabet cannot be carried on the wire at
            // all; report it as a failed run instead of panicking.
            let mut o = empty_outcome(0);
            o.io_error = Some(e.to_string());
            return report_from(vec![o]);
        }
    };
    let next = AtomicU64::new(0);
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let outcomes: Mutex<Vec<RunOutcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| {
                let mut conn: Option<Box<dyn Conn>> = None;
                loop {
                    let run = next.fetch_add(1, Ordering::Relaxed);
                    if run >= cfg.runs {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            break;
                        }
                    }
                    if conn.is_none() {
                        conn = match mk_conn() {
                            Ok(c) => Some(c),
                            Err(e) => {
                                let mut o = empty_outcome(run);
                                o.io_error = Some(e.to_string());
                                // Recover the list even if a sibling
                                // driver thread panicked: losing the
                                // partial outcomes would only mask the
                                // original failure.
                                outcomes.lock().unwrap_or_else(|p| p.into_inner()).push(o);
                                continue;
                            }
                        };
                    }
                    let out = run_one(
                        components,
                        service,
                        &codec,
                        conn.as_deref_mut().unwrap(),
                        cfg,
                        run,
                    );
                    if out.io_error.is_some() {
                        conn = None; // reconnect for the next run
                    }
                    outcomes.lock().unwrap_or_else(|p| p.into_inner()).push(out);
                }
            });
        }
    });
    let outcomes = outcomes.into_inner().unwrap_or_else(|p| p.into_inner());
    report_from(outcomes)
}

fn empty_outcome(run: u64) -> RunOutcome {
    RunOutcome {
        run,
        steps: 0,
        frames_sent: 0,
        accepted: 0,
        stall_attested: false,
        conviction: None,
        rejected: None,
        local_verdict: "conforming",
        io_error: None,
    }
}

/// Which frame a parked [`SessionTask`] is waiting on.
enum Pending {
    Event,
    Stall,
    Close,
}

/// One driven session as a resumable state machine.
///
/// [`SessionTask::advance`] consumes the reply to the previously
/// returned frame (if any), runs the fleet-style execution forward,
/// and returns the next frame to put on the wire — or `None` when the
/// run is finished and [`SessionTask::into_outcome`] may be taken.
/// The lockstep and multiplexed campaign drivers differ only in how
/// they schedule these frames onto connections; the run semantics —
/// and therefore the [`RunOutcome`] for a given config and run index —
/// live entirely here.
struct SessionTask<'a> {
    cfg: &'a DriveConfig,
    codec: &'a WireCodec,
    runner: Runner,
    monitor: ServiceMonitor,
    watchdog: ProgressWatchdog,
    fault: FaultState,
    session: u64,
    out: RunOutcome,
    pending: Option<Pending>,
    /// Action whose post-reply bookkeeping (`watchdog.note`, verdict
    /// checks) still has to run once the in-flight reply arrives.
    tail_action: Option<Action>,
    done: bool,
}

impl<'a> SessionTask<'a> {
    fn new(
        components: &[Spec],
        service: &Spec,
        codec: &'a WireCodec,
        cfg: &'a DriveConfig,
        run: u64,
    ) -> SessionTask<'a> {
        let seed = derive_seed(cfg.seed, run);
        let system = System::new(components.to_vec(), ExternalPolicy::AlwaysEnabled);
        SessionTask {
            cfg,
            codec,
            runner: Runner::new(system, seed),
            monitor: ServiceMonitor::new(service),
            watchdog: ProgressWatchdog::new(cfg.quiescence_threshold, cfg.probe_budget),
            fault: cfg.faults.start(seed),
            session: run,
            out: empty_outcome(run),
            pending: None,
            tail_action: None,
            done: false,
        }
    }

    /// Feeds the reply to the last returned frame (`None` only on the
    /// first call) and returns the next frame to send, or `None` when
    /// the run is complete.
    fn advance(&mut self, reply: Option<Reply>) -> Option<Frame> {
        if self.done {
            return None;
        }
        match self.pending.take() {
            None => {}
            Some(Pending::Event) => {
                match reply {
                    Some(Reply::Accepted { .. }) => self.out.accepted += 1,
                    Some(Reply::Rejected { reason, .. }) => self.record_reject(reason),
                    // Connection-plane; never answers an event frame.
                    Some(Reply::HelloAck { .. }) => {}
                    None => return self.finish(),
                }
                let stop = self.out.conviction.is_some() || self.out.rejected.is_some();
                if let Some(frame) = self.tail(stop) {
                    return Some(frame);
                }
                if self.done {
                    return None;
                }
            }
            Some(Pending::Stall) => {
                match reply {
                    Some(Reply::Accepted { .. }) | Some(Reply::HelloAck { .. }) => {}
                    Some(Reply::Rejected { reason, .. }) => self.record_reject(reason),
                    None => {}
                }
                // An attested stall always ends the run, confirmed or
                // dismissed.
                return self.finish();
            }
            Some(Pending::Close) => {
                self.done = true;
                return None;
            }
        }
        self.step_loop()
    }

    /// The connection died while this task's frame was in flight.
    /// Terminal: records the error exactly as the lockstep path does —
    /// including running the event tail's safety check, and ignoring
    /// errors on the final `Close`.
    fn fail(&mut self, e: &io::Error) {
        if self.done {
            return;
        }
        match self.pending.take() {
            Some(Pending::Event) => {
                self.out.io_error = Some(e.to_string());
                let _ = self.tail(true);
            }
            Some(Pending::Stall) => {
                self.out.io_error = Some(e.to_string());
                let _ = self.finish();
            }
            // A failed Close is ignored (the run already concluded).
            Some(Pending::Close) | None => {}
        }
        self.done = true;
    }

    fn into_outcome(self) -> RunOutcome {
        self.out
    }

    /// Runs the execution until a frame must cross the wire.
    fn step_loop(&mut self) -> Option<Frame> {
        loop {
            if self.runner.steps() >= self.cfg.max_steps {
                return self.finish();
            }
            let fault = &mut self.fault;
            let Some(action) = self.runner.step_weighted(|a, base| fault.weigh(a, base)) else {
                self.out.local_verdict = "deadlock";
                return self.attest();
            };
            self.fault.note(&action);
            if let Action::Event { event, .. } = &action {
                self.monitor.observe(*event);
                // Solo events are the composite interface: relay them.
                if let Some(frame) = self.codec.event_frame(self.session, *event) {
                    self.out.frames_sent += 1;
                    self.tail_action = Some(action);
                    self.pending = Some(Pending::Event);
                    return Some(frame);
                }
            }
            self.tail_action = Some(action);
            if let Some(frame) = self.tail(false) {
                return Some(frame);
            }
            if self.done {
                return None;
            }
        }
    }

    /// Post-action bookkeeping: watchdog note, safety verdict, and —
    /// unless the run is already stopping — the progress probe. Returns
    /// a frame (stall attestation or close) when one must be sent.
    fn tail(&mut self, mut stop: bool) -> Option<Frame> {
        let action = self
            .tail_action
            .take()
            .expect("tail runs once per recorded action");
        self.watchdog.note(&action, &self.monitor);
        if matches!(
            self.monitor.verdict(),
            MonitorVerdict::SafetyViolation { .. }
        ) {
            self.out.local_verdict = "safety";
            stop = true;
        } else if !stop {
            match self
                .watchdog
                .poll(self.runner.system(), self.runner.states(), &self.monitor)
            {
                ProgressVerdict::Livelock { .. } => {
                    self.out.local_verdict = "livelock";
                    return self.attest();
                }
                ProgressVerdict::Deadlock { .. } => {
                    self.out.local_verdict = "deadlock";
                    return self.attest();
                }
                ProgressVerdict::Progressing => {}
            }
        }
        if stop {
            return self.finish();
        }
        None
    }

    /// Classifies a server rejection: guard verdicts are convictions,
    /// everything else (resource limits, overload, closed sessions) is
    /// an operational rejection. Either way the run stops.
    fn record_reject(&mut self, reason: crate::codec::RejectReason) {
        let name = reason.name().to_string();
        if reason.is_conviction() {
            self.out.conviction = Some(name);
        } else {
            self.out.rejected = Some(name);
        }
    }

    /// Sends a stall attestation; a `Stalled` rejection is a
    /// conviction.
    fn attest(&mut self) -> Option<Frame> {
        if self.out.conviction.is_some()
            || self.out.rejected.is_some()
            || self.out.io_error.is_some()
        {
            return self.finish();
        }
        self.out.stall_attested = true;
        self.pending = Some(Pending::Stall);
        Some(Frame::Stall {
            session: self.session,
        })
    }

    /// Ends the execution: fixes the step count and sends the final
    /// `Close` unless the transport already failed.
    fn finish(&mut self) -> Option<Frame> {
        self.out.steps = self.runner.steps();
        if self.out.io_error.is_some() {
            self.done = true;
            return None;
        }
        self.pending = Some(Pending::Close);
        Some(Frame::Close {
            session: self.session,
        })
    }
}

/// A [`SessionTask`] with up to [`DriveConfig::pipeline`] frames in
/// flight at once, used by [`drive_mux`] to saturate a batching
/// server.
///
/// The underlying state machine consumes exactly one reply per frame,
/// so pipelining works by *speculation*: while the next frame to send
/// would be an event, the wrapper feeds the task an optimistic
/// `Accepted` and queues the next frame immediately, counting how many
/// optimistic replies are unconfirmed. Real replies arrive in
/// per-session order, so each `Accepted` confirms the oldest
/// speculation. A real rejection means the run actually ended at that
/// frame: the wrapper rolls back the unconfirmed accepts, records the
/// rejection, seals the session with a `Close`, and discards the
/// replies of the frames that were already on the wire. Stall
/// attestations and closes are never speculated past — their replies
/// change control flow — so a parked task drains its window first.
///
/// Everything here is a deterministic function of the reply sequence,
/// which is itself deterministic per session, so campaign reports stay
/// thread- and carrier-invariant at any depth; at depth 1 no
/// speculation ever happens and the behavior is exactly the classic
/// one-outstanding-frame loop.
struct PipelinedTask<'a> {
    task: SessionTask<'a>,
    /// Frame window (≥ 1).
    depth: u64,
    /// Frames on the wire without a real reply yet.
    in_flight: u64,
    /// Optimistic `Accepted`s consumed but not yet confirmed.
    speculated: u64,
    /// A rejection landed mid-window: the run is over, remaining
    /// in-flight replies (including the sealing `Close`) are drained
    /// and discarded.
    draining: bool,
}

impl<'a> PipelinedTask<'a> {
    fn new(task: SessionTask<'a>, depth: u64) -> PipelinedTask<'a> {
        PipelinedTask {
            task,
            depth: depth.max(1),
            in_flight: 0,
            speculated: 0,
            draining: false,
        }
    }

    /// Tops the window up: queues frames until the depth is reached,
    /// the task parks on a reply it cannot speculate past (stall or
    /// close), or the run ends.
    fn fill(&mut self, conn: &mut dyn MuxTransport) -> io::Result<()> {
        while !self.draining && !self.task.done && self.in_flight < self.depth {
            let frame =
                if self.in_flight == 0 && self.speculated == 0 && self.task.pending.is_none() {
                    self.task.advance(None)
                } else if matches!(self.task.pending, Some(Pending::Event)) {
                    self.speculated += 1;
                    self.task.advance(Some(Reply::Accepted {
                        session: self.task.session,
                    }))
                } else {
                    // Parked on a stall or close reply, or waiting for the
                    // window's tail reply at depth 1.
                    return Ok(());
                };
            match frame {
                Some(frame) => {
                    conn.queue(&frame)?;
                    self.in_flight += 1;
                }
                None => return Ok(()),
            }
        }
        Ok(())
    }

    /// Consumes one real reply (always for the oldest in-flight frame:
    /// per-session reply order is wire order) and refills the window.
    fn on_reply(&mut self, reply: Reply, conn: &mut dyn MuxTransport) -> io::Result<()> {
        self.in_flight -= 1;
        if self.draining {
            return Ok(());
        }
        if self.speculated > 0 {
            // The oldest in-flight frame was an event we already
            // answered optimistically.
            match reply {
                Reply::Accepted { .. } => self.speculated -= 1,
                // Connection-plane; never answers an event frame.
                Reply::HelloAck { .. } => {}
                Reply::Rejected { reason, .. } => {
                    // Speculation was wrong: the run ended here. Roll
                    // back the unconfirmed accepts, record the verdict
                    // with the step count as of now, and seal the
                    // session the way `finish` would.
                    self.task.out.accepted -= self.speculated;
                    self.speculated = 0;
                    self.task.record_reject(reason);
                    self.task.out.steps = self.task.runner.steps();
                    self.task.pending = None;
                    self.task.tail_action = None;
                    self.draining = true;
                    conn.queue(&Frame::Close {
                        session: self.task.session,
                    })?;
                    self.in_flight += 1;
                    return Ok(());
                }
            }
        } else if let Some(frame) = self.task.advance(Some(reply)) {
            conn.queue(&frame)?;
            self.in_flight += 1;
        }
        self.fill(conn)
    }

    /// Whether the run is over and every in-flight reply is accounted
    /// for — only then may the outcome be taken.
    fn complete(&self) -> bool {
        self.in_flight == 0 && (self.task.done || self.draining)
    }

    /// The connection died. Unconfirmed speculative accepts are rolled
    /// back before the terminal bookkeeping so the outcome never
    /// counts an accept the server was not seen to grant.
    fn fail(&mut self, e: &io::Error) {
        self.task.out.accepted -= self.speculated;
        self.speculated = 0;
        if !self.draining {
            self.task.fail(e);
        }
        self.task.done = true;
    }

    fn into_outcome(self) -> RunOutcome {
        self.task.into_outcome()
    }
}

/// One session over a lockstep connection: drive the [`SessionTask`]
/// frame by frame, each `call` blocking for its reply.
fn run_one(
    components: &[Spec],
    service: &Spec,
    codec: &WireCodec,
    conn: &mut dyn Conn,
    cfg: &DriveConfig,
    run: u64,
) -> RunOutcome {
    let mut task = SessionTask::new(components, service, codec, cfg, run);
    let mut next = task.advance(None);
    while let Some(frame) = next {
        match conn.call(&frame) {
            Ok(reply) => next = task.advance(Some(reply)),
            Err(e) => {
                task.fail(&e);
                break;
            }
        }
    }
    task.into_outcome()
}

/// Drives `cfg.runs` sessions multiplexed over [`MuxTransport`]
/// connections: each of `cfg.threads` worker threads keeps up to
/// [`DriveConfig::sessions_per_conn`] concurrent `PipelinedTask`s
/// live on one connection, batching their frames per exchange and
/// routing each reply to the task its session id names.
///
/// At the default [`DriveConfig::pipeline`] of 1 every task holds at
/// most one outstanding frame, so per-session wire order equals
/// program order and the report matches a lockstep [`drive`] campaign
/// over the same config, field for field. Deeper pipelines keep up to
/// that many frames in flight per session (see `PipelinedTask`);
/// reports stay deterministic, and runs the server never rejects are
/// still identical to depth 1.
pub fn drive_mux<F>(
    components: &[Spec],
    service: &Spec,
    cfg: &DriveConfig,
    mk_conn: F,
) -> DriveReport
where
    F: Fn() -> io::Result<Box<dyn MuxTransport>> + Sync,
{
    let codec = match WireCodec::new(service.alphabet()) {
        Ok(c) => c,
        Err(e) => {
            let mut o = empty_outcome(0);
            o.io_error = Some(e.to_string());
            return report_from(vec![o]);
        }
    };
    let next = AtomicU64::new(0);
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let outcomes: Mutex<Vec<RunOutcome>> = Mutex::new(Vec::new());
    let per_conn = cfg.sessions_per_conn.max(1) as usize;
    let depth = cfg.pipeline.max(1);
    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| {
                let mut conn: Option<Box<dyn MuxTransport>> = None;
                let mut tasks: HashMap<u64, PipelinedTask> = HashMap::new();
                let mut replies: Vec<Reply> = Vec::new();
                let mut exhausted = false;
                let push = |out: RunOutcome| {
                    outcomes.lock().unwrap_or_else(|p| p.into_inner()).push(out);
                };
                loop {
                    // Refill the task set up to the per-connection cap.
                    while !exhausted && tasks.len() < per_conn {
                        let run = next.fetch_add(1, Ordering::Relaxed);
                        if run >= cfg.runs {
                            exhausted = true;
                            break;
                        }
                        if let Some(deadline) = deadline {
                            if Instant::now() >= deadline {
                                exhausted = true;
                                break;
                            }
                        }
                        if conn.is_none() {
                            conn = match mk_conn() {
                                Ok(c) => Some(c),
                                Err(e) => {
                                    let mut o = empty_outcome(run);
                                    o.io_error = Some(e.to_string());
                                    push(o);
                                    continue;
                                }
                            };
                        }
                        let task = SessionTask::new(components, service, &codec, cfg, run);
                        let mut task = PipelinedTask::new(task, depth);
                        match task.fill(conn.as_mut().unwrap().as_mut()) {
                            Ok(()) => {
                                if task.complete() {
                                    push(task.into_outcome());
                                } else {
                                    tasks.insert(run, task);
                                }
                            }
                            Err(e) => {
                                task.fail(&e);
                                push(task.into_outcome());
                            }
                        }
                    }
                    if tasks.is_empty() {
                        if exhausted {
                            break;
                        }
                        continue;
                    }
                    // Flush queued frames and wait for replies.
                    let c = conn.as_mut().expect("live tasks imply a connection");
                    match c.exchange(true, &mut replies) {
                        Ok(()) => {
                            let mut failed = None;
                            for reply in replies.drain(..) {
                                let session = reply.session();
                                let Some(mut task) = tasks.remove(&session) else {
                                    continue; // reply for an already-failed task
                                };
                                match task.on_reply(reply, conn.as_mut().unwrap().as_mut()) {
                                    Ok(()) => {
                                        if task.complete() {
                                            push(task.into_outcome());
                                        } else {
                                            tasks.insert(session, task);
                                        }
                                    }
                                    Err(e) => {
                                        task.fail(&e);
                                        push(task.into_outcome());
                                        failed = Some(e);
                                    }
                                }
                            }
                            if let Some(e) = failed {
                                fail_all(&mut tasks, &e, &push);
                                conn = None;
                            }
                        }
                        Err(e) => {
                            // The connection died: every in-flight task
                            // on it records the transport error, and the
                            // next refill reconnects.
                            fail_all(&mut tasks, &e, &push);
                            conn = None;
                        }
                    }
                }
            });
        }
    });
    let outcomes = outcomes.into_inner().unwrap_or_else(|p| p.into_inner());
    report_from(outcomes)
}

/// Terminally fails every in-flight task with `e`.
fn fail_all<F: Fn(RunOutcome)>(tasks: &mut HashMap<u64, PipelinedTask>, e: &io::Error, push: &F) {
    for (_, mut task) in tasks.drain() {
        task.fail(e);
        push(task.into_outcome());
    }
}

/// Sorts outcomes by run and aggregates the campaign totals.
fn report_from(mut outcomes: Vec<RunOutcome>) -> DriveReport {
    outcomes.sort_by_key(|o| o.run);
    DriveReport {
        runs: outcomes.len() as u64,
        frames_sent: outcomes.iter().map(|o| o.frames_sent).sum(),
        accepted: outcomes.iter().map(|o| o.accepted).sum(),
        convicted_runs: outcomes.iter().filter(|o| o.conviction.is_some()).count() as u64,
        rejected_runs: outcomes.iter().filter(|o| o.rejected.is_some()).count() as u64,
        stalls_attested: outcomes.iter().filter(|o| o.stall_attested).count() as u64,
        io_errors: outcomes.iter().filter(|o| o.io_error.is_some()).count() as u64,
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{Gateway, GatewayConfig};
    use crate::transport::{LoopbackConn, LoopbackMux};
    use protoquot_core::solve;
    use protoquot_protocols::{colocated_configuration, exactly_once};
    use protoquot_sim::redirect_transition;

    fn gateway(components: &[Spec], service: &Spec) -> Gateway {
        let parts: Vec<&Spec> = components.iter().collect();
        Gateway::new(&parts, service, GatewayConfig::default())
            .expect("gateway must compile the system")
    }

    fn cfg(sessions_per_conn: u64, threads: usize) -> DriveConfig {
        DriveConfig {
            runs: 48,
            threads,
            seed: 0xBEEF_CAFE,
            max_steps: 400,
            faults: FaultPlan::parse("loss,reorder").unwrap(),
            sessions_per_conn,
            ..DriveConfig::default()
        }
    }

    /// A multiplexed campaign must reproduce the lockstep campaign's
    /// report byte for byte — same accepts, same convictions, same
    /// stall attestations — for a clean derived converter and for a
    /// convicted mutant alike, at several concurrency shapes.
    #[test]
    fn mux_campaigns_match_lockstep_campaigns() {
        let system = colocated_configuration();
        let service = exactly_once();
        let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
        let mutant = (0..8)
            .find_map(|k| redirect_transition(&q.converter, k))
            .expect("converter has transitions to mutate");
        for (label, converter) in [("derived", &q.converter), ("mutant", &mutant)] {
            let components = [system.b.clone(), converter.clone()];
            let gw = gateway(&components, &service);
            let lockstep = drive(&components, &service, &cfg(1, 1), || {
                Ok(Box::new(LoopbackConn::new(gw.clone())) as Box<dyn Conn>)
            });
            for (sessions, threads) in [(1u64, 1usize), (8, 1), (16, 2)] {
                let gw = gateway(&components, &service);
                let mux = drive_mux(&components, &service, &cfg(sessions, threads), || {
                    Ok(Box::new(LoopbackMux::new(gw.clone())) as Box<dyn MuxTransport>)
                });
                assert_eq!(
                    lockstep.to_json(),
                    mux.to_json(),
                    "{label}: mux report diverges at {sessions} sessions/conn × {threads} threads"
                );
            }
            if label == "mutant" {
                assert!(
                    lockstep.convicted_runs > 0,
                    "mutant campaign saw no convictions"
                );
            } else {
                assert!(lockstep.is_clean(), "derived converter was convicted");
                assert!(lockstep.accepted > 0, "derived campaign relayed nothing");
            }
        }
    }

    /// Pipelined campaigns: a converter the server never rejects
    /// produces a report byte-identical to lockstep at any depth (all
    /// speculation confirms), and a convicted mutant — where
    /// speculation rolls back — still reports identically across
    /// thread counts and depths-of-window (determinism), with the same
    /// set of convicted runs as depth 1.
    #[test]
    fn pipelined_campaigns_stay_deterministic() {
        let system = colocated_configuration();
        let service = exactly_once();
        let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
        let mutant = (0..8)
            .find_map(|k| redirect_transition(&q.converter, k))
            .expect("converter has transitions to mutate");
        let piped = |components: &[Spec], threads: usize, pipeline: u64| {
            let gw = gateway(components, &service);
            let mut c = cfg(8, threads);
            c.pipeline = pipeline;
            drive_mux(components, &service, &c, || {
                Ok(Box::new(LoopbackMux::new(gw.clone())) as Box<dyn MuxTransport>)
            })
        };
        let derived = [system.b.clone(), q.converter.clone()];
        let gw = gateway(&derived, &service);
        let lockstep = drive(&derived, &service, &cfg(1, 1), || {
            Ok(Box::new(LoopbackConn::new(gw.clone())) as Box<dyn Conn>)
        });
        assert!(lockstep.is_clean(), "derived converter was convicted");
        for pipeline in [2, 4, 16] {
            assert_eq!(
                lockstep.to_json(),
                piped(&derived, 1, pipeline).to_json(),
                "clean pipelined campaign diverged at depth {pipeline}"
            );
        }
        let mutated = [system.b.clone(), mutant.clone()];
        let one = piped(&mutated, 1, 4);
        assert!(one.convicted_runs > 0, "mutant campaign saw no convictions");
        assert_eq!(
            one.to_json(),
            piped(&mutated, 2, 4).to_json(),
            "pipelined mutant report depends on thread count"
        );
        // Speculation may widen frames_sent on rejected runs, but the
        // verdicts must match the classic window exactly.
        let classic = piped(&mutated, 1, 1);
        let convicted = |r: &DriveReport| {
            r.outcomes
                .iter()
                .map(|o| (o.run, o.conviction.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(convicted(&one), convicted(&classic));
    }

    /// A mux connection that dies mid-campaign records transport errors
    /// for the in-flight sessions and the campaign still accounts for
    /// every run.
    #[test]
    fn mux_campaign_survives_connection_failures() {
        struct FailingMux {
            calls: u64,
        }
        impl MuxTransport for FailingMux {
            fn queue(&mut self, _frame: &Frame) -> io::Result<()> {
                Ok(())
            }
            fn exchange(&mut self, _wait: bool, _replies: &mut Vec<Reply>) -> io::Result<()> {
                self.calls += 1;
                Err(io::Error::other("wire snapped"))
            }
        }
        let system = colocated_configuration();
        let service = exactly_once();
        let q = solve(&system.b, &service, &system.int).expect("colocated converter derives");
        let components = [system.b.clone(), q.converter.clone()];
        let report = drive_mux(&components, &service, &cfg(4, 1), || {
            Ok(Box::new(FailingMux { calls: 0 }) as Box<dyn MuxTransport>)
        });
        assert_eq!(report.runs, 48, "every claimed run must be accounted for");
        assert!(report.io_errors > 0, "the snapped wire left no trace");
        for o in &report.outcomes {
            assert!(
                o.io_error.is_some(),
                "run {} completed over a wire that always fails",
                o.run
            );
        }
    }
}
