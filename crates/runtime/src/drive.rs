//! Seeded load generator: replays fleet-style schedules over the wire.
//!
//! [`drive`] runs the same weighted random executions as the
//! `protoquot-sim` soak fleet — same [`derive_seed`] per run, same
//! fault biasing, same [`ServiceMonitor`]/[`ProgressWatchdog`]
//! machinery — but relays every *solo* (externally visible) event to a
//! serving gateway as a wire frame and records the verdicts coming
//! back. Each run is one session, driven in lockstep (one outstanding
//! frame), so the resulting [`DriveReport`] is identical at any client
//! or server thread count: worker threads claim run indices from an
//! atomic counter and the outcomes are re-sorted by run.
//!
//! When the local watchdog sees a deadlock or livelock, the client
//! *attests* a stall ([`crate::codec::Frame::Stall`]); the gateway
//! confirms or dismisses it against the compiled product. A faulty
//! converter therefore gets convicted either on a relayed frame
//! (safety) or on the attested stall (progress).

use crate::codec::{Frame, Reply, WireCodec};
use crate::transport::Conn;
use protoquot_sim::{
    derive_seed, Action, ExternalPolicy, FaultPlan, MonitorVerdict, ProgressVerdict,
    ProgressWatchdog, Runner, ServiceMonitor, System,
};
use protoquot_spec::Spec;
use serde::Value;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of one drive campaign.
#[derive(Clone, Debug)]
pub struct DriveConfig {
    /// Sessions (independent runs) to drive.
    pub runs: u64,
    /// Client worker threads, each with its own connection.
    pub threads: usize,
    /// Campaign seed; run `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Step budget per run.
    pub max_steps: u64,
    /// Fault models biasing every run's schedule.
    pub faults: FaultPlan,
    /// Service-silent steps before the watchdog probes.
    pub quiescence_threshold: u64,
    /// Global states explored per watchdog probe.
    pub probe_budget: usize,
    /// Stop claiming new runs after this wall-clock budget (soak mode).
    pub duration: Option<Duration>,
}

impl Default for DriveConfig {
    fn default() -> DriveConfig {
        DriveConfig {
            runs: 100,
            threads: 1,
            seed: 0xD41E,
            max_steps: 600,
            faults: FaultPlan::none(),
            quiescence_threshold: 64,
            probe_budget: 20_000,
            duration: None,
        }
    }
}

/// What happened to one driven session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Run index (= wire session id).
    pub run: u64,
    /// Simulator steps executed (internal moves included).
    pub steps: u64,
    /// Event frames relayed to the gateway.
    pub frames_sent: u64,
    /// Frames the gateway accepted.
    pub accepted: u64,
    /// Whether the client attested a stall.
    pub stall_attested: bool,
    /// Server-side conviction (reject reason name), if any.
    pub conviction: Option<String>,
    /// What the local monitor/watchdog concluded.
    pub local_verdict: &'static str,
    /// Transport failure, if the run died on I/O.
    pub io_error: Option<String>,
}

/// Aggregated result of a drive campaign.
#[derive(Clone, Debug)]
pub struct DriveReport {
    /// Runs driven.
    pub runs: u64,
    /// Total event frames relayed.
    pub frames_sent: u64,
    /// Total frames accepted by the gateway.
    pub accepted: u64,
    /// Runs that ended with a server-side conviction.
    pub convicted_runs: u64,
    /// Stall attestations sent.
    pub stalls_attested: u64,
    /// Runs that died on transport errors.
    pub io_errors: u64,
    /// Per-run outcomes, sorted by run index.
    pub outcomes: Vec<RunOutcome>,
}

impl DriveReport {
    /// No convictions and no transport failures.
    pub fn is_clean(&self) -> bool {
        self.convicted_runs == 0 && self.io_errors == 0
    }

    /// The report as a JSON value tree (thread-count invariant).
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("runs".into(), Value::Int(self.runs as i128));
        o.insert("frames_sent".into(), Value::Int(self.frames_sent as i128));
        o.insert("accepted".into(), Value::Int(self.accepted as i128));
        o.insert(
            "convicted_runs".into(),
            Value::Int(self.convicted_runs as i128),
        );
        o.insert(
            "stalls_attested".into(),
            Value::Int(self.stalls_attested as i128),
        );
        o.insert("io_errors".into(), Value::Int(self.io_errors as i128));
        o.insert(
            "outcomes".into(),
            Value::Arr(self.outcomes.iter().map(RunOutcome::to_value).collect()),
        );
        Value::Obj(o)
    }

    /// The report as a compact JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("report serialization cannot fail")
    }
}

impl RunOutcome {
    /// One outcome as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("run".into(), Value::Int(self.run as i128));
        o.insert("steps".into(), Value::Int(self.steps as i128));
        o.insert("frames_sent".into(), Value::Int(self.frames_sent as i128));
        o.insert("accepted".into(), Value::Int(self.accepted as i128));
        o.insert("stall_attested".into(), Value::Bool(self.stall_attested));
        o.insert(
            "conviction".into(),
            match &self.conviction {
                Some(c) => Value::Str(c.clone()),
                None => Value::Null,
            },
        );
        o.insert(
            "local_verdict".into(),
            Value::Str(self.local_verdict.to_string()),
        );
        o.insert(
            "io_error".into(),
            match &self.io_error {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        );
        Value::Obj(o)
    }
}

impl std::fmt::Display for DriveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runs {} | frames {} accepted {} | convicted {} | stalls attested {} | io errors {}",
            self.runs,
            self.frames_sent,
            self.accepted,
            self.convicted_runs,
            self.stalls_attested,
            self.io_errors
        )
    }
}

/// Drives `cfg.runs` sessions of `components` (including the converter)
/// against a gateway reached through `mk_conn`, monitoring each run
/// locally against `service`.
pub fn drive<F>(components: &[Spec], service: &Spec, cfg: &DriveConfig, mk_conn: F) -> DriveReport
where
    F: Fn() -> io::Result<Box<dyn Conn>> + Sync,
{
    let codec = match WireCodec::new(service.alphabet()) {
        Ok(c) => c,
        Err(e) => {
            // The service alphabet cannot be carried on the wire at
            // all; report it as a failed run instead of panicking.
            let mut o = empty_outcome(0);
            o.io_error = Some(e.to_string());
            return DriveReport {
                runs: 1,
                frames_sent: 0,
                accepted: 0,
                convicted_runs: 0,
                stalls_attested: 0,
                io_errors: 1,
                outcomes: vec![o],
            };
        }
    };
    let next = AtomicU64::new(0);
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let outcomes: Mutex<Vec<RunOutcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| {
                let mut conn: Option<Box<dyn Conn>> = None;
                loop {
                    let run = next.fetch_add(1, Ordering::Relaxed);
                    if run >= cfg.runs {
                        break;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            break;
                        }
                    }
                    if conn.is_none() {
                        conn = match mk_conn() {
                            Ok(c) => Some(c),
                            Err(e) => {
                                let mut o = empty_outcome(run);
                                o.io_error = Some(e.to_string());
                                // Recover the list even if a sibling
                                // driver thread panicked: losing the
                                // partial outcomes would only mask the
                                // original failure.
                                outcomes
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .push(o);
                                continue;
                            }
                        };
                    }
                    let out = run_one(
                        components,
                        service,
                        &codec,
                        conn.as_deref_mut().unwrap(),
                        cfg,
                        run,
                    );
                    if out.io_error.is_some() {
                        conn = None; // reconnect for the next run
                    }
                    outcomes
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push(out);
                }
            });
        }
    });
    let mut outcomes = outcomes.into_inner().unwrap_or_else(|p| p.into_inner());
    outcomes.sort_by_key(|o| o.run);
    DriveReport {
        runs: outcomes.len() as u64,
        frames_sent: outcomes.iter().map(|o| o.frames_sent).sum(),
        accepted: outcomes.iter().map(|o| o.accepted).sum(),
        convicted_runs: outcomes.iter().filter(|o| o.conviction.is_some()).count() as u64,
        stalls_attested: outcomes.iter().filter(|o| o.stall_attested).count() as u64,
        io_errors: outcomes.iter().filter(|o| o.io_error.is_some()).count() as u64,
        outcomes,
    }
}

fn empty_outcome(run: u64) -> RunOutcome {
    RunOutcome {
        run,
        steps: 0,
        frames_sent: 0,
        accepted: 0,
        stall_attested: false,
        conviction: None,
        local_verdict: "conforming",
        io_error: None,
    }
}

/// One session: a fleet-style weighted random execution, relayed.
fn run_one(
    components: &[Spec],
    service: &Spec,
    codec: &WireCodec,
    conn: &mut dyn Conn,
    cfg: &DriveConfig,
    run: u64,
) -> RunOutcome {
    let seed = derive_seed(cfg.seed, run);
    let system = System::new(components.to_vec(), ExternalPolicy::AlwaysEnabled);
    let mut runner = Runner::new(system, seed);
    let mut monitor = ServiceMonitor::new(service);
    let mut watchdog = ProgressWatchdog::new(cfg.quiescence_threshold, cfg.probe_budget);
    let mut fault = cfg.faults.start(seed);
    let session = run;
    let mut out = empty_outcome(run);
    while runner.steps() < cfg.max_steps {
        let Some(action) = runner.step_weighted(|a, base| fault.weigh(a, base)) else {
            out.local_verdict = "deadlock";
            attest(conn, session, &mut out);
            break;
        };
        fault.note(&action);
        let mut stop = false;
        if let Action::Event { event, .. } = &action {
            monitor.observe(*event);
            // Solo events are the composite interface: relay them.
            if let Some(frame) = codec.event_frame(session, *event) {
                out.frames_sent += 1;
                match conn.call(&frame) {
                    Ok(Reply::Accepted { .. }) => out.accepted += 1,
                    Ok(Reply::Rejected { reason, .. }) => {
                        out.conviction = Some(reason.name().to_string());
                        stop = true;
                    }
                    Err(e) => {
                        out.io_error = Some(e.to_string());
                        stop = true;
                    }
                }
            }
        }
        watchdog.note(&action, &monitor);
        if matches!(monitor.verdict(), MonitorVerdict::SafetyViolation { .. }) {
            out.local_verdict = "safety";
            stop = true;
        } else if !stop {
            match watchdog.poll(runner.system(), runner.states(), &monitor) {
                ProgressVerdict::Livelock { .. } => {
                    out.local_verdict = "livelock";
                    attest(conn, session, &mut out);
                    stop = true;
                }
                ProgressVerdict::Deadlock { .. } => {
                    out.local_verdict = "deadlock";
                    attest(conn, session, &mut out);
                    stop = true;
                }
                ProgressVerdict::Progressing => {}
            }
        }
        if stop {
            break;
        }
    }
    out.steps = runner.steps();
    if out.io_error.is_none() {
        let _ = conn.call(&Frame::Close { session });
    }
    out
}

/// Sends a stall attestation; a `Stalled` rejection is a conviction.
fn attest(conn: &mut dyn Conn, session: u64, out: &mut RunOutcome) {
    if out.conviction.is_some() || out.io_error.is_some() {
        return;
    }
    out.stall_attested = true;
    match conn.call(&Frame::Stall { session }) {
        Ok(Reply::Accepted { .. }) => {}
        Ok(Reply::Rejected { reason, .. }) => {
            out.conviction = Some(reason.name().to_string());
        }
        Err(e) => out.io_error = Some(e.to_string()),
    }
}
