//! Deterministic fuzz engine for the runtime's adversarial surfaces.
//!
//! A vendored, dependency-free harness in the spirit of a proptest
//! shim: a seeded SplitMix64 corpus (the vendored [`rand`] generator),
//! byte-level and structure-aware frame mutators, crash and hang
//! detection, and ddmin input shrinking reusing the chunk-removal
//! strategy of `protoquot_sim`'s schedule shrinker. Five targets
//! cover the paths hostile bytes can reach:
//!
//! * **codec** — [`FrameBuffer`]/[`ReplyBuffer`] incremental decode on
//!   arbitrary bytes, differentially against whole-buffer decode and
//!   the blocking [`read_frame`]/[`read_reply`] readers, at every
//!   split point (the fuzzer feeds the same bytes one at a time);
//!   decoded values must survive an encode→decode round trip.
//! * **guard** — [`SessionGuard`] (the compiled DFA) against
//!   [`SessionGuardReference`] (the subset-replaying interpreter) on
//!   arbitrary `u16` event-index streams, including indices far
//!   outside the event table; every step's verdict must agree.
//! * **gateway** — the dispatch path under arbitrary frame programs
//!   (events, stalls, closes, session reuse after close, tiny frame
//!   budgets): every frame must produce exactly one reply carrying the
//!   frame's session id, without panicking a worker or wedging the
//!   pool.
//! * **batch** — [`Gateway::call_batch`] differentially against
//!   per-frame [`Gateway::call`] on a second, identically configured
//!   gateway: the same frame program, cut at an input-derived split
//!   width, must produce the same per-session reply sequences and a
//!   well-formed inline reply stream at every split.
//! * **artifact** — the [`CompiledArtifact`] loader on mutated,
//!   truncated, and bit-flipped copies of a valid compiled artifact:
//!   every mutation must decode to a clean [`ArtifactError`] or a
//!   verified artifact — never a panic or a hang — and the unmutated
//!   bytes must keep decoding and instantiating.
//!
//! Every case is keyed by `(seed, target, case-index)` alone, so a
//! finding's reproduction needs nothing but the seed printed in the
//! report. Case bodies run on a harness thread and are declared hung
//! when they overrun [`FuzzConfig::hang_timeout`]; panics are caught
//! with `catch_unwind` and the offending input is shrunk before
//! reporting. [`FuzzReport::to_json`] is deterministic — timing never
//! enters it — so CI can pin the clean report byte for byte.

use crate::artifact::{encode_with_program, ArtifactError, CompiledArtifact};
use crate::codec::{
    decode_frame, decode_reply, encode_frame, encode_reply, read_frame, read_reply, Frame,
    FrameBuffer, RejectReason, Reply, ReplyBuffer,
};
use crate::gateway::{BatchScratch, Gateway, GatewayConfig, GatewayError};
use crate::guard::{GuardProgram, SessionGuard, SessionGuardReference};
use protoquot_spec::Spec;
use rand::prelude::*;
use serde::Value;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Budget and reproduction parameters of one fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Campaign seed; case `i` of target `t` derives its generator
    /// from `(seed, t, i)` and nothing else.
    pub seed: u64,
    /// Cases to run per target.
    pub iters: u64,
    /// Longest input (in bytes) the generators produce.
    pub max_len: usize,
    /// How long one case may run before it is declared hung.
    pub hang_timeout: Duration,
    /// Whether to ddmin-shrink failing inputs before reporting.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0xF0CC_5EED,
            iters: 2_000,
            max_len: 256,
            // Two orders of magnitude above any honest case; a case
            // that needs this long has wedged a worker.
            hang_timeout: Duration::from_secs(5),
            shrink: true,
        }
    }
}

/// One fuzzable surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuzzTarget {
    /// Incremental wire decoding ([`FrameBuffer`], [`ReplyBuffer`],
    /// [`read_frame`], [`read_reply`]).
    Codec,
    /// The online guard DFA against its reference interpreter.
    Guard,
    /// The gateway dispatch path under arbitrary frame programs.
    Gateway,
    /// Batched dispatch ([`Gateway::call_batch`]) differentially
    /// against per-frame dispatch on arbitrary frame splits.
    Batch,
    /// The compiled-artifact loader ([`CompiledArtifact::decode`]) on
    /// mutated copies of a valid artifact.
    Artifact,
}

impl FuzzTarget {
    /// Every target, in report order.
    pub const ALL: [FuzzTarget; 5] = [
        FuzzTarget::Codec,
        FuzzTarget::Guard,
        FuzzTarget::Gateway,
        FuzzTarget::Batch,
        FuzzTarget::Artifact,
    ];

    /// Stable name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            FuzzTarget::Codec => "codec",
            FuzzTarget::Guard => "guard",
            FuzzTarget::Gateway => "gateway",
            FuzzTarget::Batch => "batch",
            FuzzTarget::Artifact => "artifact",
        }
    }

    /// Parses a CLI target name (`all` is handled by the caller).
    pub fn parse(s: &str) -> Option<FuzzTarget> {
        Some(match s {
            "codec" => FuzzTarget::Codec,
            "guard" => FuzzTarget::Guard,
            "gateway" => FuzzTarget::Gateway,
            "batch" => FuzzTarget::Batch,
            "artifact" => FuzzTarget::Artifact,
            _ => return None,
        })
    }
}

/// How a fuzz case failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// The case panicked; the payload message is attached.
    Panic(String),
    /// The case overran [`FuzzConfig::hang_timeout`].
    Hang,
    /// An oracle property failed (differential mismatch, lost reply,
    /// round-trip corruption); the detail says which.
    Divergence(String),
}

impl FindingKind {
    fn name(&self) -> &'static str {
        match self {
            FindingKind::Panic(_) => "panic",
            FindingKind::Hang => "hang",
            FindingKind::Divergence(_) => "divergence",
        }
    }

    fn detail(&self) -> &str {
        match self {
            FindingKind::Panic(m) | FindingKind::Divergence(m) => m,
            FindingKind::Hang => "case exceeded the hang timeout",
        }
    }
}

/// One failing case, with its (shrunk) reproducing input.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which target failed.
    pub target: FuzzTarget,
    /// Case index within the target (reproducible from the seed).
    pub case: u64,
    /// Failure class and detail.
    pub kind: FindingKind,
    /// The input bytes, ddmin-shrunk when shrinking is enabled and the
    /// failure is re-executable (hangs are reported unshrunk).
    pub input: Vec<u8>,
}

impl Finding {
    /// The finding as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("target".into(), Value::Str(self.target.name().to_string()));
        o.insert("case".into(), Value::Int(self.case as i128));
        o.insert("kind".into(), Value::Str(self.kind.name().to_string()));
        o.insert("detail".into(), Value::Str(self.kind.detail().to_string()));
        o.insert("input_hex".into(), Value::Str(hex(&self.input)));
        Value::Obj(o)
    }
}

/// Aggregated result of one fuzz campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Campaign seed (sufficient to reproduce every case).
    pub seed: u64,
    /// Cases executed per target, in [`FuzzTarget::ALL`] order.
    pub executed: Vec<(FuzzTarget, u64)>,
    /// Every failing case, in execution order.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// No panics, hangs, or divergences.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The report as a JSON value tree. Deterministic for a given
    /// config: timing never enters it.
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("seed".into(), Value::Int(self.seed as i128));
        let mut ex = BTreeMap::new();
        for (t, n) in &self.executed {
            ex.insert(t.name().to_string(), Value::Int(*n as i128));
        }
        o.insert("executed".into(), Value::Obj(ex));
        o.insert(
            "findings".into(),
            Value::Arr(self.findings.iter().map(Finding::to_value).collect()),
        );
        Value::Obj(o)
    }

    /// The report as a compact JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("report serialization cannot fail")
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed {:#x} |", self.seed)?;
        for (t, n) in &self.executed {
            write!(f, " {} {}", t.name(), n)?;
        }
        write!(f, " | findings {}", self.findings.len())?;
        for finding in &self.findings {
            write!(
                f,
                "\n  {} case {} [{}] {} (input {} bytes: {})",
                finding.target.name(),
                finding.case,
                finding.kind.name(),
                finding.kind.detail(),
                finding.input.len(),
                hex(&finding.input),
            )?;
        }
        Ok(())
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Runs `cfg.iters` cases of every target in `targets` against the
/// system `parts` (converter included) serving `service`.
///
/// The guard and gateway targets need a compiled system; an
/// uncompilable one is a configuration error, not a finding.
pub fn fuzz(
    parts: &[&Spec],
    service: &Spec,
    targets: &[FuzzTarget],
    cfg: &FuzzConfig,
) -> Result<FuzzReport, GatewayError> {
    let prog = Arc::new(GuardProgram::new(parts, service).map_err(GatewayError::Spec)?);
    let fuzz_gateway_cfg = GatewayConfig {
        workers: 2,
        // Evictable immediately: the campaign trims the session
        // table between cases so the table stays small.
        idle_timeout: Duration::ZERO,
        // A tiny budget so the fuzzer exercises the expulsion path
        // on ordinary inputs, not only on 1000-frame outliers.
        session_frame_budget: 24,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::new(parts, service, fuzz_gateway_cfg.clone())?;
    // The batch target's per-frame oracle: identical configuration,
    // separate session state.
    let oracle = Gateway::new(parts, service, fuzz_gateway_cfg)?;
    // The artifact target mutates copies of this known-good encoding.
    let artifact_base: Arc<Vec<u8>> = Arc::new(encode_with_program(parts, service, &prog));
    let mut harness = Harness::spawn();
    let mut report = FuzzReport {
        seed: cfg.seed,
        executed: Vec::new(),
        findings: Vec::new(),
    };
    for &target in targets {
        let mut executed = 0u64;
        for case in 0..cfg.iters {
            let input = gen_input(cfg, target, case);
            let body = case_body(target, &prog, &gateway, &oracle, &artifact_base, case);
            let verdict = harness.run(&input, &body, cfg.hang_timeout);
            executed += 1;
            if let Some(kind) = verdict {
                let input = match (&kind, cfg.shrink) {
                    // A hang cannot be probed cheaply; report as-is.
                    (FindingKind::Hang, _) | (_, false) => input,
                    (_, true) => shrink_input(&input, &kind, &*body),
                };
                report.findings.push(Finding {
                    target,
                    case,
                    kind,
                    input,
                });
            }
            if matches!(target, FuzzTarget::Gateway | FuzzTarget::Batch) && case % 64 == 63 {
                gateway.evict_idle();
                oracle.evict_idle();
            }
        }
        report.executed.push((target, executed));
    }
    Ok(report)
}

/// A case body: deterministic, returns `None` on pass and a
/// divergence detail on oracle failure; panics are the harness's
/// problem.
type CaseBody = Arc<dyn Fn(&[u8]) -> Option<String> + Send + Sync>;

fn case_body(
    target: FuzzTarget,
    prog: &Arc<GuardProgram>,
    gateway: &Gateway,
    oracle: &Gateway,
    artifact_base: &Arc<Vec<u8>>,
    case: u64,
) -> CaseBody {
    match target {
        FuzzTarget::Codec => Arc::new(codec_case),
        FuzzTarget::Guard => {
            let prog = Arc::clone(prog);
            Arc::new(move |input| guard_case(&prog, input))
        }
        FuzzTarget::Gateway => {
            let gateway = gateway.clone();
            // Distinct session range per case so cases cannot observe
            // each other's session state.
            let base = case.wrapping_mul(16);
            Arc::new(move |input| gateway_case(&gateway, base, input))
        }
        FuzzTarget::Batch => {
            let gateway = gateway.clone();
            let oracle = oracle.clone();
            let base = case.wrapping_mul(16);
            Arc::new(move |input| batch_case(&gateway, &oracle, base, input))
        }
        FuzzTarget::Artifact => {
            let base = Arc::clone(artifact_base);
            Arc::new(move |input| artifact_case(&base, input))
        }
    }
}

// ---------------------------------------------------------------------
// Input generation: seeded corpus + mutators
// ---------------------------------------------------------------------

/// SplitMix-style mix of the campaign seed, target, and case index.
fn case_seed(seed: u64, target: FuzzTarget, case: u64) -> u64 {
    let t = match target {
        FuzzTarget::Codec => 0x1u64,
        FuzzTarget::Guard => 0x2,
        FuzzTarget::Gateway => 0x3,
        FuzzTarget::Batch => 0x4,
        FuzzTarget::Artifact => 0x5,
    };
    seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ case.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// Generates the input bytes of one case: either raw random bytes or a
/// structure-aware wire stream (valid frame/reply encodings) run
/// through a few byte-level mutations.
fn gen_input(cfg: &FuzzConfig, target: FuzzTarget, case: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(case_seed(cfg.seed, target, case));
    let max_len = cfg.max_len.max(1);
    if rng.gen_bool(0.4) {
        // Byte-level: pure noise at a random length.
        let len = rng.gen_range(0..max_len + 1);
        return (0..len).map(|_| rng.gen_range(0u16..256) as u8).collect();
    }
    // Structure-aware: a valid wire stream, then mutations.
    let mut bytes = Vec::new();
    let msgs = rng.gen_range(1usize..9);
    for _ in 0..msgs {
        let session = rng.gen_range(0u64..4);
        if rng.gen_bool(0.75) {
            let frame = match rng.gen_range(0u8..5) {
                0 | 1 => Frame::Event {
                    session,
                    event: rng.gen_range(0u16..512),
                },
                2 => Frame::Stall { session },
                3 => Frame::Hello {
                    session,
                    table_hash: rng.next_u64(),
                    version: rng.gen_range(0u32..4),
                },
                _ => Frame::Close { session },
            };
            encode_frame(&frame, &mut bytes);
        } else {
            let reply = match rng.gen_range(0u8..3) {
                0 => Reply::Accepted { session },
                1 => Reply::HelloAck {
                    session,
                    table_hash: rng.next_u64(),
                    version: rng.gen_range(0u32..4),
                },
                _ => Reply::Rejected {
                    session,
                    reason: RejectReason::from_code(rng.gen_range(1u16..11) as u8)
                        .expect("codes 1..=10 are all assigned"),
                },
            };
            encode_reply(&reply, &mut bytes);
        }
    }
    let mutations = rng.gen_range(0usize..5);
    for _ in 0..mutations {
        mutate(&mut bytes, &mut rng);
    }
    bytes.truncate(max_len);
    bytes
}

/// Applies one byte-level mutation in place.
fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        bytes.push(rng.gen_range(0u16..256) as u8);
        return;
    }
    match rng.gen_range(0u8..6) {
        // Flip one bit.
        0 => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1 << rng.gen_range(0u8..8);
        }
        // Overwrite one byte.
        1 => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0u16..256) as u8;
        }
        // Truncate (torn frame).
        2 => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        // Corrupt a length prefix: make the leading u32 huge.
        3 => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = 0xFF;
        }
        // Duplicate a chunk (replayed bytes).
        4 => {
            let start = rng.gen_range(0..bytes.len());
            let end = rng.gen_range(start..bytes.len() + 1);
            let chunk: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.gen_range(0..bytes.len() + 1);
            bytes.splice(at..at, chunk);
        }
        // Insert garbage.
        _ => {
            let at = rng.gen_range(0..bytes.len() + 1);
            let garbage: Vec<u8> = (0..rng.gen_range(1usize..9))
                .map(|_| rng.gen_range(0u16..256) as u8)
                .collect();
            bytes.splice(at..at, garbage);
        }
    }
}

// ---------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------

/// Decode endpoint comparable across decoding strategies.
#[derive(Debug, PartialEq, Eq)]
enum StreamEnd {
    /// Every byte consumed at a message boundary.
    Clean,
    /// Decoding stopped early (torn tail or corrupt message). The two
    /// strategies may classify the *reason* differently, but must
    /// agree that the stream did not end cleanly.
    Broken,
}

/// Feeds `input` to a [`FrameBuffer`] in chunks of `step` bytes and
/// collects the decoded frames and how the stream ended.
fn frames_chunked(input: &[u8], step: usize) -> (Vec<Frame>, StreamEnd) {
    let mut buf = FrameBuffer::new();
    let mut frames = Vec::new();
    for chunk in input.chunks(step.max(1)) {
        buf.extend(chunk);
        loop {
            match buf.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(_) => return (frames, StreamEnd::Broken),
            }
        }
    }
    let end = if buf.is_mid_message() {
        StreamEnd::Broken
    } else {
        StreamEnd::Clean
    };
    (frames, end)
}

/// Same for [`ReplyBuffer`].
fn replies_chunked(input: &[u8], step: usize) -> (Vec<Reply>, StreamEnd) {
    let mut buf = ReplyBuffer::new();
    let mut replies = Vec::new();
    for chunk in input.chunks(step.max(1)) {
        buf.extend(chunk);
        loop {
            match buf.next_reply() {
                Ok(Some(reply)) => replies.push(reply),
                Ok(None) => break,
                Err(_) => return (replies, StreamEnd::Broken),
            }
        }
    }
    let end = if buf.is_mid_message() {
        StreamEnd::Broken
    } else {
        StreamEnd::Clean
    };
    (replies, end)
}

/// Codec target: incremental decode differentially against
/// whole-buffer decode and the blocking readers, plus round trips.
fn codec_case(input: &[u8]) -> Option<String> {
    // Differential: whole buffer vs one byte at a time vs 3-byte
    // chunks (frames are ≤ 15 bytes, so 3 tears every message).
    let whole = frames_chunked(input, usize::MAX);
    for step in [1usize, 3] {
        let split = frames_chunked(input, step);
        if split != whole {
            return Some(format!(
                "FrameBuffer diverges at split {step}: {split:?} vs whole {whole:?}"
            ));
        }
    }
    // Differential: blocking reader over the same bytes.
    let mut cursor = std::io::Cursor::new(input);
    let mut read = Vec::new();
    let read_end = loop {
        match read_frame(&mut cursor) {
            Ok(Some(frame)) => read.push(frame),
            Ok(None) => break StreamEnd::Clean,
            Err(_) => break StreamEnd::Broken,
        }
    };
    if (&read, &read_end) != (&whole.0, &whole.1) {
        return Some(format!(
            "read_frame diverges: {read:?}/{read_end:?} vs FrameBuffer {whole:?}"
        ));
    }
    // Round trip every successfully decoded frame.
    for frame in &whole.0 {
        let mut bytes = Vec::new();
        encode_frame(frame, &mut bytes);
        match decode_frame(&bytes[4..]) {
            Ok(back) if back == *frame => {}
            other => return Some(format!("frame round trip broke: {frame:?} -> {other:?}")),
        }
    }
    // The reply plane, identically.
    let whole = replies_chunked(input, usize::MAX);
    for step in [1usize, 3] {
        let split = replies_chunked(input, step);
        if split != whole {
            return Some(format!(
                "ReplyBuffer diverges at split {step}: {split:?} vs whole {whole:?}"
            ));
        }
    }
    let mut cursor = std::io::Cursor::new(input);
    let mut read = Vec::new();
    let read_end = loop {
        match read_reply(&mut cursor) {
            Ok(Some(reply)) => read.push(reply),
            Ok(None) => break StreamEnd::Clean,
            Err(_) => break StreamEnd::Broken,
        }
    };
    if (&read, &read_end) != (&whole.0, &whole.1) {
        return Some(format!(
            "read_reply diverges: {read:?}/{read_end:?} vs ReplyBuffer {whole:?}"
        ));
    }
    for reply in &whole.0 {
        let mut bytes = Vec::new();
        encode_reply(reply, &mut bytes);
        match decode_reply(&bytes[4..]) {
            Ok(back) if back == *reply => {}
            other => return Some(format!("reply round trip broke: {reply:?} -> {other:?}")),
        }
    }
    None
}

/// Guard target: the compiled DFA differentially against the
/// subset-replaying reference on an arbitrary event-index stream.
fn guard_case(prog: &Arc<GuardProgram>, input: &[u8]) -> Option<String> {
    let events: Vec<u16> = input
        .chunks(2)
        .map(|c| {
            if c.len() == 2 {
                u16::from_be_bytes([c[0], c[1]])
            } else {
                c[0] as u16
            }
        })
        .collect();
    let mut dfa = SessionGuard::new(Arc::clone(prog));
    let mut reference = SessionGuardReference::new(Arc::clone(prog));
    for (i, &ev) in events.iter().enumerate() {
        let a = dfa.observe(ev);
        let b = reference.observe(ev);
        if a != b {
            return Some(format!(
                "step {i} (event {ev}): DFA says {a:?}, reference says {b:?}"
            ));
        }
        if a.is_err() {
            // Both convicted identically; the session is over.
            return None;
        }
    }
    let a = dfa.attest_stall();
    let b = reference.attest_stall();
    if a != b {
        return Some(format!(
            "stall attestation: DFA says {a:?}, reference says {b:?}"
        ));
    }
    None
}

/// Gateway target: an arbitrary frame program through the dispatch
/// path; every frame must yield exactly one reply for its session.
fn gateway_case(gateway: &Gateway, base_session: u64, input: &[u8]) -> Option<String> {
    for op in input.chunks(3) {
        let (kind, lo, hi) = (
            op[0],
            op.get(1).copied().unwrap_or(0),
            op.get(2).copied().unwrap_or(0),
        );
        // Four local sessions per case, so closes and reuse collide.
        let session = base_session + (kind >> 4) as u64 % 4;
        let frame = match kind & 0x03 {
            0 | 1 => Frame::Event {
                session,
                event: u16::from_be_bytes([lo, hi]),
            },
            2 => Frame::Stall { session },
            _ => Frame::Close { session },
        };
        let reply = gateway.call(frame);
        if reply.session() != session {
            return Some(format!(
                "reply session {} for frame session {session}",
                reply.session()
            ));
        }
    }
    // Leave no live session behind.
    for s in 0..4 {
        let reply = gateway.call(Frame::Close {
            session: base_session + s,
        });
        if reply.session() != base_session + s {
            return Some("close reply misattributed".to_string());
        }
    }
    None
}

/// Batch target: the same frame programs as the gateway target, cut at
/// arbitrary batch boundaries through [`Gateway::call_batch`] and
/// differentially checked against a per-frame oracle gateway with
/// identical configuration and separate session state. Batch replies
/// are ordered within a session, not across sessions, so both sides
/// are compared as per-session reply sequences.
fn batch_case(
    batched: &Gateway,
    oracle: &Gateway,
    base_session: u64,
    input: &[u8],
) -> Option<String> {
    let mut frames = Vec::with_capacity(input.len() / 3 + 1);
    for op in input.chunks(3) {
        let (kind, lo, hi) = (
            op[0],
            op.get(1).copied().unwrap_or(0),
            op.get(2).copied().unwrap_or(0),
        );
        let session = base_session + (kind >> 4) as u64 % 4;
        frames.push(match kind & 0x03 {
            0 | 1 => Frame::Event {
                session,
                event: u16::from_be_bytes([lo, hi]),
            },
            2 => Frame::Stall { session },
            _ => Frame::Close { session },
        });
    }
    // The oracle runs every frame through the per-frame path.
    let mut want: HashMap<u64, Vec<Reply>> = HashMap::new();
    for &frame in &frames {
        want.entry(frame.session())
            .or_default()
            .push(oracle.call(frame));
    }
    // The batched side runs the same frames through call_batch at an
    // input-derived batch size, decoding replies back off the wire.
    let split = (input.first().copied().unwrap_or(0) as usize % 7) + 1;
    let mut got: HashMap<u64, Vec<Reply>> = HashMap::new();
    let mut scratch = BatchScratch::new();
    let mut out = Vec::new();
    let mut dec = ReplyBuffer::new();
    for chunk in frames.chunks(split) {
        out.clear();
        let mut slow_frames = Vec::new();
        batched.call_batch(chunk, &mut scratch, &mut out, &mut |f| slow_frames.push(f));
        dec.extend(&out);
        loop {
            match dec.next_reply() {
                Ok(Some(reply)) => got.entry(reply.session()).or_default().push(reply),
                Ok(None) => break,
                Err(e) => return Some(format!("batch reply stream undecodable: {e}")),
            }
        }
        if dec.is_mid_message() {
            return Some("batch reply stream torn mid-message".to_string());
        }
        // A single-threaded case never contends a session, so nothing
        // should route slow; answer anything that does through the
        // per-frame path regardless, so a misrouting bug surfaces as
        // a divergence rather than a lost reply.
        for frame in slow_frames {
            let reply = batched.call(frame);
            got.entry(reply.session()).or_default().push(reply);
        }
    }
    if got != want {
        for s in 0..4 {
            let session = base_session + s;
            if got.get(&session) != want.get(&session) {
                return Some(format!(
                    "session {session}: batched {:?} != per-frame {:?}",
                    got.get(&session),
                    want.get(&session)
                ));
            }
        }
        return Some("batched replies != per-frame replies".to_string());
    }
    // Leave no live session behind on either gateway; the close
    // replies are the final-state differential.
    for s in 0..4 {
        let session = base_session + s;
        let b = batched.call(Frame::Close { session });
        let o = oracle.call(Frame::Close { session });
        if b != o {
            return Some(format!(
                "final close diverges on session {session}: batched {b:?}, per-frame {o:?}"
            ));
        }
        if b.session() != session {
            return Some("close reply misattributed".to_string());
        }
    }
    None
}

/// Artifact target: the input bytes are read as a mutation program
/// applied to a copy of a known-good compiled artifact — bit flips,
/// byte overwrites, truncations, insertions — and the loader must
/// classify every result cleanly. The empty program (pristine bytes)
/// must keep decoding and instantiating; anything that still decodes
/// after mutation must also survive `instantiate` without panicking
/// (either rebuilding the guard or refusing with a divergence).
fn artifact_case(base: &Arc<Vec<u8>>, input: &[u8]) -> Option<String> {
    let mut bytes = base.as_ref().clone();
    for op in input.chunks(3) {
        let (kind, lo, hi) = (
            op[0],
            op.get(1).copied().unwrap_or(0),
            op.get(2).copied().unwrap_or(0),
        );
        if bytes.is_empty() {
            break;
        }
        let pos = u16::from_be_bytes([lo, hi]) as usize % bytes.len();
        match kind & 0x03 {
            0 => bytes[pos] ^= 1 << ((kind >> 4) & 7),
            1 => bytes[pos] = kind,
            2 => bytes.truncate(pos),
            _ => bytes.insert(pos, kind),
        }
    }
    let pristine = bytes == **base;
    match CompiledArtifact::decode(&bytes) {
        Err(e) => {
            if pristine {
                return Some(format!("pristine artifact refused to decode: {e}"));
            }
            // A clean, classified refusal is exactly the contract.
            let _: ArtifactError = e;
        }
        Ok(artifact) => {
            // Rarely, mutations cancel out (or hit nothing); whatever
            // decodes must also instantiate or refuse — never panic.
            match artifact.instantiate() {
                Ok(_) => {}
                Err(e) if pristine => {
                    return Some(format!("pristine artifact refused to instantiate: {e}"));
                }
                Err(_) => {}
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Harness: crash + hang detection
// ---------------------------------------------------------------------

enum HarnessVerdict {
    Pass,
    Panic(String),
    Divergence(String),
}

type Job = Box<dyn FnOnce() -> HarnessVerdict + Send>;

/// One long-lived worker thread running case bodies, so a hung case
/// can be abandoned (thread and all) without killing the campaign.
struct Harness {
    tx: mpsc::Sender<Job>,
    rx: mpsc::Receiver<HarnessVerdict>,
}

impl Harness {
    fn spawn() -> Harness {
        let (tx, jobs) = mpsc::channel::<Job>();
        let (results, rx) = mpsc::channel();
        std::thread::spawn(move || {
            for job in jobs {
                let verdict = match catch_unwind(AssertUnwindSafe(job)) {
                    Ok(v) => v,
                    Err(payload) => HarnessVerdict::Panic(panic_message(payload.as_ref())),
                };
                if results.send(verdict).is_err() {
                    break;
                }
            }
        });
        Harness { tx, rx }
    }

    /// Runs one case, replacing the worker thread if it hangs.
    fn run(&mut self, input: &[u8], body: &CaseBody, timeout: Duration) -> Option<FindingKind> {
        let input = input.to_vec();
        let body = Arc::clone(body);
        let job: Job = Box::new(move || match body(&input) {
            None => HarnessVerdict::Pass,
            Some(detail) => HarnessVerdict::Divergence(detail),
        });
        if self.tx.send(job).is_err() {
            // The worker died outside a case (only possible if a panic
            // escaped catch_unwind); treat as a crash and respawn.
            *self = Harness::spawn();
            return Some(FindingKind::Panic("fuzz worker thread died".to_string()));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(HarnessVerdict::Pass) => None,
            Ok(HarnessVerdict::Panic(msg)) => Some(FindingKind::Panic(msg)),
            Ok(HarnessVerdict::Divergence(detail)) => Some(FindingKind::Divergence(detail)),
            Err(_) => {
                // Abandon the wedged worker; its thread leaks by
                // design (it may be deadlocked and cannot be joined).
                *self = Harness::spawn();
                Some(FindingKind::Hang)
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Whether `input` still reproduces the failure class of `kind`.
/// Panics must still panic (any message); divergences must still
/// diverge. Runs inline — only re-executable (non-hang) findings are
/// shrunk, so there is nothing to time out.
fn still_fails(
    input: &[u8],
    kind: &FindingKind,
    body: &(dyn Fn(&[u8]) -> Option<String> + Send + Sync),
) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(|| body(input)));
    matches!(
        (kind, outcome),
        (FindingKind::Panic(_), Err(_)) | (FindingKind::Divergence(_), Ok(Some(_)))
    )
}

/// ddmin over the input bytes — the same chunk-removal loop as
/// `protoquot_sim`'s schedule shrinker, with a probe budget so a
/// pathological case cannot stall the campaign.
fn shrink_input(
    input: &[u8],
    kind: &FindingKind,
    body: &(dyn Fn(&[u8]) -> Option<String> + Send + Sync),
) -> Vec<u8> {
    const MAX_PROBES: usize = 512;
    let mut current = input.to_vec();
    let mut probes = 0usize;
    let mut chunks = 2usize;
    while current.len() >= 2 && probes < MAX_PROBES {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() && probes < MAX_PROBES {
            let end = (start + chunk_len).min(current.len());
            let candidate: Vec<u8> = current[..start]
                .iter()
                .chain(&current[end..])
                .copied()
                .collect();
            probes += 1;
            if still_fails(&candidate, kind, body) {
                current = candidate;
                chunks = 2.max(chunks.saturating_sub(1));
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunks >= current.len() {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_core::solve;
    use protoquot_protocols::{colocated_configuration, exactly_once};

    fn smoke_cfg(iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed: 0xF0CC_5EED,
            iters,
            max_len: 128,
            ..FuzzConfig::default()
        }
    }

    /// The fixed-seed smoke campaign over every target finds nothing
    /// — the codec, guard, gateway, batcher, and artifact loader hold
    /// their invariants on hostile input — and its report is
    /// deterministic.
    #[test]
    fn fixed_seed_smoke_is_clean_and_deterministic() {
        let system = colocated_configuration();
        let service = exactly_once();
        let q = solve(&system.b, &service, &system.int).expect("converter derives");
        let parts = [&system.b, &q.converter];
        let a = fuzz(&parts, &service, &FuzzTarget::ALL, &smoke_cfg(300)).expect("system compiles");
        assert!(a.is_clean(), "fuzz findings on the smoke seed:\n{a}");
        let b = fuzz(&parts, &service, &FuzzTarget::ALL, &smoke_cfg(300)).expect("system compiles");
        assert_eq!(a.to_json(), b.to_json(), "fuzz report is not deterministic");
    }

    /// The harness catches panics and the shrinker minimizes the
    /// reproducing input instead of reporting the raw case.
    #[test]
    fn harness_catches_and_shrinks_panics() {
        let body: CaseBody = Arc::new(|input: &[u8]| {
            if input.contains(&0x42) {
                panic!("hit the magic byte");
            }
            None
        });
        let mut harness = Harness::spawn();
        let input = vec![0u8, 1, 2, 0x42, 3, 4, 5, 6];
        let kind = harness
            .run(&input, &body, Duration::from_secs(5))
            .expect("the magic byte must be caught");
        assert!(matches!(&kind, FindingKind::Panic(m) if m.contains("magic byte")));
        let shrunk = shrink_input(&input, &kind, &*body);
        assert_eq!(shrunk, vec![0x42], "ddmin should isolate the magic byte");
    }

    /// A wedged case is reported as a hang and the campaign keeps
    /// running on a fresh worker.
    #[test]
    fn harness_detects_hangs_and_recovers() {
        let body: CaseBody = Arc::new(|input: &[u8]| {
            if input.first() == Some(&0xFF) {
                loop {
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            None
        });
        let mut harness = Harness::spawn();
        let hang = harness.run(&[0xFF], &body, Duration::from_millis(200));
        assert!(matches!(hang, Some(FindingKind::Hang)));
        let pass = harness.run(&[0x00], &body, Duration::from_secs(5));
        assert!(pass.is_none(), "fresh worker must serve the next case");
    }
}
