//! The session-multiplexed relay gateway.
//!
//! A [`Gateway`] owns one compiled [`GuardProgram`] and a sharded
//! session table: `session id → SessionCore` (guard state plus a
//! bounded frame queue), spread over `shards` stripe-locked maps.
//! Frames are submitted with a responder callback; a worker from the
//! shared [`threadpool::ThreadPool`] drains each session's queue in
//! order — popping up to a batch of frames per lock acquisition and
//! answering them after the lock drops — so per-session processing is
//! serialized while distinct sessions proceed in parallel.
//!
//! The blocking [`Gateway::call`] path additionally takes an **inline
//! fast path**: when the target session is idle (empty queue, no worker
//! scheduled), the frame is processed on the caller's thread under the
//! session lock — the same serialization a worker drain provides,
//! without the channel hand-off and pool dispatch. With the guard
//! determinized to one table row per frame, that dispatch cost was the
//! relay's dominant term.
//!
//! Flow control and lifecycle:
//!
//! * a full per-session queue rejects new frames with
//!   [`RejectReason::Backpressure`] instead of buffering unboundedly;
//! * [`Gateway::evict_idle`] sweeps sessions idle past the configured
//!   timeout (only when unscheduled with an empty queue);
//! * [`Gateway::drain`] stops admitting frames
//!   ([`RejectReason::Draining`]) and blocks until every queued frame
//!   has been answered — graceful shutdown. A `call` whose responder is
//!   dropped unfired (worker death, pool teardown) reports
//!   [`RejectReason::Draining`] instead of panicking the caller.
//!
//! Lock order is always shard map → session core, and each is dropped
//! before the next is taken on the submit path, so the gateway cannot
//! deadlock against its own workers.

use crate::codec::{encode_reply, table_hash, Frame, RejectReason, Reply, WireCodec, WireError};
use crate::guard::{Conviction, GuardProgram, SessionGuard, SessionGuardReference};
use crate::stats::{RuntimeStats, StatsSnapshot};
use protoquot_spec::{Spec, SpecError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};
use threadpool::ThreadPool;

/// Frames a worker pops and answers per session-lock acquisition.
const DRAIN_BATCH: usize = 32;

/// Why a [`Gateway`] failed to start.
#[derive(Debug)]
pub enum GatewayError {
    /// The conversion system failed to compile or validate.
    Spec(SpecError),
    /// The compiled event table cannot be carried by the wire format
    /// (more events than a 16-bit frame index addresses).
    Wire(WireError),
    /// A hot-swap was refused: event-table mismatch, stale version
    /// number, or the previous version still draining (N-1 support).
    Swap(String),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Spec(e) => write!(f, "{e}"),
            GatewayError::Wire(e) => write!(f, "{e}"),
            GatewayError::Swap(e) => write!(f, "swap refused: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<SpecError> for GatewayError {
    fn from(e: SpecError) -> GatewayError {
        GatewayError::Spec(e)
    }
}

impl From<WireError> for GatewayError {
    fn from(e: WireError) -> GatewayError {
        GatewayError::Wire(e)
    }
}

/// Tuning knobs of a [`Gateway`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Worker threads draining session queues.
    pub workers: usize,
    /// Stripe-locked shards of the session table.
    pub shards: usize,
    /// Per-session queue bound; beyond it frames bounce with
    /// [`RejectReason::Backpressure`].
    pub queue_cap: usize,
    /// Idle time after which [`Gateway::evict_idle`] removes a session.
    pub idle_timeout: Duration,
    /// Frames (events + stalls) one session may submit over its
    /// lifetime; beyond it the session is *expelled*: the frame bounces
    /// with [`RejectReason::ResourceLimit`], the session is marked
    /// closed, and the next idle sweep removes it. `0` disables the
    /// budget (the default — campaigns legitimately run long sessions).
    pub session_frame_budget: u64,
    /// Run sessions on the pre-determinization subset-replaying guard
    /// ([`SessionGuardReference`]) instead of the compiled DFA. The
    /// differential suites and the EXP-R2 before/after comparison flip
    /// this; production traffic keeps the default `false`.
    pub reference_guard: bool,
    /// Let transports take [`Gateway::call_batch`] — whole readiness
    /// chunks processed per session-lock acquisition with replies
    /// encoded straight into the connection's outbound buffer. `false`
    /// forces the per-frame `submit`/`call` path everywhere; the
    /// differential suites and EXP-R5 flip this, production traffic
    /// keeps the default `true`.
    pub batching: bool,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            workers: 4,
            shards: 8,
            queue_cap: 64,
            idle_timeout: Duration::from_secs(30),
            session_frame_budget: 0,
            reference_guard: false,
            batching: true,
        }
    }
}

/// Callback answering one submitted frame.
pub type Responder = Box<dyn FnOnce(Reply) + Send>;

/// One batch group: the frames of one session, chained in arrival
/// order through [`BatchScratch::next`].
struct BatchGroup {
    session: u64,
    head: u32,
    tail: u32,
    count: u32,
}

/// Reusable per-connection scratch for [`Gateway::call_batch`]:
/// groups a batch's frames by session without allocating in the
/// steady state. Grouping is an intrusive linked list over frame
/// indices — one hash lookup per frame, groups iterated in order of
/// first appearance, per-session frame order preserved.
#[derive(Default)]
pub struct BatchScratch {
    by_session: HashMap<u64, u32>,
    groups: Vec<BatchGroup>,
    /// `next[i]` is the index of the next frame of the same session,
    /// or `u32::MAX` at a chain's tail.
    next: Vec<u32>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow to the largest batch seen and
    /// are retained across calls.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    fn group(&mut self, frames: &[Frame]) {
        self.by_session.clear();
        self.groups.clear();
        self.next.clear();
        self.next.resize(frames.len(), u32::MAX);
        for (i, frame) in frames.iter().enumerate() {
            let i = i as u32;
            match self.by_session.entry(frame.session()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let g = &mut self.groups[*e.get() as usize];
                    self.next[g.tail as usize] = i;
                    g.tail = i;
                    g.count += 1;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(self.groups.len() as u32);
                    self.groups.push(BatchGroup {
                        session: frame.session(),
                        head: i,
                        tail: i,
                        count: 1,
                    });
                }
            }
        }
    }
}

/// The per-session guard, in whichever implementation the gateway was
/// configured with. Both expose identical conviction semantics; the
/// runtime-agreement suite holds them bit-identical.
enum Guard {
    Dfa(SessionGuard),
    Reference(SessionGuardReference),
}

impl Guard {
    fn new(prog: &Arc<GuardProgram>, reference: bool) -> Guard {
        if reference {
            Guard::Reference(SessionGuardReference::new(Arc::clone(prog)))
        } else {
            Guard::Dfa(SessionGuard::new(Arc::clone(prog)))
        }
    }

    fn observe(&mut self, event: u16) -> Result<(), Conviction> {
        match self {
            Guard::Dfa(g) => g.observe(event),
            Guard::Reference(g) => g.observe(event),
        }
    }

    fn attest_stall(&mut self) -> Result<(), Conviction> {
        match self {
            Guard::Dfa(g) => g.attest_stall(),
            Guard::Reference(g) => g.attest_stall(),
        }
    }

    fn convicted(&self) -> Option<&Conviction> {
        match self {
            Guard::Dfa(g) => g.convicted(),
            Guard::Reference(g) => g.convicted(),
        }
    }
}

struct SessionCore {
    guard: Guard,
    queue: VecDeque<(Frame, Responder)>,
    scheduled: bool,
    closed: bool,
    last_active: Instant,
    /// Event + stall frames processed, charged against
    /// [`GatewayConfig::session_frame_budget`].
    frames_seen: u64,
    /// Converter version this session was bound to at first contact.
    /// Fixed for the session's lifetime: a hot-swap never rebinds a
    /// live session, it only changes what *new* sessions get.
    version: u32,
}

type Shard = Mutex<HashMap<u64, Arc<Mutex<SessionCore>>>>;

struct GatewayInner {
    /// The active converter: `(version, program)`. Read once per
    /// session open — never on the per-frame path, which goes through
    /// the session's own `Guard`.
    active: RwLock<(u32, Arc<GuardProgram>)>,
    /// The N-1 version still draining sessions, if any. Retired (and
    /// cleared) when its per-version session count reaches zero.
    prev: Mutex<Option<(u32, Arc<GuardProgram>)>>,
    /// FNV-1a hash of the event table — the wire identity every
    /// admissible converter version must share.
    table_hash: u64,
    codec: WireCodec,
    stats: RuntimeStats,
    shards: Vec<Shard>,
    pool: ThreadPool,
    /// Frames accepted into some queue but not yet answered.
    pending: AtomicU64,
    draining: AtomicBool,
    cfg: GatewayConfig,
}

impl GatewayInner {
    /// Answers a hello: ack with our identity when the peer's table
    /// hash matches (and its pinned version, if any, is the active
    /// one), otherwise a counted `VersionMismatch` reject. No session
    /// state is created or touched.
    fn hello_reply(&self, session: u64, peer_hash: u64, peer_version: u32) -> Reply {
        let active_version = self.active.read().unwrap().0;
        if peer_hash == self.table_hash && (peer_version == 0 || peer_version == active_version) {
            Reply::HelloAck {
                session,
                table_hash: self.table_hash,
                version: active_version,
            }
        } else {
            self.stats.note_reject(RejectReason::VersionMismatch);
            Reply::Rejected {
                session,
                reason: RejectReason::VersionMismatch,
            }
        }
    }

    /// Accounts a session leaving `version`; when that drains the
    /// previous (non-active) version to zero sessions, retires it —
    /// dropping the last gateway reference to its program.
    fn note_session_gone(&self, version: u32) {
        if self.stats.note_version_close(version) == 0 {
            let mut prev = self.prev.lock().unwrap();
            if prev.as_ref().is_some_and(|(v, _)| *v == version) {
                *prev = None;
                self.stats.note_version_retired();
            }
        }
    }
}

/// A cloneable handle to one running gateway.
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<GatewayInner>,
}

impl Gateway {
    /// Compiles `parts` (components plus the derived converter) against
    /// `service` — including the guard-DFA subset construction — and
    /// starts a gateway with `cfg.workers` threads.
    pub fn new(
        parts: &[&Spec],
        service: &Spec,
        cfg: GatewayConfig,
    ) -> Result<Gateway, GatewayError> {
        Gateway::with_program(Arc::new(GuardProgram::new(parts, service)?), cfg)
    }

    /// Starts a gateway on an already-compiled program (e.g. one
    /// instantiated from a registry artifact), bound as version 1.
    pub fn with_program(
        prog: Arc<GuardProgram>,
        cfg: GatewayConfig,
    ) -> Result<Gateway, GatewayError> {
        let codec = WireCodec::from_table(Arc::clone(prog.table()))?;
        let stats = RuntimeStats::with_guard_build(codec.table().len(), prog.build_stats().clone());
        let hash = table_hash(codec.table());
        stats.set_wire_identity(hash, 1);
        let shards = (0..cfg.shards.max(1)).map(|_| Shard::default()).collect();
        let pool = ThreadPool::new(cfg.workers.max(1));
        Ok(Gateway {
            inner: Arc::new(GatewayInner {
                active: RwLock::new((1, prog)),
                prev: Mutex::new(None),
                table_hash: hash,
                codec,
                stats,
                shards,
                pool,
                pending: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                cfg,
            }),
        })
    }

    /// The wire codec (shared event table) of this gateway.
    pub fn codec(&self) -> &WireCodec {
        &self.inner.codec
    }

    /// The currently active compiled guard program. New sessions bind
    /// this; sessions opened before a hot-swap keep the program they
    /// were born with.
    pub fn program(&self) -> Arc<GuardProgram> {
        Arc::clone(&self.inner.active.read().unwrap().1)
    }

    /// The currently active converter version.
    pub fn active_version(&self) -> u32 {
        self.inner.active.read().unwrap().0
    }

    /// FNV-1a hash of the event table — the wire identity negotiated
    /// at hello and required of every swapped-in converter version.
    pub fn table_hash(&self) -> u64 {
        self.inner.table_hash
    }

    /// Hot-swaps the active converter to `prog` as `version`.
    ///
    /// New sessions bind `prog` immediately; existing sessions drain
    /// on the program they were born with. One previous version may be
    /// draining at a time (N-1 support): a second swap is refused
    /// until the earlier version's session count reaches zero and it
    /// is retired. The replacement must carry a byte-identical event
    /// table (same wire identity) and a strictly newer version number.
    pub fn swap(&self, version: u32, prog: Arc<GuardProgram>) -> Result<(), GatewayError> {
        let inner = &self.inner;
        let new_hash = table_hash(prog.table());
        if new_hash != inner.table_hash {
            return Err(GatewayError::Swap(format!(
                "event-table hash {:016x} does not match the wire identity {:016x}",
                new_hash, inner.table_hash
            )));
        }
        // Lock order: active (write) then prev — matched nowhere else,
        // so no cycle. Session open takes active (read) only; session
        // close takes prev only.
        let mut active = inner.active.write().unwrap();
        if version <= active.0 {
            return Err(GatewayError::Swap(format!(
                "version {version} is not newer than active version {}",
                active.0
            )));
        }
        let mut prev = inner.prev.lock().unwrap();
        if let Some((draining, _)) = prev.as_ref() {
            let left = inner.stats.sessions_on_version(*draining);
            if left > 0 {
                return Err(GatewayError::Swap(format!(
                    "version {draining} still draining {left} session(s); \
                     only one previous version may drain at a time"
                )));
            }
            // Fully drained but never observed a close (e.g. no
            // session ever bound it): retire it now.
            *prev = None;
            inner.stats.note_version_retired();
        }
        let old = std::mem::replace(&mut *active, (version, prog));
        if inner.stats.sessions_on_version(old.0) > 0 {
            *prev = Some(old);
        } else {
            inner.stats.note_version_retired();
        }
        inner.stats.note_swap();
        inner.stats.set_wire_identity(inner.table_hash, version);
        Ok(())
    }

    /// The session core for `session`, created on first contact.
    fn core_for(&self, session: u64) -> Arc<Mutex<SessionCore>> {
        let inner = &self.inner;
        let shard = &inner.shards[(session % inner.shards.len() as u64) as usize];
        let mut map = shard.lock().unwrap();
        Arc::clone(map.entry(session).or_insert_with(|| {
            let (version, prog) = {
                let active = inner.active.read().unwrap();
                (active.0, Arc::clone(&active.1))
            };
            inner.stats.note_open();
            inner.stats.note_version_open(version);
            Arc::new(Mutex::new(SessionCore {
                guard: Guard::new(&prog, inner.cfg.reference_guard),
                queue: VecDeque::new(),
                scheduled: false,
                closed: false,
                last_active: Instant::now(),
                frames_seen: 0,
                version,
            }))
        }))
    }

    /// Queues `frame` on `core`, scheduling a drain worker if none is.
    /// Fires `respond` immediately on backpressure.
    fn enqueue(
        &self,
        core: &Arc<Mutex<SessionCore>>,
        session: u64,
        frame: Frame,
        respond: Responder,
    ) {
        let inner = &self.inner;
        let schedule = {
            let mut core = core.lock().unwrap();
            if core.queue.len() >= inner.cfg.queue_cap {
                drop(core);
                inner.stats.note_reject(RejectReason::Backpressure);
                respond(Reply::Rejected {
                    session,
                    reason: RejectReason::Backpressure,
                });
                return;
            }
            core.queue.push_back((frame, respond));
            inner.stats.note_queue_depth(core.queue.len());
            inner.pending.fetch_add(1, Ordering::AcqRel);
            if core.scheduled {
                false
            } else {
                core.scheduled = true;
                true
            }
        };
        if schedule {
            let inner = Arc::clone(&self.inner);
            let core = Arc::clone(core);
            self.inner
                .pool
                .execute(move || drain_session(&inner, &core, session));
        }
    }

    /// Submits one frame; `respond` fires exactly once with the reply,
    /// possibly on a worker thread.
    pub fn submit(&self, frame: Frame, respond: Responder) {
        let inner = &self.inner;
        inner.stats.note_frame();
        let session = frame.session();
        if inner.draining.load(Ordering::Acquire) {
            inner.stats.note_reject(RejectReason::Draining);
            respond(Reply::Rejected {
                session,
                reason: RejectReason::Draining,
            });
            return;
        }
        if let Frame::Hello {
            table_hash: peer_hash,
            version: peer_version,
            ..
        } = frame
        {
            respond(inner.hello_reply(session, peer_hash, peer_version));
            return;
        }
        let core = self.core_for(session);
        self.enqueue(&core, session, frame, respond);
    }

    /// Submits `frame` and blocks for the reply (loopback-style use).
    ///
    /// An idle session is processed inline on the caller's thread — one
    /// lock, one guard-DFA row — falling back to the queued worker path
    /// whenever frames are already in flight for the session.
    pub fn call(&self, frame: Frame) -> Reply {
        let inner = &self.inner;
        inner.stats.note_frame();
        let session = frame.session();
        if inner.draining.load(Ordering::Acquire) {
            inner.stats.note_reject(RejectReason::Draining);
            return Reply::Rejected {
                session,
                reason: RejectReason::Draining,
            };
        }
        if let Frame::Hello {
            table_hash: peer_hash,
            version: peer_version,
            ..
        } = frame
        {
            // Negotiation is connection-level: answered without
            // creating (or touching) any session state.
            return inner.hello_reply(session, peer_hash, peer_version);
        }
        let core = self.core_for(session);
        {
            let mut locked = core.lock().unwrap();
            if !locked.scheduled && locked.queue.is_empty() {
                let reply = process(inner, &mut locked, frame);
                locked.last_active = Instant::now();
                return reply;
            }
        }
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            &core,
            session,
            frame,
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        );
        match rx.recv() {
            Ok(reply) => reply,
            // The responder was dropped unfired: a worker died or the
            // pool was torn down mid-drain. Report the session as
            // unserved rather than panicking the caller.
            Err(_) => {
                inner.stats.note_reject(RejectReason::Draining);
                Reply::Rejected {
                    session,
                    reason: RejectReason::Draining,
                }
            }
        }
    }

    /// Whether transports should take the [`Gateway::call_batch`] path
    /// ([`GatewayConfig::batching`]).
    pub fn batching_enabled(&self) -> bool {
        self.inner.cfg.batching
    }

    /// Processes one transport batch — every frame decoded from one
    /// readiness chunk — grouped by session: one shard lookup, one
    /// session-lock acquisition, and one contiguous guard-DFA run per
    /// session per batch. Replies for inline-processed frames are
    /// encoded straight into `out` (the caller's reusable outbound
    /// buffer) with no per-frame allocation or responder.
    ///
    /// A session that is already scheduled or queued cannot be
    /// processed inline without reordering it against its in-flight
    /// frames, so *all* of its frames in this batch are handed to
    /// `slow` in order; the callback must forward each one to
    /// [`Gateway::submit`] with a responder that appends to the same
    /// outbound buffer. Frame accounting splits accordingly: inline
    /// frames are counted here, slow-path frames when `submit` sees
    /// them.
    ///
    /// Replies land in `out` grouped by session (groups in order of
    /// first appearance, per-session order preserved) — equivalent to
    /// per-frame execution for any client that attributes replies by
    /// the session id in their headers, which both campaign drivers
    /// do. The per-frame [`Gateway::call`] path is the differential
    /// oracle for this equivalence.
    pub fn call_batch(
        &self,
        frames: &[Frame],
        scratch: &mut BatchScratch,
        out: &mut Vec<u8>,
        slow: &mut dyn FnMut(Frame),
    ) {
        if frames.is_empty() {
            return;
        }
        let inner = &self.inner;
        inner.stats.note_batch(frames.len());
        if inner.draining.load(Ordering::Acquire) {
            for frame in frames {
                inner.stats.note_frame();
                inner.stats.note_reject(RejectReason::Draining);
                encode_reply(
                    &Reply::Rejected {
                        session: frame.session(),
                        reason: RejectReason::Draining,
                    },
                    out,
                );
            }
            return;
        }
        scratch.group(frames);
        for g in &scratch.groups {
            let core = self.core_for(g.session);
            let mut locked = core.lock().unwrap();
            if !locked.scheduled && locked.queue.is_empty() {
                let mut idx = g.head;
                loop {
                    inner.stats.note_frame();
                    let reply = process(inner, &mut locked, frames[idx as usize]);
                    encode_reply(&reply, out);
                    if idx == g.tail {
                        break;
                    }
                    idx = scratch.next[idx as usize];
                }
                locked.last_active = Instant::now();
                inner.stats.note_batch_inline(g.count as usize);
            } else {
                drop(locked);
                inner.stats.note_batch_slow(g.count as usize);
                let mut idx = g.head;
                loop {
                    slow(frames[idx as usize]);
                    if idx == g.tail {
                        break;
                    }
                    idx = scratch.next[idx as usize];
                }
            }
        }
    }

    /// Removes sessions idle longer than the configured timeout.
    /// Returns how many were evicted.
    pub fn evict_idle(&self) -> usize {
        let inner = &self.inner;
        let mut evicted = 0;
        let mut gone_versions = Vec::new();
        for shard in &inner.shards {
            let mut map = shard.lock().unwrap();
            map.retain(|_, core| {
                let core = core.lock().unwrap();
                let stale = !core.scheduled
                    && core.queue.is_empty()
                    && core.last_active.elapsed() >= inner.cfg.idle_timeout;
                if stale {
                    if core.closed {
                        inner.stats.note_close();
                    } else {
                        inner.stats.note_evict();
                    }
                    gone_versions.push(core.version);
                    evicted += 1;
                }
                !stale
            });
        }
        // Version accounting outside the shard locks: draining the
        // previous version to zero retires it here.
        for version in gone_versions {
            inner.note_session_gone(version);
        }
        evicted
    }

    /// Stops admitting frames and waits until every queued frame has
    /// been answered and all workers are idle.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
        while self.inner.pending.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.pool.join();
    }

    /// The live counters, for transports to record connection events.
    pub(crate) fn runtime_stats(&self) -> &RuntimeStats {
        &self.inner.stats
    }

    /// Answers a transport-level hello: counted like any frame, acked
    /// or rejected from the gateway's wire identity, touching no
    /// session state. Transports call this for hellos they intercept
    /// at connection open.
    pub(crate) fn hello(&self, session: u64, peer_hash: u64, peer_version: u32) -> Reply {
        self.inner.stats.note_frame();
        self.inner.hello_reply(session, peer_hash, peer_version)
    }

    /// Accounts a frame a *transport* refused before submission (e.g.
    /// the per-connection session cap) and builds the rejection reply.
    /// Keeps transport-side rejects indistinguishable from gateway-side
    /// ones in the stats: the frame is counted, the reason is counted.
    pub(crate) fn transport_reject(&self, session: u64, reason: RejectReason) -> Reply {
        self.inner.stats.note_frame();
        self.inner.stats.note_reject(reason);
        Reply::Rejected { session, reason }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(self.inner.codec.table())
    }

    /// Sessions currently resident in the table.
    pub fn resident_sessions(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().len())
            .sum()
    }
}

/// Worker job: drains one session's queue to empty — up to
/// [`DRAIN_BATCH`] frames per lock acquisition, answered after the lock
/// drops — then unschedules itself.
fn drain_session(inner: &Arc<GatewayInner>, core: &Arc<Mutex<SessionCore>>, _session: u64) {
    let mut replies: Vec<(Responder, Reply)> = Vec::with_capacity(DRAIN_BATCH);
    loop {
        let mut guard = core.lock().unwrap();
        if guard.queue.is_empty() {
            guard.scheduled = false;
            return;
        }
        while replies.len() < DRAIN_BATCH {
            let Some((frame, respond)) = guard.queue.pop_front() else {
                break;
            };
            let reply = process(inner, &mut guard, frame);
            replies.push((respond, reply));
        }
        guard.last_active = Instant::now();
        drop(guard);
        let answered = replies.len() as u64;
        for (respond, reply) in replies.drain(..) {
            respond(reply);
        }
        // Decrement only after the responders fired so `drain` cannot
        // conclude while answers are still in flight.
        inner.pending.fetch_sub(answered, Ordering::AcqRel);
    }
}

/// Applies one frame to a session under its lock.
fn process(inner: &GatewayInner, core: &mut SessionCore, frame: Frame) -> Reply {
    let session = frame.session();
    // A hello that reaches a session path (batched loopback) is still
    // connection-level: answered from the gateway's wire identity,
    // exempt from the closed flag and the frame budget.
    if let Frame::Hello {
        table_hash: peer_hash,
        version: peer_version,
        ..
    } = frame
    {
        return inner.hello_reply(session, peer_hash, peer_version);
    }
    let reject = |reason: RejectReason| {
        inner.stats.note_reject(reason);
        Reply::Rejected { session, reason }
    };
    if core.closed {
        return reject(RejectReason::Closed);
    }
    // Frame budget: an event/stall stream past the configured cap
    // expels the session — convict-or-evict, never buffer an abusive
    // session forever. `Close` is always admitted (it releases state).
    if !matches!(frame, Frame::Close { .. }) {
        let budget = inner.cfg.session_frame_budget;
        core.frames_seen += 1;
        if budget > 0 && core.frames_seen > budget {
            core.closed = true;
            inner.stats.note_expel();
            return reject(RejectReason::ResourceLimit);
        }
    }
    match frame {
        Frame::Event { event, .. } => {
            if inner.codec.event_of(event).is_none() {
                return reject(RejectReason::UnknownEvent);
            }
            let already = core.guard.convicted().is_some();
            match core.guard.observe(event) {
                Ok(()) => {
                    inner.stats.note_accept(event);
                    Reply::Accepted { session }
                }
                Err(conviction) => {
                    if already {
                        reject(RejectReason::Convicted)
                    } else {
                        inner.stats.note_conviction(&conviction);
                        reject(conviction.reject_reason())
                    }
                }
            }
        }
        Frame::Stall { .. } => {
            let already = core.guard.convicted().is_some();
            match core.guard.attest_stall() {
                Ok(()) => Reply::Accepted { session },
                Err(conviction) => {
                    if already {
                        reject(RejectReason::Convicted)
                    } else {
                        inner.stats.note_conviction(&conviction);
                        reject(conviction.reject_reason())
                    }
                }
            }
        }
        Frame::Close { .. } => {
            core.closed = true;
            Reply::Accepted { session }
        }
        Frame::Hello { .. } => unreachable!("hello answered before session processing"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn relay_system() -> (Spec, Spec) {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let mut b = SpecBuilder::new("service");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        (implementation, b.build().unwrap())
    }

    fn gateway(cfg: GatewayConfig) -> Gateway {
        let (implementation, service) = relay_system();
        Gateway::new(&[&implementation], &service, cfg).unwrap()
    }

    #[test]
    fn sessions_are_isolated_and_ordered() {
        let gw = gateway(GatewayConfig::default());
        let acc = gw
            .codec()
            .event_frame(1, protoquot_spec::EventId::new("acc"));
        let acc = acc.unwrap();
        assert_eq!(gw.call(acc), Reply::Accepted { session: 1 });
        // Session 2 starts fresh: `del` first is a service violation
        // there, while session 1 can take it.
        let del2 = gw
            .codec()
            .event_frame(2, protoquot_spec::EventId::new("del"))
            .unwrap();
        assert_eq!(
            gw.call(del2),
            Reply::Rejected {
                session: 2,
                reason: RejectReason::NotATrace,
            }
        );
        let del1 = gw
            .codec()
            .event_frame(1, protoquot_spec::EventId::new("del"))
            .unwrap();
        assert_eq!(gw.call(del1), Reply::Accepted { session: 1 });
        assert_eq!(gw.resident_sessions(), 2);
        let snap = gw.stats();
        assert_eq!(snap.sessions_opened, 2);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.convictions, 1);
        assert!(snap.guard_build.dfa_states > 0, "build stats must flow");
        gw.drain();
    }

    #[test]
    fn close_then_evict_removes_the_session() {
        let cfg = GatewayConfig {
            idle_timeout: Duration::from_millis(0),
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        assert_eq!(
            gw.call(Frame::Close { session: 9 }),
            Reply::Accepted { session: 9 }
        );
        let acc = gw
            .codec()
            .event_frame(9, protoquot_spec::EventId::new("acc"))
            .unwrap();
        assert_eq!(
            gw.call(acc),
            Reply::Rejected {
                session: 9,
                reason: RejectReason::Closed,
            }
        );
        // Drain first: the worker unschedules the session only after
        // answering its last frame.
        gw.drain();
        assert_eq!(gw.evict_idle(), 1);
        assert_eq!(gw.resident_sessions(), 0);
        let snap = gw.stats();
        assert_eq!(snap.sessions_closed, 1);
    }

    #[test]
    fn draining_rejects_new_frames() {
        let gw = gateway(GatewayConfig::default());
        gw.drain();
        let acc = gw
            .codec()
            .event_frame(3, protoquot_spec::EventId::new("acc"))
            .unwrap();
        assert_eq!(
            gw.call(acc),
            Reply::Rejected {
                session: 3,
                reason: RejectReason::Draining,
            }
        );
    }

    #[test]
    fn unknown_event_indices_bounce() {
        let gw = gateway(GatewayConfig::default());
        assert_eq!(
            gw.call(Frame::Event {
                session: 4,
                event: 999
            }),
            Reply::Rejected {
                session: 4,
                reason: RejectReason::UnknownEvent,
            }
        );
        gw.drain();
    }

    /// A session that overruns its frame budget is expelled: the
    /// overrunning frame bounces with `ResourceLimit`, later frames see
    /// `Closed`, other sessions are untouched, and the idle sweep
    /// removes the expelled core.
    #[test]
    fn frame_budget_expels_abusive_sessions() {
        let cfg = GatewayConfig {
            session_frame_budget: 4,
            idle_timeout: Duration::from_millis(0),
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        let acc = |s| {
            gw.codec()
                .event_frame(s, protoquot_spec::EventId::new("acc"))
                .unwrap()
        };
        let del = |s| {
            gw.codec()
                .event_frame(s, protoquot_spec::EventId::new("del"))
                .unwrap()
        };
        for _ in 0..2 {
            assert_eq!(gw.call(acc(1)), Reply::Accepted { session: 1 });
            assert_eq!(gw.call(del(1)), Reply::Accepted { session: 1 });
        }
        assert_eq!(
            gw.call(acc(1)),
            Reply::Rejected {
                session: 1,
                reason: RejectReason::ResourceLimit,
            }
        );
        assert_eq!(
            gw.call(del(1)),
            Reply::Rejected {
                session: 1,
                reason: RejectReason::Closed,
            }
        );
        // A well-behaved session is unaffected.
        assert_eq!(gw.call(acc(2)), Reply::Accepted { session: 2 });
        let snap = gw.stats();
        assert_eq!(snap.sessions_expelled, 1);
        assert!(snap.rejects.contains(&("resource_limit", 1)));
        gw.drain();
        assert_eq!(gw.evict_idle(), 2);
        assert_eq!(gw.resident_sessions(), 0);
        // The expelled session counts as closed by the sweep, not as an
        // idle eviction: it was terminated for cause, and `expelled`
        // already attributes the cause.
        assert_eq!(gw.stats().sessions_closed, 1);
    }

    #[test]
    fn many_sessions_in_parallel_stay_consistent() {
        let cfg = GatewayConfig {
            workers: 8,
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        let codec = gw.codec().clone();
        std::thread::scope(|scope| {
            for session in 0..32u64 {
                let gw = gw.clone();
                let codec = codec.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let acc = codec.event_frame(session, protoquot_spec::EventId::new("acc"));
                        assert_eq!(gw.call(acc.unwrap()), Reply::Accepted { session });
                        let del = codec.event_frame(session, protoquot_spec::EventId::new("del"));
                        assert_eq!(gw.call(del.unwrap()), Reply::Accepted { session });
                    }
                });
            }
        });
        let snap = gw.stats();
        assert_eq!(snap.accepted, 32 * 100);
        assert_eq!(snap.convictions, 0);
        gw.drain();
    }

    /// Batched execution is observationally equivalent to per-frame
    /// execution: for every session, the reply sequence produced by
    /// `call_batch` over an interleaved multi-session batch matches
    /// what sequential `call`s produce, and the stats agree.
    #[test]
    fn call_batch_matches_per_frame_replies() {
        let batched = gateway(GatewayConfig::default());
        let oracle = gateway(GatewayConfig::default());
        let ev = |gw: &Gateway, s, name| {
            gw.codec()
                .event_frame(s, protoquot_spec::EventId::new(name))
                .unwrap()
        };
        let frames: Vec<Frame> = vec![
            ev(&batched, 1, "acc"),
            ev(&batched, 2, "del"), // fresh-session violation: convicts 2
            ev(&batched, 1, "del"),
            Frame::Stall { session: 3 },
            ev(&batched, 2, "acc"), // already convicted
            ev(&batched, 1, "acc"),
            Frame::Close { session: 3 },
        ];
        let mut per_session: HashMap<u64, Vec<Reply>> = HashMap::new();
        for &frame in &frames {
            per_session
                .entry(frame.session())
                .or_default()
                .push(oracle.call(frame));
        }
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        let mut slow_frames = Vec::new();
        batched.call_batch(&frames, &mut scratch, &mut out, &mut |f| {
            slow_frames.push(f)
        });
        assert!(
            slow_frames.is_empty(),
            "uncontended sessions must stay inline"
        );
        // Replies come back grouped by session; per-session order must
        // match the oracle's.
        let mut rdec = crate::codec::ReplyBuffer::new();
        rdec.extend(&out);
        let mut batched_per_session: HashMap<u64, Vec<Reply>> = HashMap::new();
        while let Some(reply) = rdec.next_reply().unwrap() {
            batched_per_session
                .entry(reply.session())
                .or_default()
                .push(reply);
        }
        assert_eq!(batched_per_session, per_session);
        let (a, b) = (batched.stats(), oracle.stats());
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.convictions, b.convictions);
        assert_eq!(a.rejects, b.rejects);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.batches, 1);
        assert_eq!(a.batch_frames, frames.len() as u64);
        assert_eq!(a.batch_inline, frames.len() as u64);
        assert_eq!(a.batch_slow, 0);
        batched.drain();
        oracle.drain();
    }

    /// A draining gateway bounces a whole batch with per-frame
    /// `Draining` rejects, still encoded into the caller's buffer.
    #[test]
    fn call_batch_rejects_everything_while_draining() {
        let gw = gateway(GatewayConfig::default());
        gw.drain();
        let frames = [
            Frame::Stall { session: 7 },
            Frame::Close { session: 8 },
            Frame::Stall { session: 7 },
        ];
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        gw.call_batch(&frames, &mut scratch, &mut out, &mut |_| {
            panic!("draining batches never take the slow path")
        });
        let mut rdec = crate::codec::ReplyBuffer::new();
        rdec.extend(&out);
        let mut replies = Vec::new();
        while let Some(reply) = rdec.next_reply().unwrap() {
            replies.push(reply);
        }
        let rej = |session| Reply::Rejected {
            session,
            reason: RejectReason::Draining,
        };
        assert_eq!(replies, vec![rej(7), rej(8), rej(7)]);
    }

    /// A session with queued work is never processed inline — all of
    /// its frames in the batch route through the `slow` callback, in
    /// order, while other sessions in the same batch stay inline.
    #[test]
    fn call_batch_routes_contended_sessions_to_slow_path() {
        let gw = gateway(GatewayConfig::default());
        // Queue a frame on session 1 behind a responder that blocks
        // until we release it, so the session stays scheduled.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        gw.submit(
            Frame::Stall { session: 1 },
            Box::new(move |_| {
                let _ = entered_tx.send(());
                let _ = release_rx.recv();
            }),
        );
        entered_rx.recv().unwrap();
        // While the worker is parked inside session 1's responder, a
        // second frame keeps its queue non-empty.
        gw.submit(Frame::Stall { session: 1 }, Box::new(|_| {}));
        let frames = [
            Frame::Stall { session: 1 },
            Frame::Stall { session: 2 },
            Frame::Close { session: 1 },
        ];
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        let mut slow_frames = Vec::new();
        gw.call_batch(&frames, &mut scratch, &mut out, &mut |f| {
            slow_frames.push(f)
        });
        assert_eq!(
            slow_frames,
            vec![Frame::Stall { session: 1 }, Frame::Close { session: 1 }]
        );
        let mut rdec = crate::codec::ReplyBuffer::new();
        rdec.extend(&out);
        assert_eq!(
            rdec.next_reply().unwrap(),
            Some(Reply::Accepted { session: 2 })
        );
        assert_eq!(rdec.next_reply().unwrap(), None);
        let snap = gw.stats();
        assert_eq!(snap.batch_inline, 1);
        assert_eq!(snap.batch_slow, 2);
        release_tx.send(()).unwrap();
        // The caller owns slow-path forwarding; mirror what transports
        // do so the campaign accounting stays balanced.
        for frame in slow_frames {
            gw.submit(frame, Box::new(|_| {}));
        }
        gw.drain();
    }

    /// The reference-guard configuration must answer every frame the
    /// way the DFA gateway does — including over the queued worker
    /// path, exercised here by submitting bursts with responders
    /// instead of lockstep calls.
    #[test]
    fn reference_guard_gateway_matches_dfa_replies() {
        let dfa = gateway(GatewayConfig::default());
        let reference = gateway(GatewayConfig {
            reference_guard: true,
            ..GatewayConfig::default()
        });
        let script: &[(&str, u64)] = &[
            ("acc", 1),
            ("del", 1),
            ("del", 1), // not-a-trace: convicts session 1
            ("acc", 1), // already convicted
            ("del", 2), // service violation path on a fresh session
            ("acc", 3),
        ];
        for gw in [&dfa, &reference] {
            let (tx, _rx) = mpsc::channel();
            for &(name, session) in script {
                let frame = gw
                    .codec()
                    .event_frame(session, protoquot_spec::EventId::new(name))
                    .unwrap();
                let tx = tx.clone();
                gw.submit(
                    frame,
                    Box::new(move |reply| {
                        let _ = tx.send(reply);
                    }),
                );
            }
            gw.drain();
        }
        let (a, b) = (dfa.stats(), reference.stats());
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.convictions, b.convictions);
        assert_eq!(a.rejects, b.rejects);
    }

    /// A behaviourally identical implementation with renamed states:
    /// same alphabet (same event table, same wire identity), distinct
    /// compiled program — the shape of a legitimate converter rev.
    fn relay_system_v2() -> (Spec, Spec) {
        let mut b = SpecBuilder::new("impl-v2");
        let t0 = b.state("t0");
        let t1 = b.state("t1");
        b.ext(t0, "acc", t1);
        b.ext(t1, "del", t0);
        let implementation = b.build().unwrap();
        let (_, service) = relay_system();
        (implementation, service)
    }

    #[test]
    fn hello_negotiation_acks_match_and_rejects_mismatch() {
        let gw = gateway(GatewayConfig::default());
        let hash = gw.table_hash();
        assert_ne!(hash, 0);
        // Matching hash, unpinned version: ack with our identity.
        assert_eq!(
            gw.call(Frame::Hello {
                session: 0,
                table_hash: hash,
                version: 0,
            }),
            Reply::HelloAck {
                session: 0,
                table_hash: hash,
                version: 1,
            }
        );
        // Pinning the active version also acks.
        assert_eq!(
            gw.call(Frame::Hello {
                session: 0,
                table_hash: hash,
                version: 1,
            }),
            Reply::HelloAck {
                session: 0,
                table_hash: hash,
                version: 1,
            }
        );
        // A peer speaking a different event table is turned away.
        assert_eq!(
            gw.call(Frame::Hello {
                session: 0,
                table_hash: hash ^ 1,
                version: 0,
            }),
            Reply::Rejected {
                session: 0,
                reason: RejectReason::VersionMismatch,
            }
        );
        // So is one pinned to a version we no longer (or never) serve.
        assert_eq!(
            gw.call(Frame::Hello {
                session: 0,
                table_hash: hash,
                version: 7,
            }),
            Reply::Rejected {
                session: 0,
                reason: RejectReason::VersionMismatch,
            }
        );
        // Negotiation is connection-level: no session state was made.
        assert_eq!(gw.resident_sessions(), 0);
        let snap = gw.stats();
        assert_eq!(snap.sessions_opened, 0);
        assert!(snap.rejects.contains(&("version_mismatch", 2)));
        assert_eq!(snap.table_hash, hash);
        assert_eq!(snap.active_version, 1);
        gw.drain();
    }

    #[test]
    fn hot_swap_binds_new_sessions_and_drains_old_before_retiring() {
        let cfg = GatewayConfig {
            idle_timeout: Duration::from_millis(0),
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        let acc = |s| {
            gw.codec()
                .event_frame(s, protoquot_spec::EventId::new("acc"))
                .unwrap()
        };
        // Session 1 opens on version 1.
        assert_eq!(gw.call(acc(1)), Reply::Accepted { session: 1 });
        // Swap in the rev: same event table, new program, version 2.
        let (impl2, service) = relay_system_v2();
        let prog2 = Arc::new(GuardProgram::new(&[&impl2], &service).unwrap());
        gw.swap(2, Arc::clone(&prog2)).unwrap();
        assert_eq!(gw.active_version(), 2);
        // Session 1 keeps draining on v1; session 2 binds v2.
        let del1 = gw
            .codec()
            .event_frame(1, protoquot_spec::EventId::new("del"))
            .unwrap();
        assert_eq!(gw.call(del1), Reply::Accepted { session: 1 });
        assert_eq!(gw.call(acc(2)), Reply::Accepted { session: 2 });
        let snap = gw.stats();
        assert_eq!(snap.active_version, 2);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.version_sessions, vec![(1, 1), (2, 1)]);
        // A third version is refused while v1 still drains (N-1).
        let err = gw.swap(3, Arc::clone(&prog2)).unwrap_err();
        assert!(matches!(err, GatewayError::Swap(_)), "{err}");
        // Stale or duplicate version numbers are refused outright.
        assert!(gw.swap(2, Arc::clone(&prog2)).is_err());
        // A program speaking a different event table can never go live.
        let mut b = SpecBuilder::new("other");
        let s0 = b.state("s0");
        b.ext(s0, "foo", s0);
        let other = b.build().unwrap();
        let mut b = SpecBuilder::new("other-svc");
        let u0 = b.state("u0");
        b.ext(u0, "foo", u0);
        let other_svc = b.build().unwrap();
        let alien = Arc::new(GuardProgram::new(&[&other], &other_svc).unwrap());
        assert!(matches!(gw.swap(3, alien), Err(GatewayError::Swap(_))));
        // Drain v1: close its session, sweep it out — v1 retires and
        // the next swap is admitted.
        assert_eq!(
            gw.call(Frame::Close { session: 1 }),
            Reply::Accepted { session: 1 }
        );
        gw.drain();
        gw.evict_idle();
        let snap = gw.stats();
        assert_eq!(snap.versions_retired, 1);
        // The zero-timeout sweep also evicted session 2, so no version
        // holds sessions — but the *active* version never retires.
        assert_eq!(snap.version_sessions, vec![]);
        gw.swap(3, prog2).unwrap();
        assert_eq!(gw.active_version(), 3);
    }
}
