//! The session-multiplexed relay gateway.
//!
//! A [`Gateway`] owns one compiled [`GuardProgram`] and a sharded
//! session table: `session id → SessionCore` (guard state plus a
//! bounded frame queue), spread over `shards` stripe-locked maps.
//! Frames are submitted with a responder callback; a worker from the
//! shared [`threadpool::ThreadPool`] drains each session's queue in
//! order, so per-session processing is serialized while distinct
//! sessions proceed in parallel.
//!
//! Flow control and lifecycle:
//!
//! * a full per-session queue rejects new frames with
//!   [`RejectReason::Backpressure`] instead of buffering unboundedly;
//! * [`Gateway::evict_idle`] sweeps sessions idle past the configured
//!   timeout (only when unscheduled with an empty queue);
//! * [`Gateway::drain`] stops admitting frames
//!   ([`RejectReason::Draining`]) and blocks until every queued frame
//!   has been answered — graceful shutdown.
//!
//! Lock order is always shard map → session core, and each is dropped
//! before the next is taken on the submit path, so the gateway cannot
//! deadlock against its own workers.

use crate::codec::{Frame, RejectReason, Reply, WireCodec};
use crate::guard::{GuardProgram, SessionGuard};
use crate::stats::{RuntimeStats, StatsSnapshot};
use protoquot_spec::{Spec, SpecError};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use threadpool::ThreadPool;

/// Tuning knobs of a [`Gateway`].
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Worker threads draining session queues.
    pub workers: usize,
    /// Stripe-locked shards of the session table.
    pub shards: usize,
    /// Per-session queue bound; beyond it frames bounce with
    /// [`RejectReason::Backpressure`].
    pub queue_cap: usize,
    /// Idle time after which [`Gateway::evict_idle`] removes a session.
    pub idle_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            workers: 4,
            shards: 8,
            queue_cap: 64,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Callback answering one submitted frame.
pub type Responder = Box<dyn FnOnce(Reply) + Send>;

struct SessionCore {
    guard: SessionGuard,
    queue: VecDeque<(Frame, Responder)>,
    scheduled: bool,
    closed: bool,
    last_active: Instant,
}

type Shard = Mutex<HashMap<u64, Arc<Mutex<SessionCore>>>>;

struct GatewayInner {
    prog: Arc<GuardProgram>,
    codec: WireCodec,
    stats: RuntimeStats,
    shards: Vec<Shard>,
    pool: ThreadPool,
    /// Frames accepted into some queue but not yet answered.
    pending: AtomicU64,
    draining: AtomicBool,
    cfg: GatewayConfig,
}

/// A cloneable handle to one running gateway.
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<GatewayInner>,
}

impl Gateway {
    /// Compiles `parts` (components plus the derived converter) against
    /// `service` and starts a gateway with `cfg.workers` threads.
    pub fn new(parts: &[&Spec], service: &Spec, cfg: GatewayConfig) -> Result<Gateway, SpecError> {
        let prog = Arc::new(GuardProgram::new(parts, service)?);
        let codec = WireCodec::from_table(Arc::clone(prog.table()));
        let stats = RuntimeStats::new(codec.table().len());
        let shards = (0..cfg.shards.max(1)).map(|_| Shard::default()).collect();
        let pool = ThreadPool::new(cfg.workers.max(1));
        Ok(Gateway {
            inner: Arc::new(GatewayInner {
                prog,
                codec,
                stats,
                shards,
                pool,
                pending: AtomicU64::new(0),
                draining: AtomicBool::new(false),
                cfg,
            }),
        })
    }

    /// The wire codec (shared event table) of this gateway.
    pub fn codec(&self) -> &WireCodec {
        &self.inner.codec
    }

    /// Submits one frame; `respond` fires exactly once with the reply,
    /// possibly on a worker thread.
    pub fn submit(&self, frame: Frame, respond: Responder) {
        let inner = &self.inner;
        inner.stats.note_frame();
        let session = frame.session();
        if inner.draining.load(Ordering::Acquire) {
            inner.stats.note_reject(RejectReason::Draining);
            respond(Reply::Rejected {
                session,
                reason: RejectReason::Draining,
            });
            return;
        }
        let shard = &inner.shards[(session % inner.shards.len() as u64) as usize];
        let core = {
            let mut map = shard.lock().unwrap();
            Arc::clone(map.entry(session).or_insert_with(|| {
                inner.stats.note_open();
                Arc::new(Mutex::new(SessionCore {
                    guard: SessionGuard::new(Arc::clone(&inner.prog)),
                    queue: VecDeque::new(),
                    scheduled: false,
                    closed: false,
                    last_active: Instant::now(),
                }))
            }))
        };
        let schedule = {
            let mut core = core.lock().unwrap();
            if core.queue.len() >= inner.cfg.queue_cap {
                drop(core);
                inner.stats.note_reject(RejectReason::Backpressure);
                respond(Reply::Rejected {
                    session,
                    reason: RejectReason::Backpressure,
                });
                return;
            }
            core.queue.push_back((frame, respond));
            inner.stats.note_queue_depth(core.queue.len());
            inner.pending.fetch_add(1, Ordering::AcqRel);
            if core.scheduled {
                false
            } else {
                core.scheduled = true;
                true
            }
        };
        if schedule {
            let inner = Arc::clone(&self.inner);
            let core = Arc::clone(&core);
            self.inner
                .pool
                .execute(move || drain_session(&inner, &core, session));
        }
    }

    /// Submits `frame` and blocks for the reply (loopback-style use).
    pub fn call(&self, frame: Frame) -> Reply {
        let (tx, rx) = mpsc::channel();
        self.submit(
            frame,
            Box::new(move |reply| {
                let _ = tx.send(reply);
            }),
        );
        rx.recv().expect("gateway dropped a responder")
    }

    /// Removes sessions idle longer than the configured timeout.
    /// Returns how many were evicted.
    pub fn evict_idle(&self) -> usize {
        let inner = &self.inner;
        let mut evicted = 0;
        for shard in &inner.shards {
            let mut map = shard.lock().unwrap();
            map.retain(|_, core| {
                let core = core.lock().unwrap();
                let stale = !core.scheduled
                    && core.queue.is_empty()
                    && core.last_active.elapsed() >= inner.cfg.idle_timeout;
                if stale {
                    if core.closed {
                        inner.stats.note_close();
                    } else {
                        inner.stats.note_evict();
                    }
                    evicted += 1;
                }
                !stale
            });
        }
        evicted
    }

    /// Stops admitting frames and waits until every queued frame has
    /// been answered and all workers are idle.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::Release);
        while self.inner.pending.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.pool.join();
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(self.inner.codec.table())
    }

    /// Sessions currently resident in the table.
    pub fn resident_sessions(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.lock().unwrap().len())
            .sum()
    }
}

/// Worker job: drains one session's queue to empty, answering each
/// frame in order, then unschedules itself.
fn drain_session(inner: &Arc<GatewayInner>, core: &Arc<Mutex<SessionCore>>, _session: u64) {
    loop {
        let mut guard = core.lock().unwrap();
        match guard.queue.pop_front() {
            Some((frame, respond)) => {
                let reply = process(inner, &mut guard, frame);
                guard.last_active = Instant::now();
                drop(guard);
                respond(reply);
                inner.pending.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                guard.scheduled = false;
                return;
            }
        }
    }
}

/// Applies one frame to a session under its lock.
fn process(inner: &GatewayInner, core: &mut SessionCore, frame: Frame) -> Reply {
    let session = frame.session();
    let reject = |reason: RejectReason| {
        inner.stats.note_reject(reason);
        Reply::Rejected { session, reason }
    };
    if core.closed {
        return reject(RejectReason::Closed);
    }
    match frame {
        Frame::Event { event, .. } => {
            if inner.codec.event_of(event).is_none() {
                return reject(RejectReason::UnknownEvent);
            }
            let already = core.guard.convicted().is_some();
            match core.guard.observe(event) {
                Ok(()) => {
                    inner.stats.note_accept(event);
                    Reply::Accepted { session }
                }
                Err(conviction) => {
                    if already {
                        reject(RejectReason::Convicted)
                    } else {
                        inner.stats.note_conviction(&conviction);
                        reject(conviction.reject_reason())
                    }
                }
            }
        }
        Frame::Stall { .. } => {
            let already = core.guard.convicted().is_some();
            match core.guard.attest_stall() {
                Ok(()) => Reply::Accepted { session },
                Err(conviction) => {
                    if already {
                        reject(RejectReason::Convicted)
                    } else {
                        inner.stats.note_conviction(&conviction);
                        reject(conviction.reject_reason())
                    }
                }
            }
        }
        Frame::Close { .. } => {
            core.closed = true;
            Reply::Accepted { session }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn relay_system() -> (Spec, Spec) {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let mut b = SpecBuilder::new("service");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        (implementation, b.build().unwrap())
    }

    fn gateway(cfg: GatewayConfig) -> Gateway {
        let (implementation, service) = relay_system();
        Gateway::new(&[&implementation], &service, cfg).unwrap()
    }

    #[test]
    fn sessions_are_isolated_and_ordered() {
        let gw = gateway(GatewayConfig::default());
        let acc = gw
            .codec()
            .event_frame(1, protoquot_spec::EventId::new("acc"));
        let acc = acc.unwrap();
        assert_eq!(gw.call(acc), Reply::Accepted { session: 1 });
        // Session 2 starts fresh: `del` first is a service violation
        // there, while session 1 can take it.
        let del2 = gw
            .codec()
            .event_frame(2, protoquot_spec::EventId::new("del"))
            .unwrap();
        assert_eq!(
            gw.call(del2),
            Reply::Rejected {
                session: 2,
                reason: RejectReason::NotATrace,
            }
        );
        let del1 = gw
            .codec()
            .event_frame(1, protoquot_spec::EventId::new("del"))
            .unwrap();
        assert_eq!(gw.call(del1), Reply::Accepted { session: 1 });
        assert_eq!(gw.resident_sessions(), 2);
        let snap = gw.stats();
        assert_eq!(snap.sessions_opened, 2);
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.convictions, 1);
        gw.drain();
    }

    #[test]
    fn close_then_evict_removes_the_session() {
        let cfg = GatewayConfig {
            idle_timeout: Duration::from_millis(0),
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        assert_eq!(
            gw.call(Frame::Close { session: 9 }),
            Reply::Accepted { session: 9 }
        );
        let acc = gw
            .codec()
            .event_frame(9, protoquot_spec::EventId::new("acc"))
            .unwrap();
        assert_eq!(
            gw.call(acc),
            Reply::Rejected {
                session: 9,
                reason: RejectReason::Closed,
            }
        );
        // Drain first: the worker unschedules the session only after
        // answering its last frame.
        gw.drain();
        assert_eq!(gw.evict_idle(), 1);
        assert_eq!(gw.resident_sessions(), 0);
        let snap = gw.stats();
        assert_eq!(snap.sessions_closed, 1);
    }

    #[test]
    fn draining_rejects_new_frames() {
        let gw = gateway(GatewayConfig::default());
        gw.drain();
        let acc = gw
            .codec()
            .event_frame(3, protoquot_spec::EventId::new("acc"))
            .unwrap();
        assert_eq!(
            gw.call(acc),
            Reply::Rejected {
                session: 3,
                reason: RejectReason::Draining,
            }
        );
    }

    #[test]
    fn unknown_event_indices_bounce() {
        let gw = gateway(GatewayConfig::default());
        assert_eq!(
            gw.call(Frame::Event {
                session: 4,
                event: 999
            }),
            Reply::Rejected {
                session: 4,
                reason: RejectReason::UnknownEvent,
            }
        );
        gw.drain();
    }

    #[test]
    fn many_sessions_in_parallel_stay_consistent() {
        let cfg = GatewayConfig {
            workers: 8,
            ..GatewayConfig::default()
        };
        let gw = gateway(cfg);
        let codec = gw.codec().clone();
        std::thread::scope(|scope| {
            for session in 0..32u64 {
                let gw = gw.clone();
                let codec = codec.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let acc = codec.event_frame(session, protoquot_spec::EventId::new("acc"));
                        assert_eq!(gw.call(acc.unwrap()), Reply::Accepted { session });
                        let del = codec.event_frame(session, protoquot_spec::EventId::new("del"));
                        assert_eq!(gw.call(del.unwrap()), Reply::Accepted { session });
                    }
                });
            }
        });
        let snap = gw.stats();
        assert_eq!(snap.accepted, 32 * 100);
        assert_eq!(snap.convictions, 0);
        gw.drain();
    }
}
