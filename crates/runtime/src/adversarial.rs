//! Hostile load generation: `protoquot drive --adversarial`.
//!
//! Eight scripted attacks against a serving gateway's wire endpoint,
//! every one a behavior the soak fleet can never produce (its faults
//! are by construction genuine traces): garbage bytes, truncated
//! length prefixes, out-of-range event indices, session floods,
//! connection churn, slow-drip partial frames, backpressure abuse, and
//! frames to closed sessions. The campaign asserts the runtime's
//! convict-or-evict invariant from the *attacker's* seat: every
//! abusive frame must end in a reply, a rejection, or a cut
//! connection — never in a stall.
//!
//! All attacks are lockstep and scripted (no randomness, no
//! concurrency), so the resulting [`AdversarialReport`] is
//! deterministic for a given server configuration: running the same
//! campaign against the blocking [`crate::transport::TcpServer`] and
//! the epoll [`crate::transport::ReactorServer`] in front of the same
//! gateway must produce byte-identical JSON — pinned by
//! `tests/adversarial_wire.rs`. The one timing-sensitive attack
//! (`slow_drip`) is deterministic as long as the campaign's hold
//! dwarfs the server's read deadline (or the deadline is disabled, in
//! which case the drip completes and is answered).
//!
//! Attacks use disjoint session-id ranges (1_000_000 apart) so their
//! gateway-side footprints cannot interact.

use crate::codec::{read_reply, Frame, Reply};
use serde::Value;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Tuning of one adversarial campaign.
#[derive(Clone, Debug)]
pub struct AdversarialConfig {
    /// Frames per frame-oriented attack.
    pub frames_per_attack: u64,
    /// Connections opened by the churn attack.
    pub churn_conns: u64,
    /// How long the slow-drip attack holds its unfinished frame. Must
    /// dwarf the server's read deadline for the eviction outcome to be
    /// deterministic (or the deadline is disabled and the drip is
    /// answered).
    pub drip_hold: Duration,
    /// Socket read timeout — a reply this late is a stall, and stalls
    /// are exactly what the campaign exists to rule out.
    pub read_timeout: Duration,
}

impl Default for AdversarialConfig {
    fn default() -> AdversarialConfig {
        AdversarialConfig {
            frames_per_attack: 64,
            churn_conns: 32,
            drip_hold: Duration::from_millis(400),
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// What one attack observed.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Attack name (stable report key).
    pub name: &'static str,
    /// Frames (or, for byte-level attacks, messages) sent.
    pub frames_sent: u64,
    /// Bytes written to the socket.
    pub bytes_sent: u64,
    /// Replies received.
    pub replies: u64,
    /// Accepted replies among them.
    pub accepted: u64,
    /// Reject-reason histogram. Omitted (left empty) by the
    /// backpressure attack, whose accept/reject mix depends on worker
    /// scheduling; every other attack's mix is deterministic.
    pub rejects: BTreeMap<String, u64>,
    /// The server cut the connection.
    pub conn_cut: bool,
    /// The attack was neutralized: every abusive frame was answered or
    /// the connection was cut — the server never stalled the attacker
    /// and never accepted what it should refuse.
    pub neutralized: bool,
}

impl AttackOutcome {
    fn new(name: &'static str) -> AttackOutcome {
        AttackOutcome {
            name,
            frames_sent: 0,
            bytes_sent: 0,
            replies: 0,
            accepted: 0,
            rejects: BTreeMap::new(),
            conn_cut: false,
            neutralized: false,
        }
    }

    /// The outcome as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("name".into(), Value::Str(self.name.to_string()));
        o.insert("frames_sent".into(), Value::Int(self.frames_sent as i128));
        o.insert("bytes_sent".into(), Value::Int(self.bytes_sent as i128));
        o.insert("replies".into(), Value::Int(self.replies as i128));
        o.insert("accepted".into(), Value::Int(self.accepted as i128));
        let mut rejects = BTreeMap::new();
        for (reason, n) in &self.rejects {
            rejects.insert(reason.clone(), Value::Int(*n as i128));
        }
        o.insert("rejects".into(), Value::Obj(rejects));
        o.insert("conn_cut".into(), Value::Bool(self.conn_cut));
        o.insert("neutralized".into(), Value::Bool(self.neutralized));
        Value::Obj(o)
    }
}

/// Aggregated result of one adversarial campaign.
#[derive(Clone, Debug)]
pub struct AdversarialReport {
    /// Per-attack outcomes, in campaign order.
    pub attacks: Vec<AttackOutcome>,
}

impl AdversarialReport {
    /// Every attack was neutralized.
    pub fn is_contained(&self) -> bool {
        self.attacks.iter().all(|a| a.neutralized)
    }

    /// The report as a JSON value tree (timing never enters it).
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert(
            "attacks".into(),
            Value::Arr(self.attacks.iter().map(AttackOutcome::to_value).collect()),
        );
        o.insert("contained".into(), Value::Bool(self.is_contained()));
        Value::Obj(o)
    }

    /// The report as a compact JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("report serialization cannot fail")
    }
}

impl std::fmt::Display for AdversarialReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "adversarial campaign: {} attacks, {}",
            self.attacks.len(),
            if self.is_contained() {
                "all neutralized"
            } else {
                "NOT CONTAINED"
            }
        )?;
        for a in &self.attacks {
            write!(
                f,
                "  {:<13} frames {:>4} bytes {:>6} replies {:>4} accepted {:>4} cut {:<5} {}",
                a.name,
                a.frames_sent,
                a.bytes_sent,
                a.replies,
                a.accepted,
                a.conn_cut,
                if a.neutralized {
                    "neutralized"
                } else {
                    "SURVIVED"
                }
            )?;
            if !a.rejects.is_empty() {
                let mix: Vec<String> = a.rejects.iter().map(|(r, n)| format!("{r}={n}")).collect();
                write!(f, " [{}]", mix.join(" "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Session-id bases, one disjoint range per attack.
const BAD_EVENT_BASE: u64 = 1_000_000;
const FLOOD_BASE: u64 = 2_000_000;
const CHURN_BASE: u64 = 3_000_000;
const BACKPRESSURE_BASE: u64 = 4_000_000;
const ZOMBIE_BASE: u64 = 5_000_000;
const DRIP_BASE: u64 = 6_000_000;

/// Runs the full attack battery against the gateway serving at `addr`
/// (blocking or reactor — the campaign cannot tell and the report must
/// not differ).
pub fn adversarial<A: ToSocketAddrs + Clone>(
    addr: A,
    cfg: &AdversarialConfig,
) -> io::Result<AdversarialReport> {
    let attacks = vec![
        garbage(addr.clone(), cfg)?,
        truncated(addr.clone(), cfg)?,
        bad_event(addr.clone(), cfg)?,
        session_flood(addr.clone(), cfg)?,
        churn(addr.clone(), cfg)?,
        slow_drip(addr.clone(), cfg)?,
        backpressure(addr.clone(), cfg)?,
        zombie(addr, cfg)?,
    ];
    Ok(AdversarialReport { attacks })
}

fn connect<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    Ok(stream)
}

/// Reads one reply, classifying the connection state.
enum ReadOutcome {
    Reply(Reply),
    /// EOF or reset: the server cut us off.
    Cut,
    /// Read timeout: the server stalled — the one outcome the runtime
    /// must never produce.
    Stall,
}

fn read_one(stream: &mut TcpStream) -> ReadOutcome {
    match read_reply(stream) {
        Ok(Some(reply)) => ReadOutcome::Reply(reply),
        Ok(None) => ReadOutcome::Cut,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            ReadOutcome::Stall
        }
        Err(_) => ReadOutcome::Cut,
    }
}

fn note_reply(out: &mut AttackOutcome, reply: &Reply) {
    out.replies += 1;
    match reply {
        Reply::Accepted { .. } => out.accepted += 1,
        Reply::Rejected { reason, .. } => {
            *out.rejects.entry(reason.name().to_string()).or_insert(0) += 1;
        }
        // Connection-plane: only ever answers a Hello, which no attack
        // sends; counted in `replies` but classified as neither.
        Reply::HelloAck { .. } => {}
    }
}

/// Sends `frame` and waits for its reply lockstep; returns `false`
/// when the exchange cannot continue (cut or stall).
fn exchange(stream: &mut TcpStream, frame: &Frame, out: &mut AttackOutcome) -> bool {
    let mut bytes = Vec::with_capacity(16);
    crate::codec::encode_frame(frame, &mut bytes);
    out.bytes_sent += bytes.len() as u64;
    if stream.write_all(&bytes).is_err() {
        out.conn_cut = true;
        return false;
    }
    out.frames_sent += 1;
    match read_one(stream) {
        ReadOutcome::Reply(reply) => {
            note_reply(out, &reply);
            true
        }
        ReadOutcome::Cut => {
            out.conn_cut = true;
            false
        }
        ReadOutcome::Stall => false,
    }
}

/// Pure garbage: bytes that are not even a plausible length prefix
/// (leading `0xFF` makes the declared length absurd). The only
/// acceptable server response is cutting the connection.
fn garbage<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("garbage");
    let mut stream = connect(addr, cfg)?;
    let mut bytes = vec![0xFFu8; 64];
    for (i, b) in bytes.iter_mut().enumerate().skip(1) {
        *b = (i as u8).wrapping_mul(37) ^ 0x5A;
    }
    out.bytes_sent = bytes.len() as u64;
    out.frames_sent = 1;
    if stream.write_all(&bytes).is_err() {
        out.conn_cut = true;
    } else {
        out.conn_cut = matches!(read_one(&mut stream), ReadOutcome::Cut);
    }
    out.neutralized = out.conn_cut;
    Ok(out)
}

/// A truncated frame: a valid header minus its last byte, then EOF.
/// The server must treat the torn tail as protocol damage and cut.
fn truncated<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("truncated");
    let mut stream = connect(addr, cfg)?;
    let mut bytes = Vec::new();
    crate::codec::encode_frame(
        &Frame::Event {
            session: 7,
            event: 0,
        },
        &mut bytes,
    );
    bytes.pop();
    out.bytes_sent = bytes.len() as u64;
    out.frames_sent = 1;
    if stream.write_all(&bytes).is_err() {
        out.conn_cut = true;
    } else {
        let _ = stream.shutdown(Shutdown::Write);
        out.conn_cut = matches!(read_one(&mut stream), ReadOutcome::Cut);
    }
    out.neutralized = out.conn_cut;
    Ok(out)
}

/// Out-of-range event indices: every frame parses but names an event
/// the shared table does not have. Every one must bounce.
fn bad_event<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("bad_event");
    let mut stream = connect(addr, cfg)?;
    for i in 0..cfg.frames_per_attack {
        let frame = Frame::Event {
            session: BAD_EVENT_BASE + 1,
            event: u16::MAX - (i % 7) as u16,
        };
        if !exchange(&mut stream, &frame, &mut out) {
            break;
        }
    }
    // The final Close is legitimate housekeeping; its accept does not
    // count against the attack.
    let bad_accepted = out.accepted;
    let _ = exchange(
        &mut stream,
        &Frame::Close {
            session: BAD_EVENT_BASE + 1,
        },
        &mut out,
    );
    out.neutralized = bad_accepted == 0 && (out.replies == out.frames_sent || out.conn_cut);
    Ok(out)
}

/// A session-id flood: every frame opens a fresh session on one
/// connection. With a per-connection session cap the overflow must
/// bounce with `resource_limit`; without one, every session must still
/// be answered and closed — and never stall the pool.
fn session_flood<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("session_flood");
    let mut stream = connect(addr, cfg)?;
    let n = cfg.frames_per_attack;
    for i in 0..n {
        let frame = Frame::Event {
            session: FLOOD_BASE + i,
            event: 0,
        };
        if !exchange(&mut stream, &frame, &mut out) {
            break;
        }
    }
    for i in 0..n {
        if !exchange(
            &mut stream,
            &Frame::Close {
                session: FLOOD_BASE + i,
            },
            &mut out,
        ) {
            break;
        }
    }
    out.neutralized = out.replies == out.frames_sent || out.conn_cut;
    Ok(out)
}

/// Connection churn: open, send one frame, read its reply, drop the
/// socket without closing the session — repeatedly. The server must
/// keep answering fresh connections (its idle sweep owns the corpses).
fn churn<A: ToSocketAddrs + Clone>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("churn");
    for i in 0..cfg.churn_conns {
        let mut stream = connect(addr.clone(), cfg)?;
        let frame = Frame::Event {
            session: CHURN_BASE + i,
            event: 0,
        };
        if !exchange(&mut stream, &frame, &mut out) {
            break;
        }
        // Drop without Close: an abandoned session every time.
    }
    out.neutralized = out.replies == out.frames_sent;
    Ok(out)
}

/// Slow drip: a frame minus its final byte, then silence. A server
/// with a read deadline must evict the dripper; one without must
/// simply wait it out and answer when the byte finally lands. Either
/// way, no stall.
fn slow_drip<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("slow_drip");
    let mut stream = connect(addr, cfg)?;
    let mut bytes = Vec::new();
    crate::codec::encode_frame(
        &Frame::Event {
            session: DRIP_BASE,
            event: 0,
        },
        &mut bytes,
    );
    let last = bytes.pop().expect("an encoded frame is never empty");
    out.bytes_sent = bytes.len() as u64;
    out.frames_sent = 1;
    if stream.write_all(&bytes).is_err() {
        out.conn_cut = true;
        out.neutralized = true;
        return Ok(out);
    }
    std::thread::sleep(cfg.drip_hold);
    // Probe: has the server cut us already (deadline eviction)?
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("socket accepts a read timeout");
    match read_one(&mut stream) {
        ReadOutcome::Cut => {
            out.conn_cut = true;
            out.neutralized = true;
            return Ok(out);
        }
        ReadOutcome::Stall => {} // still connected; finish the frame
        ReadOutcome::Reply(reply) => {
            // A reply to an unfinished frame is corruption.
            note_reply(&mut out, &reply);
            return Ok(out);
        }
    }
    stream
        .set_read_timeout(Some(cfg.read_timeout))
        .expect("socket accepts a read timeout");
    if stream.write_all(&[last]).is_err() {
        out.conn_cut = true;
        out.neutralized = true;
        return Ok(out);
    }
    out.bytes_sent += 1;
    match read_one(&mut stream) {
        ReadOutcome::Reply(reply) => {
            note_reply(&mut out, &reply);
            out.neutralized = true;
            let _ = exchange(&mut stream, &Frame::Close { session: DRIP_BASE }, &mut out);
        }
        ReadOutcome::Cut => {
            out.conn_cut = true;
            out.neutralized = true;
        }
        ReadOutcome::Stall => {}
    }
    Ok(out)
}

/// Backpressure abuse: a burst of frames on one session without
/// reading a single reply, then drain them all. The session's bounded
/// queue may bounce any prefix of the burst (`backpressure`), but
/// every frame must be answered. The accept/reject mix depends on
/// worker scheduling, so this outcome reports totals only.
fn backpressure<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("backpressure");
    let mut stream = connect(addr, cfg)?;
    let n = cfg.frames_per_attack * 4;
    let mut burst = Vec::new();
    for _ in 0..n {
        crate::codec::encode_frame(
            &Frame::Event {
                session: BACKPRESSURE_BASE,
                event: 0,
            },
            &mut burst,
        );
    }
    crate::codec::encode_frame(
        &Frame::Close {
            session: BACKPRESSURE_BASE,
        },
        &mut burst,
    );
    out.bytes_sent = burst.len() as u64;
    if stream.write_all(&burst).is_err() {
        out.conn_cut = true;
        out.neutralized = true;
        return Ok(out);
    }
    out.frames_sent = n + 1;
    for _ in 0..out.frames_sent {
        match read_one(&mut stream) {
            // Reason mix is scheduling-dependent (a burst outrunning
            // the drain sees backpressure, a lucky one does not):
            // count the reply, skip the histogram and the accepted
            // tally, so the report stays transport-invariant.
            ReadOutcome::Reply(_) => out.replies += 1,
            ReadOutcome::Cut => {
                out.conn_cut = true;
                break;
            }
            ReadOutcome::Stall => break,
        }
    }
    out.neutralized = out.replies == out.frames_sent || out.conn_cut;
    Ok(out)
}

/// Frames to a closed session: open, close, then keep sending. Every
/// post-close frame must bounce with `closed`.
fn zombie<A: ToSocketAddrs>(addr: A, cfg: &AdversarialConfig) -> io::Result<AttackOutcome> {
    let mut out = AttackOutcome::new("zombie");
    let mut stream = connect(addr, cfg)?;
    let session = ZOMBIE_BASE;
    let open = Frame::Event { session, event: 0 };
    if !exchange(&mut stream, &open, &mut out) {
        return Ok(out);
    }
    if !exchange(&mut stream, &Frame::Close { session }, &mut out) {
        return Ok(out);
    }
    let before = out.accepted;
    for _ in 0..cfg.frames_per_attack {
        if !exchange(&mut stream, &open, &mut out) {
            break;
        }
    }
    out.neutralized = out.accepted == before && (out.replies == out.frames_sent || out.conn_cut);
    Ok(out)
}
