//! The compiled converter artifact: a binary, content-addressed,
//! strictly-validated container for one derived system.
//!
//! `solve --emit compiled --out PATH` writes one; the
//! [`crate::registry`] stores, admits and hot-swaps them; `protoquot
//! fuzz --target artifact` feeds the loader mutated bytes and demands
//! clean [`ArtifactError`]s.
//!
//! ## Layout (all integers big-endian)
//!
//! ```text
//! magic            4  b"PQCA"
//! format version   4  u32, currently 1
//! content hash     8  FNV-1a-64 over every payload byte
//! table hash       8  codec::table_hash of the event table
//! payload:
//!   service          SpecDoc
//!   part count       u32
//!   parts            SpecDocs (fixed components first, converter last)
//!   guard DFA:
//!     nsym             u32
//!     dfa_initial      u32
//!     trans            u64 count + count × u32
//!     any_fail         u64 count + count × u8 (0|1)
//!     subset_size      u64 count + count × u32
//!     initial verdict  u8 code (0 none, 1 not-a-trace, 2 service
//!                      violation, 3 stalled) + u16 event for 1/2
//! ```
//!
//! A `SpecDoc` is encoded as: name, alphabet (count + names), states
//! (count + names), initial `u32`, external transitions (count ×
//! `(u32, name, u32)`), internal transitions (count × `(u32, u32)`);
//! strings are a `u32` length plus UTF-8 bytes.
//!
//! The artifact carries *both* the source specs and the determinized
//! guard tables. The specs are load-bearing: registry admission re-runs
//! [`protoquot_spec::verify_system`] on them before a version may go
//! live, and [`CompiledArtifact::instantiate`] rebuilds the guard from
//! them and refuses the artifact unless the rebuilt tables are
//! byte-identical to the stored ones — a tampered or bit-rotted table
//! can never reach a session even if its content hash was re-stamped.

use crate::codec::table_hash;
use crate::guard::{Conviction, GuardProgram};
use protoquot_spec::{Spec, SpecDoc, SpecError};
use std::fmt;

/// Leading magic of every compiled artifact.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"PQCA";

/// The one format version this build reads and writes.
pub const ARTIFACT_FORMAT: u32 = 1;

/// Sanity cap on any single encoded string (event, state, spec name):
/// far above anything a real spec produces, low enough that a corrupt
/// length prefix cannot demand a gigabyte.
const MAX_STRING: usize = 1 << 20;

/// Why artifact bytes were refused. Every path out of
/// [`CompiledArtifact::decode`] and [`CompiledArtifact::instantiate`]
/// is one of these — hostile bytes must never panic or hang.
#[derive(Clone, Debug, PartialEq)]
pub enum ArtifactError {
    /// The first four bytes are not [`ARTIFACT_MAGIC`].
    BadMagic,
    /// The format version is one this build does not read.
    UnsupportedFormat(u32),
    /// The stored content hash does not match the payload bytes.
    ContentHash {
        /// Hash stamped in the header.
        stored: u64,
        /// Hash of the bytes actually present.
        computed: u64,
    },
    /// Truncated, overlong, or structurally invalid bytes; the message
    /// names the offending field.
    Malformed(String),
    /// The embedded specs do not rebuild into a valid system.
    Spec(SpecError),
    /// The guard rebuilt from the embedded specs disagrees with the
    /// stored tables (or the stored table hash): the artifact was
    /// tampered with after compilation.
    Divergence(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a compiled artifact (bad magic)"),
            ArtifactError::UnsupportedFormat(v) => {
                write!(f, "unsupported artifact format {v} (this build reads {ARTIFACT_FORMAT})")
            }
            ArtifactError::ContentHash { stored, computed } => write!(
                f,
                "content hash mismatch: header says {stored:016x}, payload hashes to {computed:016x}"
            ),
            ArtifactError::Malformed(m) => write!(f, "malformed artifact: {m}"),
            ArtifactError::Spec(e) => write!(f, "embedded specs are invalid: {e}"),
            ArtifactError::Divergence(m) => write!(f, "artifact diverges from its specs: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<SpecError> for ArtifactError {
    fn from(e: SpecError) -> ArtifactError {
        ArtifactError::Spec(e)
    }
}

/// The guard-DFA tables as stored in an artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactDfa {
    /// `|Σ|` — the transition-row stride.
    pub nsym: u32,
    /// Initial DFA state.
    pub dfa_initial: u32,
    /// Dense transition/verdict table, `dfa_states × nsym`.
    pub trans: Vec<u32>,
    /// Per-state attested-stall confirmation flags.
    pub any_fail: Vec<bool>,
    /// Per-state composite-subset sizes.
    pub subset_size: Vec<u32>,
    /// Conviction sessions start with, if any: the verdict code and
    /// the event index (0 for stalls).
    pub initial_verdict: Option<(u8, u16)>,
}

/// One decoded compiled artifact: integrity-checked bytes parsed into
/// specs plus guard tables, not yet trusted to serve traffic — that
/// takes [`CompiledArtifact::instantiate`] (table agreement) and, for
/// the registry, a `verify_system` run.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledArtifact {
    /// FNV-1a-64 of the payload — the artifact's identity in the
    /// registry's on-disk store.
    pub content_hash: u64,
    /// Negotiation fingerprint of the event table
    /// ([`crate::codec::table_hash`]).
    pub table_hash: u64,
    /// The service specification the system was derived against.
    pub service: SpecDoc,
    /// The system parts: fixed components first, converter last.
    pub parts: Vec<SpecDoc>,
    /// The determinized guard tables.
    pub dfa: ArtifactDfa,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_doc(out: &mut Vec<u8>, doc: &SpecDoc) {
    put_str(out, &doc.name);
    out.extend_from_slice(&(doc.alphabet.len() as u32).to_be_bytes());
    for name in &doc.alphabet {
        put_str(out, name);
    }
    out.extend_from_slice(&(doc.states.len() as u32).to_be_bytes());
    for name in &doc.states {
        put_str(out, name);
    }
    out.extend_from_slice(&(doc.initial as u32).to_be_bytes());
    out.extend_from_slice(&(doc.external.len() as u32).to_be_bytes());
    for (from, event, to) in &doc.external {
        out.extend_from_slice(&(*from as u32).to_be_bytes());
        put_str(out, event);
        out.extend_from_slice(&(*to as u32).to_be_bytes());
    }
    out.extend_from_slice(&(doc.internal.len() as u32).to_be_bytes());
    for (from, to) in &doc.internal {
        out.extend_from_slice(&(*from as u32).to_be_bytes());
        out.extend_from_slice(&(*to as u32).to_be_bytes());
    }
}

/// Compiles `parts` (converter included) against `service` and encodes
/// the whole system — specs plus determinized guard tables — as one
/// artifact.
pub fn encode(parts: &[&Spec], service: &Spec) -> Result<Vec<u8>, ArtifactError> {
    let prog = GuardProgram::new(parts, service)?;
    Ok(encode_with_program(parts, service, &prog))
}

/// Same as [`encode`] for a caller that already built the guard (the
/// CLI builds one for `--stats` anyway).
pub fn encode_with_program(parts: &[&Spec], service: &Spec, prog: &GuardProgram) -> Vec<u8> {
    let mut payload = Vec::new();
    put_doc(&mut payload, &SpecDoc::from(service));
    payload.extend_from_slice(&(parts.len() as u32).to_be_bytes());
    for part in parts {
        put_doc(&mut payload, &SpecDoc::from(*part));
    }
    let t = prog.dfa_tables();
    payload.extend_from_slice(&(t.nsym as u32).to_be_bytes());
    payload.extend_from_slice(&t.dfa_initial.to_be_bytes());
    payload.extend_from_slice(&(t.trans.len() as u64).to_be_bytes());
    for &x in t.trans {
        payload.extend_from_slice(&x.to_be_bytes());
    }
    payload.extend_from_slice(&(t.any_fail.len() as u64).to_be_bytes());
    payload.extend(t.any_fail.iter().map(|&b| u8::from(b)));
    payload.extend_from_slice(&(t.subset_size.len() as u64).to_be_bytes());
    for &x in t.subset_size {
        payload.extend_from_slice(&x.to_be_bytes());
    }
    match verdict_code(t.initial_verdict) {
        None => payload.push(0),
        Some((code, event)) => {
            payload.push(code);
            payload.extend_from_slice(&event.to_be_bytes());
        }
    }

    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(&ARTIFACT_MAGIC);
    out.extend_from_slice(&ARTIFACT_FORMAT.to_be_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_be_bytes());
    out.extend_from_slice(&table_hash(prog.table()).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

fn verdict_code(v: Option<&Conviction>) -> Option<(u8, u16)> {
    v.map(|c| match c {
        Conviction::NotATrace { event } => (1, *event),
        Conviction::ServiceViolation { event } => (2, *event),
        Conviction::Stalled => (3, 0),
    })
}

// ---------------------------------------------------------------------
// Decoding: the strict, fuzzable loader
// ---------------------------------------------------------------------

/// Bounds-checked big-endian reader over the payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ArtifactError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                ArtifactError::Malformed(format!(
                    "truncated inside {what}: need {n} bytes at offset {}, have {}",
                    self.at,
                    self.bytes.len() - self.at
                ))
            })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ArtifactError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, ArtifactError> {
        Ok(u16::from_be_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ArtifactError> {
        Ok(u32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ArtifactError> {
        Ok(u64::from_be_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str(&mut self, what: &str) -> Result<String, ArtifactError> {
        let len = self.u32(what)? as usize;
        if len > MAX_STRING {
            return Err(ArtifactError::Malformed(format!(
                "{what}: string length {len} exceeds the {MAX_STRING}-byte cap"
            )));
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed(format!("{what}: string is not UTF-8")))
    }

    /// A count whose elements occupy at least `min_elem` bytes each:
    /// rejects counts the remaining bytes cannot possibly satisfy, so a
    /// corrupt prefix cannot demand a huge allocation.
    fn count(&mut self, min_elem: usize, what: &str) -> Result<usize, ArtifactError> {
        let n = self.u32(what)? as usize;
        let remaining = self.bytes.len() - self.at;
        if n.saturating_mul(min_elem) > remaining {
            return Err(ArtifactError::Malformed(format!(
                "{what}: count {n} cannot fit in {remaining} remaining bytes"
            )));
        }
        Ok(n)
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn get_doc(r: &mut Reader<'_>, what: &str) -> Result<SpecDoc, ArtifactError> {
    let name = r.str(&format!("{what}.name"))?;
    let n = r.count(4, &format!("{what}.alphabet"))?;
    let mut alphabet = Vec::with_capacity(n);
    for _ in 0..n {
        alphabet.push(r.str(&format!("{what}.alphabet entry"))?);
    }
    let n = r.count(4, &format!("{what}.states"))?;
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        states.push(r.str(&format!("{what}.state name"))?);
    }
    let initial = r.u32(&format!("{what}.initial"))? as usize;
    let n = r.count(12, &format!("{what}.external"))?;
    let mut external = Vec::with_capacity(n);
    for _ in 0..n {
        let from = r.u32(&format!("{what}.external.from"))? as usize;
        let event = r.str(&format!("{what}.external.event"))?;
        let to = r.u32(&format!("{what}.external.to"))? as usize;
        external.push((from, event, to));
    }
    let n = r.count(8, &format!("{what}.internal"))?;
    let mut internal = Vec::with_capacity(n);
    for _ in 0..n {
        let from = r.u32(&format!("{what}.internal.from"))? as usize;
        let to = r.u32(&format!("{what}.internal.to"))? as usize;
        internal.push((from, to));
    }
    Ok(SpecDoc {
        name,
        alphabet,
        states,
        initial,
        external,
        internal,
    })
}

fn get_u32_seq(r: &mut Reader<'_>, what: &str) -> Result<Vec<u32>, ArtifactError> {
    let n = r.u64(what)? as usize;
    let remaining = r.bytes.len() - r.at;
    if n.saturating_mul(4) > remaining {
        return Err(ArtifactError::Malformed(format!(
            "{what}: count {n} cannot fit in {remaining} remaining bytes"
        )));
    }
    let raw = r.take(n * 4, what)?;
    Ok(raw
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect())
}

impl CompiledArtifact {
    /// Parses and integrity-checks artifact bytes. Strict: every length
    /// is bounds-checked, the content hash must match the payload, and
    /// trailing bytes are an error. This is the surface `protoquot fuzz
    /// --target artifact` attacks; it must return [`ArtifactError`] on
    /// any hostile input, never panic.
    ///
    /// A decoded artifact is *parsed*, not *trusted*:
    /// [`CompiledArtifact::instantiate`] rebuilds the guard from the
    /// embedded specs and compares tables, and registry admission runs
    /// `verify_system` on top.
    pub fn decode(bytes: &[u8]) -> Result<CompiledArtifact, ArtifactError> {
        if bytes.len() < 24 {
            return Err(ArtifactError::Malformed(format!(
                "{} bytes is shorter than the 24-byte header",
                bytes.len()
            )));
        }
        if bytes[0..4] != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let format = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        if format != ARTIFACT_FORMAT {
            return Err(ArtifactError::UnsupportedFormat(format));
        }
        let stored = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
        let table_hash = u64::from_be_bytes(bytes[16..24].try_into().unwrap());
        let payload = &bytes[24..];
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(ArtifactError::ContentHash { stored, computed });
        }

        let mut r = Reader {
            bytes: payload,
            at: 0,
        };
        let service = get_doc(&mut r, "service")?;
        let nparts = r.count(4, "parts")?;
        let mut parts = Vec::with_capacity(nparts);
        for i in 0..nparts {
            parts.push(get_doc(&mut r, &format!("part {i}"))?);
        }
        if parts.is_empty() {
            return Err(ArtifactError::Malformed("artifact holds no parts".into()));
        }
        let nsym = r.u32("dfa.nsym")?;
        let dfa_initial = r.u32("dfa.initial")?;
        let trans = get_u32_seq(&mut r, "dfa.trans")?;
        let n = r.u64("dfa.any_fail")? as usize;
        let remaining = r.bytes.len() - r.at;
        if n > remaining {
            return Err(ArtifactError::Malformed(format!(
                "dfa.any_fail: count {n} cannot fit in {remaining} remaining bytes"
            )));
        }
        let mut any_fail = Vec::with_capacity(n);
        for &b in r.take(n, "dfa.any_fail")? {
            match b {
                0 => any_fail.push(false),
                1 => any_fail.push(true),
                other => {
                    return Err(ArtifactError::Malformed(format!(
                        "dfa.any_fail: flag byte {other} is neither 0 nor 1"
                    )))
                }
            }
        }
        let subset_size = get_u32_seq(&mut r, "dfa.subset_size")?;
        let initial_verdict = match r.u8("dfa.initial_verdict")? {
            0 => None,
            code @ 1..=3 => {
                let event = if code == 3 {
                    0
                } else {
                    r.u16("dfa.initial_verdict event")?
                };
                Some((code, event))
            }
            other => {
                return Err(ArtifactError::Malformed(format!(
                    "dfa.initial_verdict: unknown code {other}"
                )))
            }
        };
        if !r.done() {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after the artifact",
                r.bytes.len() - r.at
            )));
        }

        // Structural consistency of the tables themselves.
        if nsym == 0 && !trans.is_empty() {
            return Err(ArtifactError::Malformed(
                "dfa.trans is non-empty but nsym is 0".into(),
            ));
        }
        if nsym != 0 && trans.len() % nsym as usize != 0 {
            return Err(ArtifactError::Malformed(format!(
                "dfa.trans length {} is not a multiple of nsym {nsym}",
                trans.len()
            )));
        }
        let states = if nsym == 0 {
            0
        } else {
            trans.len() / nsym as usize
        };
        if any_fail.len() != states || subset_size.len() != states {
            return Err(ArtifactError::Malformed(format!(
                "per-state arrays disagree: {states} states, {} any_fail, {} subset_size",
                any_fail.len(),
                subset_size.len()
            )));
        }

        Ok(CompiledArtifact {
            content_hash: stored,
            table_hash,
            service,
            parts,
            dfa: ArtifactDfa {
                nsym,
                dfa_initial,
                trans,
                any_fail,
                subset_size,
                initial_verdict,
            },
        })
    }

    /// Rebuilds the runnable system: specs out of the embedded docs, a
    /// fresh [`GuardProgram`] compiled from them, and a proof of
    /// agreement — the rebuilt guard's event-table hash and DFA tables
    /// must match the stored ones exactly, else the artifact is
    /// refused with [`ArtifactError::Divergence`].
    ///
    /// Returns `(parts, service, program)`; the specs feed registry
    /// admission (`verify_system`), the program feeds the gateway.
    pub fn instantiate(&self) -> Result<(Vec<Spec>, Spec, GuardProgram), ArtifactError> {
        let service = Spec::try_from(self.service.clone())?;
        let parts = self
            .parts
            .iter()
            .map(|doc| Spec::try_from(doc.clone()))
            .collect::<Result<Vec<Spec>, SpecError>>()?;
        let refs: Vec<&Spec> = parts.iter().collect();
        let prog = GuardProgram::new(&refs, &service)?;
        let rebuilt_hash = table_hash(prog.table());
        if rebuilt_hash != self.table_hash {
            return Err(ArtifactError::Divergence(format!(
                "event-table hash: stored {:016x}, rebuilt {rebuilt_hash:016x}",
                self.table_hash
            )));
        }
        let t = prog.dfa_tables();
        if t.nsym as u64 != u64::from(self.dfa.nsym) || t.dfa_initial != self.dfa.dfa_initial {
            return Err(ArtifactError::Divergence(format!(
                "DFA shape: stored nsym {} initial {}, rebuilt nsym {} initial {}",
                self.dfa.nsym, self.dfa.dfa_initial, t.nsym, t.dfa_initial
            )));
        }
        if t.trans != &self.dfa.trans[..]
            || t.any_fail != &self.dfa.any_fail[..]
            || t.subset_size != &self.dfa.subset_size[..]
        {
            return Err(ArtifactError::Divergence(
                "DFA tables are not byte-identical to a rebuild from the embedded specs".into(),
            ));
        }
        if verdict_code(t.initial_verdict) != self.dfa.initial_verdict {
            return Err(ArtifactError::Divergence(
                "initial verdict disagrees with a rebuild from the embedded specs".into(),
            ));
        }
        Ok((parts, service, prog))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_core::solve;
    use protoquot_protocols::{colocated_configuration, exactly_once};

    fn artifact_bytes() -> Vec<u8> {
        let system = colocated_configuration();
        let service = exactly_once();
        let q = solve(&system.b, &service, &system.int).expect("converter derives");
        encode(&[&system.b, &q.converter], &service).expect("system compiles")
    }

    /// emit → load → byte-identical guard DFA and event table (the
    /// satellite roundtrip requirement).
    #[test]
    fn roundtrip_is_byte_identical() {
        let bytes = artifact_bytes();
        let art = CompiledArtifact::decode(&bytes).expect("decodes");
        let (parts, service, prog) = art.instantiate().expect("instantiates");
        // The rebuilt guard's tables equal the stored ones (instantiate
        // already asserted this; double-check through the accessor).
        let t = prog.dfa_tables();
        assert_eq!(t.trans, &art.dfa.trans[..]);
        assert_eq!(table_hash(prog.table()), art.table_hash);
        // Re-encoding the instantiated system reproduces the artifact
        // byte for byte: content addressing is deterministic.
        let refs: Vec<&Spec> = parts.iter().collect();
        let again = encode(&refs, &service).expect("recompiles");
        assert_eq!(again, bytes, "re-encode must be byte-identical");
        assert_eq!(
            CompiledArtifact::decode(&again).unwrap().content_hash,
            art.content_hash
        );
    }

    #[test]
    fn header_damage_is_refused_cleanly() {
        let bytes = artifact_bytes();
        // Magic.
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert_eq!(CompiledArtifact::decode(&b), Err(ArtifactError::BadMagic));
        // Format version.
        let mut b = bytes.clone();
        b[7] = 99;
        assert!(matches!(
            CompiledArtifact::decode(&b),
            Err(ArtifactError::UnsupportedFormat(99))
        ));
        // Content hash.
        let mut b = bytes.clone();
        b[15] ^= 0x01;
        assert!(matches!(
            CompiledArtifact::decode(&b),
            Err(ArtifactError::ContentHash { .. })
        ));
        // Short header.
        assert!(matches!(
            CompiledArtifact::decode(&bytes[..20]),
            Err(ArtifactError::Malformed(_))
        ));
    }

    /// Every single-byte truncation of a valid artifact decodes to a
    /// clean error — the loader never panics on torn files.
    #[test]
    fn every_truncation_errors_cleanly() {
        let bytes = artifact_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CompiledArtifact::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
        // Trailing garbage is also refused (hash covers payload only up
        // to its own length, so extend + rehash to isolate the check).
        let mut b = bytes.clone();
        b.push(0);
        assert!(CompiledArtifact::decode(&b).is_err());
    }

    /// A payload flip that is *re-stamped* with a matching content hash
    /// still cannot reach a session: instantiate rebuilds the guard
    /// from the specs and catches table tampering.
    #[test]
    fn restamped_table_tampering_is_caught_at_instantiate() {
        let bytes = artifact_bytes();
        let mut art = CompiledArtifact::decode(&bytes).expect("decodes");
        assert!(!art.dfa.trans.is_empty());
        // Redirect one DFA edge, leaving the specs untouched.
        let i = art
            .dfa
            .trans
            .iter()
            .position(|&t| t == u32::MAX)
            .expect("some dead edge exists");
        art.dfa.trans[i] = art.dfa.dfa_initial;
        assert!(matches!(
            art.instantiate(),
            Err(ArtifactError::Divergence(_))
        ));
    }
}
