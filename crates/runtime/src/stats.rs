//! Gateway observability: lock-free counters and JSON snapshots.
//!
//! [`RuntimeStats`] is a bag of atomics bumped from the hot paths
//! (submit, drain, evict); [`StatsSnapshot`] is an immutable view with
//! derived rates, rendered as text (`protoquot serve --stats`) or JSON
//! (the periodic snapshot stream).

use crate::codec::RejectReason;
use crate::guard::{Conviction, GuardBuildStats};
use protoquot_spec::EventTable;
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const REASONS: [RejectReason; 10] = [
    RejectReason::NotATrace,
    RejectReason::ServiceViolation,
    RejectReason::Stalled,
    RejectReason::Convicted,
    RejectReason::Backpressure,
    RejectReason::Draining,
    RejectReason::Closed,
    RejectReason::UnknownEvent,
    RejectReason::ResourceLimit,
    RejectReason::VersionMismatch,
];

/// Counter slot for a reject reason. Exhaustive on purpose: adding a
/// `RejectReason` variant without growing [`REASONS`] (and this match)
/// is a compile error, not a runtime panic in the hot reject path.
fn reason_slot(reason: RejectReason) -> usize {
    match reason {
        RejectReason::NotATrace => 0,
        RejectReason::ServiceViolation => 1,
        RejectReason::Stalled => 2,
        RejectReason::Convicted => 3,
        RejectReason::Backpressure => 4,
        RejectReason::Draining => 5,
        RejectReason::Closed => 6,
        RejectReason::UnknownEvent => 7,
        RejectReason::ResourceLimit => 8,
        RejectReason::VersionMismatch => 9,
    }
}

/// Why a transport cut a connection before the peer closed it — the
/// connection-level half of the eviction taxonomy (the session-level
/// half is idle eviction and budget expulsion in the gateway). The
/// invariant these exist for: an abusive peer is convicted or evicted,
/// never allowed to stall a worker pool or an event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnEvictReason {
    /// The peer stopped reading and its outbound buffer overran the
    /// cap (reactor write-buffer limit, previously a silent drop).
    SlowConsumer,
    /// The peer left a frame unfinished past the read deadline
    /// (slow-drip / slow-loris input).
    SlowRead,
    /// The peer sent bytes that do not decode (garbage, oversize or
    /// zero length prefix) or died mid-frame (torn stream).
    Protocol,
}

impl ConnEvictReason {
    /// Stable snake_case name for stats keys.
    pub fn name(self) -> &'static str {
        match self {
            ConnEvictReason::SlowConsumer => "slow_consumer",
            ConnEvictReason::SlowRead => "slow_read",
            ConnEvictReason::Protocol => "protocol",
        }
    }
}

/// Slot order of [`ConnEvictReason`] counters; exhaustive like
/// [`reason_slot`].
const CONN_EVICT_REASONS: [ConnEvictReason; 3] = [
    ConnEvictReason::SlowConsumer,
    ConnEvictReason::SlowRead,
    ConnEvictReason::Protocol,
];

fn conn_evict_slot(reason: ConnEvictReason) -> usize {
    match reason {
        ConnEvictReason::SlowConsumer => 0,
        ConnEvictReason::SlowRead => 1,
        ConnEvictReason::Protocol => 2,
    }
}

/// Power-of-two batch-size histogram buckets: bucket `i` counts
/// batches of `2^i ..= 2^(i+1)-1` frames, the last bucket is open.
const BATCH_BUCKETS: usize = 8;

/// Stable labels of the batch-size buckets, for snapshots.
const BATCH_BUCKET_NAMES: [&str; BATCH_BUCKETS] = ["1", "2", "4", "8", "16", "32", "64", "128+"];

fn batch_bucket(frames: usize) -> usize {
    (usize::BITS - 1 - frames.max(1).leading_zeros()).min(BATCH_BUCKETS as u32 - 1) as usize
}

/// Shared counters of one gateway.
pub struct RuntimeStats {
    started: Instant,
    sessions_opened: AtomicU64,
    sessions_evicted: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_active: AtomicU64,
    sessions_expelled: AtomicU64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    conn_evictions: [AtomicU64; 3],
    frames: AtomicU64,
    accepted: AtomicU64,
    rejects: [AtomicU64; 10],
    convictions: AtomicU64,
    queue_high_water: AtomicU64,
    /// Batches taken through `Gateway::call_batch`.
    batches: AtomicU64,
    /// Frames carried by those batches.
    batch_frames: AtomicU64,
    /// Batched frames processed inline under the session lock (no
    /// responder, no pool dispatch).
    batch_inline: AtomicU64,
    /// Batched frames deferred to the worker-queue slow path because
    /// their session was already scheduled or queued.
    batch_slow: AtomicU64,
    /// Batch-size histogram, power-of-two buckets.
    batch_hist: [AtomicU64; BATCH_BUCKETS],
    /// Raw bytes read off transport sockets.
    bytes_in: AtomicU64,
    /// Raw bytes written back to transport sockets.
    bytes_out: AtomicU64,
    /// Accepted frames per event-table index.
    per_event: Vec<AtomicU64>,
    /// Build-time cost of the guard DFA (fixed at construction).
    guard_build: GuardBuildStats,
    /// Negotiation fingerprint of the active event table
    /// ([`crate::codec::table_hash`]); 0 until the gateway sets it.
    table_hash: AtomicU64,
    /// The converter version new sessions bind (registry version id).
    active_version: AtomicU64,
    /// Live sessions per converter version. Touched only at session
    /// open/close/evict — never on the per-frame path.
    version_sessions: Mutex<BTreeMap<u32, u64>>,
    /// Completed hot-swaps (`Gateway` activations after the first).
    swaps: AtomicU64,
    /// Old versions fully drained and released.
    versions_retired: AtomicU64,
}

impl RuntimeStats {
    /// Fresh counters for a table of `num_events` wire events.
    pub fn new(num_events: usize) -> RuntimeStats {
        RuntimeStats::with_guard_build(num_events, GuardBuildStats::default())
    }

    /// Fresh counters carrying the gateway's guard-DFA build stats.
    pub fn with_guard_build(num_events: usize, guard_build: GuardBuildStats) -> RuntimeStats {
        RuntimeStats {
            started: Instant::now(),
            sessions_opened: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_active: AtomicU64::new(0),
            sessions_expelled: AtomicU64::new(0),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            conn_evictions: Default::default(),
            frames: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejects: Default::default(),
            convictions: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_frames: AtomicU64::new(0),
            batch_inline: AtomicU64::new(0),
            batch_slow: AtomicU64::new(0),
            batch_hist: Default::default(),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            per_event: (0..num_events).map(|_| AtomicU64::new(0)).collect(),
            guard_build,
            table_hash: AtomicU64::new(0),
            active_version: AtomicU64::new(0),
            version_sessions: Mutex::new(BTreeMap::new()),
            swaps: AtomicU64::new(0),
            versions_retired: AtomicU64::new(0),
        }
    }

    /// Records the gateway's wire identity: the negotiation fingerprint
    /// of its event table and the converter version new sessions bind.
    /// Called at construction and again on every hot-swap.
    pub fn set_wire_identity(&self, table_hash: u64, version: u32) {
        self.table_hash.store(table_hash, Ordering::Relaxed);
        self.active_version
            .store(u64::from(version), Ordering::Relaxed);
    }

    /// A hot-swap activated a new converter version.
    pub fn note_swap(&self) {
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// An old converter version's last session ended and its program
    /// was released.
    pub fn note_version_retired(&self) {
        self.versions_retired.fetch_add(1, Ordering::Relaxed);
    }

    /// A session bound converter version `version` at open.
    pub fn note_version_open(&self, version: u32) {
        let mut map = self.version_sessions.lock().expect("stats mutex poisoned");
        *map.entry(version).or_insert(0) += 1;
    }

    /// A session bound to `version` ended (close, evict, or expel);
    /// returns the sessions still live on that version, so the gateway
    /// can retire a fully drained old program.
    pub fn note_version_close(&self, version: u32) -> u64 {
        let mut map = self.version_sessions.lock().expect("stats mutex poisoned");
        match map.get_mut(&version) {
            Some(n) if *n > 1 => {
                *n -= 1;
                *n
            }
            Some(_) => {
                map.remove(&version);
                0
            }
            None => 0,
        }
    }

    /// Live sessions currently bound to `version`.
    pub fn sessions_on_version(&self, version: u32) -> u64 {
        let map = self.version_sessions.lock().expect("stats mutex poisoned");
        map.get(&version).copied().unwrap_or(0)
    }

    /// A session was created.
    pub fn note_open(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A session was evicted by the idle sweeper.
    pub fn note_evict(&self) {
        self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A session was closed and removed.
    pub fn note_close(&self) {
        self.sessions_closed.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// A transport connection was accepted.
    pub fn note_conn_open(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A transport connection ended (clean EOF, torn stream, or error).
    pub fn note_conn_close(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// A transport cut a connection for `reason`. Counted *in addition
    /// to* [`RuntimeStats::note_conn_close`], which still fires when the
    /// connection is dropped — evictions attribute the cut, closes
    /// count it.
    pub fn note_conn_evict(&self, reason: ConnEvictReason) {
        self.conn_evictions[conn_evict_slot(reason)].fetch_add(1, Ordering::Relaxed);
    }

    /// A session overran its frame budget and was expelled (marked
    /// closed by the gateway rather than by a client `Close`).
    pub fn note_expel(&self) {
        self.sessions_expelled.fetch_add(1, Ordering::Relaxed);
    }

    /// A frame arrived (before any verdict).
    pub fn note_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// An event frame passed the guard.
    pub fn note_accept(&self, event: u16) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = self.per_event.get(usize::from(event)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A frame was rejected with `reason`.
    pub fn note_reject(&self, reason: RejectReason) {
        self.rejects[reason_slot(reason)].fetch_add(1, Ordering::Relaxed);
    }

    /// The guard convicted a session (counted once per session).
    pub fn note_conviction(&self, _conviction: &Conviction) {
        self.convictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A per-session queue reached depth `depth`.
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// One `call_batch` of `frames` frames entered the gateway.
    pub fn note_batch(&self, frames: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_frames
            .fetch_add(frames as u64, Ordering::Relaxed);
        self.batch_hist[batch_bucket(frames)].fetch_add(1, Ordering::Relaxed);
    }

    /// `n` batched frames were processed inline under the session lock.
    pub fn note_batch_inline(&self, n: usize) {
        self.batch_inline.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` batched frames fell back to the worker-queue slow path.
    pub fn note_batch_slow(&self, n: usize) {
        self.batch_slow.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` raw bytes arrived from a transport socket.
    pub fn note_bytes_in(&self, n: usize) {
        self.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` raw bytes were written back to a transport socket.
    pub fn note_bytes_out(&self, n: usize) {
        self.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// An immutable snapshot with derived rates.
    pub fn snapshot(&self, table: &EventTable) -> StatsSnapshot {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let accepted = self.accepted.load(Ordering::Relaxed);
        StatsSnapshot {
            uptime_secs: elapsed,
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_active: self.sessions_active.load(Ordering::Relaxed),
            sessions_expelled: self.sessions_expelled.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            conn_evictions: CONN_EVICT_REASONS
                .iter()
                .enumerate()
                .map(|(i, &r)| (r.name(), self.conn_evictions[i].load(Ordering::Relaxed)))
                .collect(),
            frames: self.frames.load(Ordering::Relaxed),
            accepted,
            events_per_sec: accepted as f64 / elapsed,
            rejects: REASONS
                .iter()
                .enumerate()
                .map(|(i, &r)| (r.name(), self.rejects[i].load(Ordering::Relaxed)))
                .filter(|&(_, n)| n > 0)
                .collect(),
            convictions: self.convictions.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_frames: self.batch_frames.load(Ordering::Relaxed),
            batch_inline: self.batch_inline.load(Ordering::Relaxed),
            batch_slow: self.batch_slow.load(Ordering::Relaxed),
            batch_hist: BATCH_BUCKET_NAMES
                .iter()
                .zip(&self.batch_hist)
                .map(|(&name, c)| (name, c.load(Ordering::Relaxed)))
                .collect(),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            per_event: table
                .events
                .iter()
                .zip(&self.per_event)
                .map(|(e, c)| (e.name(), c.load(Ordering::Relaxed)))
                .collect(),
            guard_build: self.guard_build.clone(),
            table_hash: self.table_hash.load(Ordering::Relaxed),
            active_version: self.active_version.load(Ordering::Relaxed) as u32,
            version_sessions: self
                .version_sessions
                .lock()
                .expect("stats mutex poisoned")
                .iter()
                .map(|(&v, &n)| (v, n))
                .collect(),
            swaps: self.swaps.load(Ordering::Relaxed),
            versions_retired: self.versions_retired.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of [`RuntimeStats`].
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    /// Seconds since the gateway started.
    pub uptime_secs: f64,
    /// Sessions ever created.
    pub sessions_opened: u64,
    /// Sessions removed by the idle sweeper.
    pub sessions_evicted: u64,
    /// Sessions removed after a `Close` frame.
    pub sessions_closed: u64,
    /// Sessions currently resident.
    pub sessions_active: u64,
    /// Sessions expelled after overrunning their frame budget.
    pub sessions_expelled: u64,
    /// Transport connections ever accepted (0 for pure loopback).
    pub connections_opened: u64,
    /// Transport connections ended.
    pub connections_closed: u64,
    /// Connection cuts per [`ConnEvictReason`] (every reason listed,
    /// zero counts included — operators alert on these).
    pub conn_evictions: Vec<(&'static str, u64)>,
    /// Frames received.
    pub frames: u64,
    /// Event frames accepted by the guard.
    pub accepted: u64,
    /// Accepted events per second of uptime.
    pub events_per_sec: f64,
    /// Reject counts per reason (zero counts omitted).
    pub rejects: Vec<(&'static str, u64)>,
    /// Sessions convicted by the online guard.
    pub convictions: u64,
    /// Deepest per-session queue observed.
    pub queue_high_water: u64,
    /// Batches taken through `Gateway::call_batch`.
    pub batches: u64,
    /// Frames carried by those batches.
    pub batch_frames: u64,
    /// Batched frames processed inline under the session lock.
    pub batch_inline: u64,
    /// Batched frames deferred to the worker-queue slow path.
    pub batch_slow: u64,
    /// Batch-size histogram: power-of-two buckets (`"1"`, `"2"`, …,
    /// `"128+"`), every bucket listed with zero counts included.
    pub batch_hist: Vec<(&'static str, u64)>,
    /// Raw bytes read off transport sockets.
    pub bytes_in: u64,
    /// Raw bytes written back to transport sockets.
    pub bytes_out: u64,
    /// Accepted frames per event name, in event-table order.
    pub per_event: Vec<(String, u64)>,
    /// Size and build cost of the compiled guard DFA.
    pub guard_build: GuardBuildStats,
    /// Negotiation fingerprint of the active event table (0 when the
    /// gateway never set one — bare `RuntimeStats` in tests).
    pub table_hash: u64,
    /// Converter version new sessions bind.
    pub active_version: u32,
    /// Live sessions per converter version, ascending by version.
    pub version_sessions: Vec<(u32, u64)>,
    /// Completed hot-swaps.
    pub swaps: u64,
    /// Old versions fully drained and released.
    pub versions_retired: u64,
}

impl StatsSnapshot {
    /// The snapshot as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("uptime_secs".into(), Value::Float(self.uptime_secs));
        let mut s = BTreeMap::new();
        s.insert("opened".into(), Value::Int(self.sessions_opened as i128));
        s.insert("evicted".into(), Value::Int(self.sessions_evicted as i128));
        s.insert("closed".into(), Value::Int(self.sessions_closed as i128));
        s.insert("active".into(), Value::Int(self.sessions_active as i128));
        s.insert(
            "expelled".into(),
            Value::Int(self.sessions_expelled as i128),
        );
        o.insert("sessions".into(), Value::Obj(s));
        let mut c = BTreeMap::new();
        c.insert("opened".into(), Value::Int(self.connections_opened as i128));
        c.insert("closed".into(), Value::Int(self.connections_closed as i128));
        c.insert(
            "evictions".into(),
            Value::Obj(
                self.conn_evictions
                    .iter()
                    .map(|&(name, n)| (name.to_string(), Value::Int(n as i128)))
                    .collect(),
            ),
        );
        o.insert("connections".into(), Value::Obj(c));
        o.insert("frames".into(), Value::Int(self.frames as i128));
        o.insert("accepted".into(), Value::Int(self.accepted as i128));
        o.insert("events_per_sec".into(), Value::Float(self.events_per_sec));
        o.insert(
            "rejects".into(),
            Value::Obj(
                self.rejects
                    .iter()
                    .map(|&(name, n)| (name.to_string(), Value::Int(n as i128)))
                    .collect(),
            ),
        );
        o.insert("convictions".into(), Value::Int(self.convictions as i128));
        o.insert(
            "queue_high_water".into(),
            Value::Int(self.queue_high_water as i128),
        );
        let mut b = BTreeMap::new();
        b.insert("batches".into(), Value::Int(self.batches as i128));
        b.insert("frames".into(), Value::Int(self.batch_frames as i128));
        b.insert("inline".into(), Value::Int(self.batch_inline as i128));
        b.insert("slow_path".into(), Value::Int(self.batch_slow as i128));
        b.insert(
            "sizes".into(),
            Value::Obj(
                self.batch_hist
                    .iter()
                    .map(|&(name, n)| (name.to_string(), Value::Int(n as i128)))
                    .collect(),
            ),
        );
        o.insert("batching".into(), Value::Obj(b));
        let mut w = BTreeMap::new();
        w.insert("in".into(), Value::Int(self.bytes_in as i128));
        w.insert("out".into(), Value::Int(self.bytes_out as i128));
        o.insert("bytes".into(), Value::Obj(w));
        o.insert(
            "per_event".into(),
            Value::Obj(
                self.per_event
                    .iter()
                    .map(|(name, n)| (name.clone(), Value::Int(*n as i128)))
                    .collect(),
            ),
        );
        let mut g = BTreeMap::new();
        g.insert(
            "dfa_states".into(),
            Value::Int(self.guard_build.dfa_states as i128),
        );
        g.insert(
            "dfa_events".into(),
            Value::Int(self.guard_build.dfa_events as i128),
        );
        g.insert(
            "table_bytes".into(),
            Value::Int(self.guard_build.table_bytes as i128),
        );
        g.insert(
            "max_subset".into(),
            Value::Int(self.guard_build.max_subset as i128),
        );
        g.insert("build_ms".into(), Value::Float(self.guard_build.build_ms));
        o.insert("guard_build".into(), Value::Obj(g));
        o.insert(
            "table_hash".into(),
            Value::Str(format!("{:016x}", self.table_hash)),
        );
        let mut r = BTreeMap::new();
        r.insert(
            "active_version".into(),
            Value::Int(self.active_version as i128),
        );
        r.insert("swaps".into(), Value::Int(self.swaps as i128));
        r.insert("retired".into(), Value::Int(self.versions_retired as i128));
        r.insert(
            "sessions".into(),
            Value::Obj(
                self.version_sessions
                    .iter()
                    .map(|&(v, n)| (format!("{v}"), Value::Int(n as i128)))
                    .collect(),
            ),
        );
        o.insert("registry".into(), Value::Obj(r));
        Value::Obj(o)
    }

    /// The snapshot as a compact JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("snapshot serialization cannot fail")
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime {:.1}s | sessions active={} opened={} closed={} evicted={}",
            self.uptime_secs,
            self.sessions_active,
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_evicted
        )?;
        let evictions: Vec<String> = self
            .conn_evictions
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(name, n)| format!("{name}={n}"))
            .collect();
        writeln!(
            f,
            "connections opened={} closed={}{}{}",
            self.connections_opened,
            self.connections_closed,
            if evictions.is_empty() {
                ""
            } else {
                " | evictions "
            },
            evictions.join(" ")
        )?;
        if self.sessions_expelled > 0 {
            writeln!(f, "sessions expelled={}", self.sessions_expelled)?;
        }
        writeln!(
            f,
            "frames {} | accepted {} ({:.0} ev/s) | convictions {} | queue high-water {}",
            self.frames,
            self.accepted,
            self.events_per_sec,
            self.convictions,
            self.queue_high_water
        )?;
        if self.batches > 0 {
            let sizes: Vec<String> = self
                .batch_hist
                .iter()
                .filter(|&&(_, n)| n > 0)
                .map(|&(name, n)| format!("{name}={n}"))
                .collect();
            writeln!(
                f,
                "batches {} | batched frames {} (inline {} slow {}) | sizes {}",
                self.batches,
                self.batch_frames,
                self.batch_inline,
                self.batch_slow,
                sizes.join(" ")
            )?;
        }
        if self.bytes_in > 0 || self.bytes_out > 0 {
            writeln!(f, "bytes in {} out {}", self.bytes_in, self.bytes_out)?;
        }
        if !self.rejects.is_empty() {
            let parts: Vec<String> = self
                .rejects
                .iter()
                .map(|&(name, n)| format!("{name}={n}"))
                .collect();
            writeln!(f, "rejects {}", parts.join(" "))?;
        }
        let parts: Vec<String> = self
            .per_event
            .iter()
            .map(|(name, n)| format!("{name}={n}"))
            .collect();
        writeln!(f, "events {}", parts.join(" "))?;
        if self.table_hash != 0 || self.active_version != 0 {
            let per_version: Vec<String> = self
                .version_sessions
                .iter()
                .map(|&(v, n)| format!("v{v}={n}"))
                .collect();
            writeln!(
                f,
                "wire table hash {:016x} | version {} | sessions per version {}{}",
                self.table_hash,
                self.active_version,
                if per_version.is_empty() {
                    "-".to_string()
                } else {
                    per_version.join(" ")
                },
                if self.swaps > 0 || self.versions_retired > 0 {
                    format!(" | swaps {} retired {}", self.swaps, self.versions_retired)
                } else {
                    String::new()
                }
            )?;
        }
        write!(f, "guard dfa {}", self.guard_build)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{Alphabet, EventId};

    #[test]
    fn counters_round_trip_into_snapshots() {
        let table = EventTable::new(&Alphabet::from_names(["acc", "del"]));
        let stats = RuntimeStats::new(table.len());
        stats.note_conn_open();
        stats.note_conn_open();
        stats.note_conn_close();
        stats.note_open();
        stats.note_frame();
        stats.note_accept(0);
        stats.note_frame();
        stats.note_reject(RejectReason::Backpressure);
        stats.note_conviction(&Conviction::Stalled);
        stats.note_queue_depth(5);
        stats.note_queue_depth(3);
        stats.note_close();

        let snap = stats.snapshot(&table);
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_active, 0);
        assert_eq!(snap.connections_opened, 2);
        assert_eq!(snap.connections_closed, 1);
        assert_eq!(snap.frames, 2);
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.rejects, vec![("backpressure", 1)]);
        assert_eq!(snap.convictions, 1);
        assert_eq!(snap.queue_high_water, 5);
        let first = EventId::new("acc");
        assert_eq!(snap.per_event[table.idx(first) as usize].1, 1);

        let value = snap.to_value();
        let obj = value.as_obj().unwrap();
        assert_eq!(obj["accepted"], Value::Int(1));
        assert_eq!(
            obj["rejects"].as_obj().unwrap()["backpressure"],
            Value::Int(1)
        );
        assert_eq!(
            obj["connections"].as_obj().unwrap()["opened"],
            Value::Int(2)
        );
        assert!(snap.to_json().contains("\"accepted\":1"));
        assert!(format!("{snap}").contains("queue high-water 5"));
        assert!(format!("{snap}").contains("connections opened=2 closed=1"));
        assert!(snap.to_json().contains("\"guard_build\""));
    }

    /// Every `RejectReason` variant must own a distinct counter slot
    /// inside the `REASONS` bounds, and the slot must point back at the
    /// same variant. The `match` inside `reason_slot` is exhaustive, so
    /// a new variant fails compilation before it can fail here.
    #[test]
    fn reason_slots_cover_every_variant_exactly_once() {
        let mut hit = [false; REASONS.len()];
        for &reason in REASONS.iter() {
            let slot = reason_slot(reason);
            assert!(slot < REASONS.len(), "{reason:?}: slot {slot} out of range");
            assert_eq!(
                REASONS[slot], reason,
                "{reason:?}: REASONS[{slot}] disagrees with reason_slot"
            );
            assert!(!hit[slot], "{reason:?}: slot {slot} already taken");
            hit[slot] = true;
        }
        assert!(hit.iter().all(|&h| h), "some counter slot is unreachable");

        // Counting through the public API lands in the right slots.
        let stats = RuntimeStats::new(0);
        for &reason in REASONS.iter() {
            stats.note_reject(reason);
        }
        let table = EventTable::new(&Alphabet::new());
        let snap = stats.snapshot(&table);
        for &reason in REASONS.iter() {
            assert!(
                snap.rejects.contains(&(reason.name(), 1)),
                "{reason:?}: reject count missing from the snapshot"
            );
        }
    }

    /// Connection evictions are attributed per reason, surfaced in the
    /// JSON snapshot with every reason present (zero counts included),
    /// and session expulsions count separately from closes.
    #[test]
    fn conn_eviction_taxonomy_round_trips() {
        let table = EventTable::new(&Alphabet::from_names(["acc"]));
        let stats = RuntimeStats::new(table.len());
        stats.note_conn_open();
        stats.note_conn_evict(ConnEvictReason::SlowConsumer);
        stats.note_conn_close();
        stats.note_conn_evict(ConnEvictReason::Protocol);
        stats.note_conn_evict(ConnEvictReason::Protocol);
        stats.note_open();
        stats.note_expel();

        let snap = stats.snapshot(&table);
        assert_eq!(
            snap.conn_evictions,
            vec![("slow_consumer", 1), ("slow_read", 0), ("protocol", 2)]
        );
        assert_eq!(snap.sessions_expelled, 1);
        let value = snap.to_value();
        let conns = value.as_obj().unwrap()["connections"].as_obj().unwrap();
        let ev = conns["evictions"].as_obj().unwrap();
        assert_eq!(ev["slow_consumer"], Value::Int(1));
        assert_eq!(ev["slow_read"], Value::Int(0));
        assert_eq!(ev["protocol"], Value::Int(2));
        assert_eq!(
            value.as_obj().unwrap()["sessions"].as_obj().unwrap()["expelled"],
            Value::Int(1)
        );
        let text = format!("{snap}");
        assert!(text.contains("evictions slow_consumer=1 protocol=2"));
        assert!(text.contains("sessions expelled=1"));
    }

    /// Every `ConnEvictReason` owns a distinct slot, mirroring the
    /// reject-reason slot test.
    #[test]
    fn conn_evict_slots_cover_every_variant_exactly_once() {
        let mut hit = [false; CONN_EVICT_REASONS.len()];
        for &reason in CONN_EVICT_REASONS.iter() {
            let slot = conn_evict_slot(reason);
            assert_eq!(CONN_EVICT_REASONS[slot], reason);
            assert!(!hit[slot], "{reason:?}: slot {slot} already taken");
            hit[slot] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    /// Batch counters and byte counters land in the snapshot, the JSON
    /// tree, and the text rendering; the histogram buckets by the
    /// floor power of two with an open top bucket.
    #[test]
    fn batch_and_byte_counters_round_trip() {
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 1);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(127), 6);
        assert_eq!(batch_bucket(128), 7);
        assert_eq!(batch_bucket(100_000), 7);

        let table = EventTable::new(&Alphabet::from_names(["acc"]));
        let stats = RuntimeStats::new(table.len());
        stats.note_batch(1);
        stats.note_batch(3);
        stats.note_batch(256);
        stats.note_batch_inline(255);
        stats.note_batch_slow(5);
        stats.note_bytes_in(4096);
        stats.note_bytes_out(1234);

        let snap = stats.snapshot(&table);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.batch_frames, 260);
        assert_eq!(snap.batch_inline, 255);
        assert_eq!(snap.batch_slow, 5);
        assert_eq!(snap.batch_hist.len(), BATCH_BUCKETS);
        assert!(snap.batch_hist.contains(&("1", 1)));
        assert!(snap.batch_hist.contains(&("2", 1)));
        assert!(snap.batch_hist.contains(&("128+", 1)));
        assert_eq!(snap.bytes_in, 4096);
        assert_eq!(snap.bytes_out, 1234);

        let value = snap.to_value();
        let b = value.as_obj().unwrap()["batching"].as_obj().unwrap();
        assert_eq!(b["batches"], Value::Int(3));
        assert_eq!(b["frames"], Value::Int(260));
        assert_eq!(b["inline"], Value::Int(255));
        assert_eq!(b["slow_path"], Value::Int(5));
        assert_eq!(b["sizes"].as_obj().unwrap()["128+"], Value::Int(1));
        assert_eq!(b["sizes"].as_obj().unwrap()["64"], Value::Int(0));
        let w = value.as_obj().unwrap()["bytes"].as_obj().unwrap();
        assert_eq!(w["in"], Value::Int(4096));
        assert_eq!(w["out"], Value::Int(1234));

        let text = format!("{snap}");
        assert!(text.contains("batches 3 | batched frames 260 (inline 255 slow 5)"));
        assert!(text.contains("bytes in 4096 out 1234"));
    }

    /// Per-version session accounting, swap/retire counters and the
    /// wire identity all round-trip into snapshots, JSON and text.
    #[test]
    fn version_accounting_round_trips() {
        let table = EventTable::new(&Alphabet::from_names(["acc"]));
        let stats = RuntimeStats::new(table.len());
        stats.set_wire_identity(0xABCD_EF01_2345_6789, 1);
        stats.note_version_open(1);
        stats.note_version_open(1);
        stats.note_version_open(1);
        // Swap to v2: new sessions bind v2, v1 drains.
        stats.set_wire_identity(0xABCD_EF01_2345_6789, 2);
        stats.note_swap();
        stats.note_version_open(2);
        assert_eq!(stats.note_version_close(1), 2);
        assert_eq!(stats.sessions_on_version(1), 2);
        assert_eq!(stats.note_version_close(1), 1);
        assert_eq!(stats.note_version_close(1), 0, "v1 fully drained");
        stats.note_version_retired();
        // Closing an unknown version is a no-op, not an underflow.
        assert_eq!(stats.note_version_close(7), 0);

        let snap = stats.snapshot(&table);
        assert_eq!(snap.table_hash, 0xABCD_EF01_2345_6789);
        assert_eq!(snap.active_version, 2);
        assert_eq!(snap.version_sessions, vec![(2, 1)]);
        assert_eq!(snap.swaps, 1);
        assert_eq!(snap.versions_retired, 1);

        let value = snap.to_value();
        let obj = value.as_obj().unwrap();
        assert_eq!(
            obj["table_hash"],
            Value::Str("abcdef0123456789".to_string())
        );
        let r = obj["registry"].as_obj().unwrap();
        assert_eq!(r["active_version"], Value::Int(2));
        assert_eq!(r["swaps"], Value::Int(1));
        assert_eq!(r["retired"], Value::Int(1));
        assert_eq!(r["sessions"].as_obj().unwrap()["2"], Value::Int(1));

        let text = format!("{snap}");
        assert!(text.contains("wire table hash abcdef0123456789"));
        assert!(text.contains("version 2"));
        assert!(text.contains("v2=1"));
        assert!(text.contains("swaps 1 retired 1"));
    }

    #[test]
    fn guard_build_stats_surface_in_snapshots() {
        let table = EventTable::new(&Alphabet::from_names(["acc"]));
        let build = GuardBuildStats {
            dfa_states: 7,
            dfa_events: 1,
            table_bytes: 42,
            max_subset: 3,
            build_ms: 0.5,
        };
        let stats = RuntimeStats::with_guard_build(table.len(), build);
        let snap = stats.snapshot(&table);
        assert_eq!(snap.guard_build.dfa_states, 7);
        let value = snap.to_value();
        let g = value.as_obj().unwrap()["guard_build"].as_obj().unwrap();
        assert_eq!(g["dfa_states"], Value::Int(7));
        assert_eq!(g["table_bytes"], Value::Int(42));
        assert!(format!("{snap}").contains("guard dfa 7 states"));
    }
}
