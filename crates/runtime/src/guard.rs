//! Online conformance guard: per-session trace validation.
//!
//! A [`GuardProgram`] compiles the loaded system — the fixed components
//! plus the derived converter — into the exact CSR objects the static
//! verifier uses ([`protoquot_spec::compile_composite`] and
//! [`protoquot_spec::tau_star_rows`] over the shared
//! [`protoquot_spec::EventTable`]) and then **determinizes** the whole
//! per-frame check into a DFA at build time: states are the reachable
//! `(τ-closed composite subset, ψ-hub)` pairs, and the τ-closure, the
//! external step and the ψ-hub step are fused into one dense
//! `|states| × |Σ|` transition table whose entries carry the verdict:
//!
//! * **trace membership** — an event under which the subset goes empty
//!   is a dead edge ([`Conviction::NotATrace`]): no execution of
//!   `B ‖ C` produces the frame.
//! * **safety** — an event the subset survives but ψ cannot take is a
//!   [`Conviction::ServiceViolation`] edge (trace inclusion fails).
//! * **progress** — each DFA state precomputes the paper's
//!   sink-acceptance containment (`∃` acceptance set `A` of the hub
//!   with `A ⊆ τ*(s)`) over its subset. An edge into a state where
//!   *every* subset member fails is a [`Conviction::Stalled`] edge
//!   (the true system state must fail too); a state where *some*
//!   member fails confirms a client-attested stall
//!   ([`SessionGuard::attest_stall`]).
//!
//! The steady-state [`SessionGuard`] is therefore a single `u32` DFA
//! state and one table row load per frame — O(1), no allocation — where
//! the retained [`SessionGuardReference`] re-plays subset tracking
//! (τ-closure + ext step + containment scan) on every frame. The
//! reference is the differential oracle: `tests/runtime_agreement.rs`
//! asserts bit-identical convictions (kind, event index, frame
//! position) between the two on every system it sweeps.
//!
//! Both progress rules are sound with respect to the static check: for
//! a converter that passes [`protoquot_spec::verify_system`], every
//! reachable `(state, hub)` pair satisfies containment, so no genuine
//! trace can ever convict.

use crate::codec::RejectReason;
use protoquot_spec::{
    compile_composite, normalize, tau_star_rows, Alphabet, CompiledComposite, EventId, EventTable,
    NormalSpec, Spec, SpecError,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Why a session was convicted by the online guard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Conviction {
    /// The frame is not an event any execution of `B ‖ C` can produce
    /// after the accepted prefix.
    NotATrace {
        /// Event-table index of the offending frame.
        event: u16,
    },
    /// `B ‖ C` can produce the event, but the service specification
    /// cannot — trace inclusion (the paper's safety half) fails.
    ServiceViolation {
        /// Event-table index of the offending frame.
        event: u16,
    },
    /// Sink-acceptance containment fails for the reachable states —
    /// the progress half of satisfaction is violated.
    Stalled,
}

impl Conviction {
    /// The wire reject code reported for this conviction.
    pub fn reject_reason(&self) -> RejectReason {
        match self {
            Conviction::NotATrace { .. } => RejectReason::NotATrace,
            Conviction::ServiceViolation { .. } => RejectReason::ServiceViolation,
            Conviction::Stalled => RejectReason::Stalled,
        }
    }
}

impl std::fmt::Display for Conviction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Conviction::NotATrace { event } => write!(f, "not a trace (event #{event})"),
            Conviction::ServiceViolation { event } => {
                write!(f, "service violation (event #{event})")
            }
            Conviction::Stalled => write!(f, "progress stall"),
        }
    }
}

/// Build-time cost and size of the compiled guard DFA, surfaced through
/// `RuntimeStats` snapshots, `protoquot serve --stats` and the EXP-R
/// bench report.
#[derive(Clone, Debug, Default)]
pub struct GuardBuildStats {
    /// Reachable `(composite subset, ψ-hub)` DFA states.
    pub dfa_states: usize,
    /// Events per transition row (`|Σ|`, the shared event table).
    pub dfa_events: usize,
    /// Bytes of the dense transition table plus the per-state verdict
    /// and subset-size side arrays.
    pub table_bytes: usize,
    /// Largest composite subset behind any DFA state.
    pub max_subset: usize,
    /// Wall-clock milliseconds spent subset-constructing the DFA
    /// (compile + τ* rows + normalization excluded).
    pub build_ms: f64,
}

impl std::fmt::Display for GuardBuildStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states x {} events, {} table bytes, max subset {}, built in {:.3} ms",
            self.dfa_states, self.dfa_events, self.table_bytes, self.max_subset, self.build_ms
        )
    }
}

/// Transition-table sentinel: the event extends no trace of `B ‖ C`.
const T_NOT_A_TRACE: u32 = u32::MAX;
/// Transition-table sentinel: ψ has no step for the event.
const T_SERVICE_VIOLATION: u32 = u32::MAX - 1;
/// Transition-table sentinel: every reachable state in the target
/// subset fails sink-acceptance containment (eager stall).
const T_STALL: u32 = u32::MAX - 2;
/// Targets at or above this value are verdicts, not states.
const T_SENTINEL_BASE: u32 = T_STALL;

/// Borrowed view of a [`GuardProgram`]'s determinized tables — the
/// exact arrays the per-frame check reads — exposed for the compiled
/// artifact format ([`crate::artifact`]), which persists them and
/// asserts a loaded artifact's tables are byte-identical to a fresh
/// rebuild from its embedded specs.
pub struct GuardDfaTables<'a> {
    /// `|Σ|` — the transition-row stride.
    pub nsym: usize,
    /// Initial DFA state.
    pub dfa_initial: u32,
    /// Dense `|states| × nsym` transition/verdict table.
    pub trans: &'a [u32],
    /// Per-state attested-stall confirmation flags.
    pub any_fail: &'a [bool],
    /// Per-state composite-subset sizes.
    pub subset_size: &'a [u32],
    /// Set when sessions start convicted.
    pub initial_verdict: Option<&'a Conviction>,
}

/// Compiled guard shared by every session of one gateway.
pub struct GuardProgram {
    table: Arc<EventTable>,
    comp: CompiledComposite,
    /// `τ*` bitset rows, `words` u64 words per composite state.
    tau: Vec<u64>,
    words: usize,
    norm: NormalSpec,
    /// Per-hub acceptance sets as bitsets over the event table.
    acc: Vec<Vec<Vec<u64>>>,
    /// Fused τ-closure + ext-step + ψ-step DFA: row `s` holds the
    /// target (or verdict sentinel) for every event index.
    trans: Vec<u32>,
    /// `|Σ|` — the transition-row stride.
    nsym: usize,
    /// Initial DFA state (`(τ*-closure of the initial composite state,
    /// ψ_A.ε)`).
    dfa_initial: u32,
    /// Per-DFA-state: some subset member fails containment (confirms an
    /// attested stall).
    any_fail: Vec<bool>,
    /// Per-DFA-state: composite states in the subset (for parity with
    /// the reference guard's `possible_states`).
    subset_size: Vec<u32>,
    /// Set when the *initial* configuration already fails containment
    /// for every reachable state: sessions start convicted.
    initial_verdict: Option<Conviction>,
    build: GuardBuildStats,
}

impl GuardProgram {
    /// Compiles `parts` (components plus converter) against `service`
    /// and subset-constructs the per-frame check into a DFA.
    ///
    /// Mirrors the validation of [`protoquot_spec::verify_system`]: the
    /// solo (externally visible) alphabet of the composition must equal
    /// the service alphabet, and no event may be shared by more than
    /// two components.
    pub fn new(parts: &[&Spec], service: &Spec) -> Result<GuardProgram, SpecError> {
        assert!(
            !parts.is_empty(),
            "GuardProgram needs at least one component"
        );
        let mut counts: HashMap<EventId, usize> = HashMap::new();
        for p in parts {
            for e in p.alphabet().iter() {
                *counts.entry(e).or_insert(0) += 1;
            }
        }
        let mut iface = Alphabet::new();
        for (&e, &c) in &counts {
            if c == 1 {
                iface.insert(e);
            }
        }
        if &iface != service.alphabet() {
            return Err(SpecError::InterfaceMismatch {
                left: format!("{iface}"),
                right: format!("{}", service.alphabet()),
            });
        }
        let table = EventTable::new(service.alphabet());
        let comp = compile_composite(parts, &table)?;
        let words = table.words();
        let tau = tau_star_rows(&comp, words);
        let norm = normalize(service);
        let acc = (0..norm.num_hubs())
            .map(|h| {
                norm.acceptance(h)
                    .iter()
                    .map(|a| table.alphabet_bits(a))
                    .collect()
            })
            .collect();
        let mut prog = GuardProgram {
            table: Arc::new(table),
            comp,
            tau,
            words,
            norm,
            acc,
            trans: Vec::new(),
            nsym: 0,
            dfa_initial: 0,
            any_fail: Vec::new(),
            subset_size: Vec::new(),
            initial_verdict: None,
            build: GuardBuildStats::default(),
        };
        prog.determinize();
        Ok(prog)
    }

    /// Subset-constructs the DFA over the compiled composite: states are
    /// reachable `(sorted τ-closed subset, hub)` pairs, edges fuse the
    /// ext step, the τ-closure of its image and the ψ-hub step, and the
    /// progress verdicts are folded into the table (stall edges) and the
    /// per-state `any_fail` flags.
    fn determinize(&mut self) {
        let t0 = Instant::now();
        let nsym = self.table.len();
        let n = self.comp.n;

        // Scratch for τ-closures and per-event ext steps.
        let mut seen = vec![false; n];
        let tau_close = |set: &mut Vec<u32>, seen: &mut [bool]| {
            for &s in set.iter() {
                seen[s as usize] = true;
            }
            let mut i = 0;
            while i < set.len() {
                let s = set[i] as usize;
                for k in self.comp.int_off[s] as usize..self.comp.int_off[s + 1] as usize {
                    let t = self.comp.int_tgt[k];
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        set.push(t);
                    }
                }
                i += 1;
            }
            set.sort_unstable();
            for &s in set.iter() {
                seen[s as usize] = false;
            }
        };

        let mut initial = vec![self.comp.initial];
        tau_close(&mut initial, &mut seen);

        let mut index: HashMap<(Box<[u32]>, u32), u32> = HashMap::new();
        let mut subsets: Vec<(Box<[u32]>, u32)> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut any_fail: Vec<bool> = Vec::new();
        let mut subset_size: Vec<u32> = Vec::new();
        let mut max_subset = 0usize;

        let initial_hub = self.norm.initial_hub() as u32;
        let push_state = |subset: Box<[u32]>,
                          hub: u32,
                          index: &mut HashMap<(Box<[u32]>, u32), u32>,
                          subsets: &mut Vec<(Box<[u32]>, u32)>,
                          work: &mut Vec<u32>|
         -> u32 {
            let key = (subset, hub);
            if let Some(&id) = index.get(&key) {
                return id;
            }
            let id = subsets.len() as u32;
            index.insert(key.clone(), id);
            subsets.push(key);
            work.push(id);
            id
        };

        let mut work: Vec<u32> = Vec::new();
        self.dfa_initial = push_state(
            initial.clone().into_boxed_slice(),
            initial_hub,
            &mut index,
            &mut subsets,
            &mut work,
        );
        if self.all_fail(&initial, initial_hub as usize) {
            // The initial configuration already fails containment for
            // every reachable state — sessions start convicted, exactly
            // as the reference guard does.
            self.initial_verdict = Some(Conviction::Stalled);
        }

        let mut next: Vec<u32> = Vec::new();
        while let Some(id) = work.pop() {
            let (subset, hub) = subsets[id as usize].clone();
            max_subset = max_subset.max(subset.len());
            let row = id as usize * nsym;
            if trans.len() < row + nsym {
                trans.resize(subsets.len() * nsym, T_NOT_A_TRACE);
            }
            while any_fail.len() < subsets.len() {
                any_fail.push(false);
                subset_size.push(0);
            }
            any_fail[id as usize] = subset.iter().any(|&s| !self.progress_ok(s, hub as usize));
            subset_size[id as usize] = subset.len() as u32;

            for ev in 0..nsym as u32 {
                next.clear();
                for &s in subset.iter() {
                    let s = s as usize;
                    for k in self.comp.ext_off[s] as usize..self.comp.ext_off[s + 1] as usize {
                        if self.comp.ext_ev[k] == ev {
                            let t = self.comp.ext_tgt[k];
                            if !seen[t as usize] {
                                seen[t as usize] = true;
                                next.push(t);
                            }
                        }
                    }
                }
                for &t in next.iter() {
                    seen[t as usize] = false;
                }
                let target = if next.is_empty() {
                    T_NOT_A_TRACE
                } else {
                    let eid = self.table.event(ev).expect("event index within table");
                    match self.norm.step(hub as usize, eid) {
                        None => T_SERVICE_VIOLATION,
                        Some(next_hub) => {
                            tau_close(&mut next, &mut seen);
                            if self.all_fail(&next, next_hub) {
                                // A stall edge is terminal: the target
                                // state is never resident, so it is not
                                // interned or explored.
                                T_STALL
                            } else {
                                push_state(
                                    next.clone().into_boxed_slice(),
                                    next_hub as u32,
                                    &mut index,
                                    &mut subsets,
                                    &mut work,
                                )
                            }
                        }
                    }
                };
                // `trans` may have grown rows for states interned after
                // this one; the row base is stable because ids are dense.
                if trans.len() < subsets.len() * nsym {
                    trans.resize(subsets.len() * nsym, T_NOT_A_TRACE);
                }
                trans[row + ev as usize] = target;
            }
        }
        // States interned last may not have had rows/flags materialized.
        trans.resize(subsets.len() * nsym, T_NOT_A_TRACE);
        while any_fail.len() < subsets.len() {
            any_fail.push(false);
            subset_size.push(0);
        }

        debug_assert!(
            subsets.len() < T_SENTINEL_BASE as usize,
            "guard DFA state space collides with verdict sentinels"
        );
        self.nsym = nsym;
        self.trans = trans;
        self.any_fail = any_fail;
        self.subset_size = subset_size;
        self.build = GuardBuildStats {
            dfa_states: subsets.len(),
            dfa_events: nsym,
            table_bytes: self.trans.len() * 4 + self.any_fail.len() + self.subset_size.len() * 4,
            max_subset,
            build_ms: t0.elapsed().as_secs_f64() * 1e3,
        };
    }

    /// The shared event table (index ↔ event mapping on the wire).
    pub fn table(&self) -> &Arc<EventTable> {
        &self.table
    }

    /// Composite states of the compiled `B ‖ C`.
    pub fn num_states(&self) -> usize {
        self.comp.n
    }

    /// ψ-hubs of the normalized service.
    pub fn num_hubs(&self) -> usize {
        self.norm.num_hubs()
    }

    /// DFA states of the determinized guard.
    pub fn num_dfa_states(&self) -> usize {
        self.build.dfa_states
    }

    /// Build-time cost and size of the guard DFA.
    pub fn build_stats(&self) -> &GuardBuildStats {
        &self.build
    }

    /// Borrowed view of the determinized tables, for compiled-artifact
    /// serialization and the byte-identical rebuild check on load. The
    /// subset construction is deterministic for a given system, so two
    /// builds of the same specs always return identical tables.
    pub fn dfa_tables(&self) -> GuardDfaTables<'_> {
        GuardDfaTables {
            nsym: self.nsym,
            dfa_initial: self.dfa_initial,
            trans: &self.trans,
            any_fail: &self.any_fail,
            subset_size: &self.subset_size,
            initial_verdict: self.initial_verdict.as_ref(),
        }
    }

    /// Walks the DFA greedily (first non-convicting event from each
    /// state), returning up to `len` event indices of a genuine,
    /// never-convicting trace of the loaded system — the workload the
    /// relay-capacity benchmarks pump through the gateway. Shorter than
    /// `len` only if the walk hits a state with no surviving edge.
    pub fn sample_accepted(&self, len: usize) -> Vec<u16> {
        let mut out = Vec::with_capacity(len);
        let mut cur = self.dfa_initial;
        if self.initial_verdict.is_some() {
            return out;
        }
        for _ in 0..len {
            let row = &self.trans[cur as usize * self.nsym..(cur as usize + 1) * self.nsym];
            let Some(ev) = row.iter().position(|&t| t < T_SENTINEL_BASE) else {
                break;
            };
            out.push(ev as u16);
            cur = row[ev];
        }
        out
    }

    /// Does composite state `s` satisfy sink-acceptance containment
    /// against hub `hub`?
    fn progress_ok(&self, s: u32, hub: usize) -> bool {
        let row = &self.tau[s as usize * self.words..(s as usize + 1) * self.words];
        self.acc[hub]
            .iter()
            .any(|a| a.iter().zip(row).all(|(&aw, &rw)| aw & !rw == 0))
    }

    /// Does *every* state of `subset` fail containment against `hub`?
    fn all_fail(&self, subset: &[u32], hub: usize) -> bool {
        subset.iter().all(|&s| !self.progress_ok(s, hub))
    }
}

/// Per-session online guard state: one `u32` DFA state.
///
/// [`SessionGuard::observe`] is a single transition-table load per
/// frame; the subset tracking, τ-closure and containment scans all
/// happened at [`GuardProgram::new`] time. The pre-determinization
/// implementation is retained as [`SessionGuardReference`] — the
/// differential oracle.
pub struct SessionGuard {
    prog: Arc<GuardProgram>,
    cur: u32,
    convicted: Option<Conviction>,
    observed: u64,
}

impl SessionGuard {
    /// A fresh guard at the initial DFA state.
    ///
    /// If the initial configuration already fails progress containment
    /// for every reachable state, the session starts convicted — the
    /// static verdict is necessarily a progress failure too.
    pub fn new(prog: Arc<GuardProgram>) -> SessionGuard {
        let cur = prog.dfa_initial;
        let convicted = prog.initial_verdict.clone();
        SessionGuard {
            prog,
            cur,
            convicted,
            observed: 0,
        }
    }

    /// Validates one external event frame (an event-table index).
    ///
    /// On `Err` the session is convicted and stays convicted; every
    /// later call returns the same conviction.
    pub fn observe(&mut self, event: u16) -> Result<(), Conviction> {
        if let Some(c) = &self.convicted {
            return Err(c.clone());
        }
        let prog = &*self.prog;
        let ev = usize::from(event);
        if ev >= prog.nsym {
            // The gateway rejects unknown indices before reaching the
            // guard; treat a stray one as a non-trace.
            let c = Conviction::NotATrace { event };
            self.convicted = Some(c.clone());
            return Err(c);
        }
        let target = prog.trans[self.cur as usize * prog.nsym + ev];
        if target < T_SENTINEL_BASE {
            self.cur = target;
            self.observed += 1;
            return Ok(());
        }
        let c = match target {
            T_NOT_A_TRACE => Conviction::NotATrace { event },
            T_SERVICE_VIOLATION => Conviction::ServiceViolation { event },
            _ => {
                // A stall edge extends the trace with a genuine step —
                // the conviction is about the state it lands in, so the
                // frame counts as observed (the reference guard agrees).
                self.observed += 1;
                Conviction::Stalled
            }
        };
        self.convicted = Some(c.clone());
        Err(c)
    }

    /// Confirms or dismisses a client-attested stall.
    ///
    /// Convicts when some possible state fails containment — the
    /// attested stall then witnesses a reachable progress-failing pair.
    /// An attestation no possible state supports is dismissed (`Ok`).
    pub fn attest_stall(&mut self) -> Result<(), Conviction> {
        if let Some(c) = &self.convicted {
            return Err(c.clone());
        }
        if self.prog.any_fail[self.cur as usize] {
            let c = Conviction::Stalled;
            self.convicted = Some(c.clone());
            return Err(c);
        }
        Ok(())
    }

    /// The conviction, if the session has one.
    pub fn convicted(&self) -> Option<&Conviction> {
        self.convicted.as_ref()
    }

    /// Frames accepted so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of composite states currently possible.
    pub fn possible_states(&self) -> usize {
        self.prog.subset_size[self.cur as usize] as usize
    }

    /// The interned event behind a wire index, if any.
    pub fn event_of(&self, event: u16) -> Option<EventId> {
        self.prog.table.event(u32::from(event))
    }
}

/// The pre-determinization per-session guard: re-plays subset tracking
/// over the compiled `B ‖ C` product (τ-closure + ext step), the ψ-hub
/// step and the containment scans on **every frame**. Retained verbatim
/// as the differential oracle for [`SessionGuard`] — the same
/// engine/reference split every other phase of this workspace has.
pub struct SessionGuardReference {
    prog: Arc<GuardProgram>,
    /// τ-closed, sorted, deduplicated set of possible composite states.
    possible: Vec<u32>,
    /// Scratch mark bits for the τ-closure (cleared after each use).
    seen: Vec<bool>,
    hub: usize,
    convicted: Option<Conviction>,
    observed: u64,
}

impl SessionGuardReference {
    /// A fresh guard at the initial state of the compiled product.
    pub fn new(prog: Arc<GuardProgram>) -> SessionGuardReference {
        let n = prog.num_states();
        let possible = vec![prog.comp.initial];
        let hub = prog.norm.initial_hub();
        let mut guard = SessionGuardReference {
            prog,
            possible,
            seen: vec![false; n],
            hub,
            convicted: None,
            observed: 0,
        };
        guard.tau_close();
        if guard.all_fail() {
            guard.convicted = Some(Conviction::Stalled);
        }
        guard
    }

    /// Extends `possible` with everything reachable over internal
    /// edges, leaving it sorted and deduplicated.
    fn tau_close(&mut self) {
        let comp = &self.prog.comp;
        for &s in &self.possible {
            self.seen[s as usize] = true;
        }
        let mut i = 0;
        while i < self.possible.len() {
            let s = self.possible[i] as usize;
            for k in comp.int_off[s] as usize..comp.int_off[s + 1] as usize {
                let t = comp.int_tgt[k];
                if !self.seen[t as usize] {
                    self.seen[t as usize] = true;
                    self.possible.push(t);
                }
            }
            i += 1;
        }
        self.possible.sort_unstable();
        for &s in &self.possible {
            self.seen[s as usize] = false;
        }
    }

    fn all_fail(&self) -> bool {
        self.possible
            .iter()
            .all(|&s| !self.prog.progress_ok(s, self.hub))
    }

    /// Validates one external event frame (an event-table index).
    pub fn observe(&mut self, event: u16) -> Result<(), Conviction> {
        if let Some(c) = &self.convicted {
            return Err(c.clone());
        }
        let Some(eid) = self.prog.table.event(u32::from(event)) else {
            let c = Conviction::NotATrace { event };
            self.convicted = Some(c.clone());
            return Err(c);
        };
        let comp = &self.prog.comp;
        let mut next: Vec<u32> = Vec::with_capacity(self.possible.len());
        for &s in &self.possible {
            let s = s as usize;
            for k in comp.ext_off[s] as usize..comp.ext_off[s + 1] as usize {
                if comp.ext_ev[k] == u32::from(event) {
                    let t = comp.ext_tgt[k];
                    if !self.seen[t as usize] {
                        self.seen[t as usize] = true;
                        next.push(t);
                    }
                }
            }
        }
        for &t in &next {
            self.seen[t as usize] = false;
        }
        if next.is_empty() {
            let c = Conviction::NotATrace { event };
            self.convicted = Some(c.clone());
            return Err(c);
        }
        let Some(hub) = self.prog.norm.step(self.hub, eid) else {
            let c = Conviction::ServiceViolation { event };
            self.convicted = Some(c.clone());
            return Err(c);
        };
        self.possible = next;
        self.hub = hub;
        self.observed += 1;
        self.tau_close();
        if self.all_fail() {
            let c = Conviction::Stalled;
            self.convicted = Some(c.clone());
            return Err(c);
        }
        Ok(())
    }

    /// Confirms or dismisses a client-attested stall.
    pub fn attest_stall(&mut self) -> Result<(), Conviction> {
        if let Some(c) = &self.convicted {
            return Err(c.clone());
        }
        if self
            .possible
            .iter()
            .any(|&s| !self.prog.progress_ok(s, self.hub))
        {
            let c = Conviction::Stalled;
            self.convicted = Some(c.clone());
            return Err(c);
        }
        Ok(())
    }

    /// The conviction, if the session has one.
    pub fn convicted(&self) -> Option<&Conviction> {
        self.convicted.as_ref()
    }

    /// Frames accepted so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of composite states currently possible.
    pub fn possible_states(&self) -> usize {
        self.possible.len()
    }

    /// The interned event behind a wire index, if any.
    pub fn event_of(&self, event: u16) -> Option<EventId> {
        self.prog.table.event(u32::from(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("service");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    fn idx(prog: &GuardProgram, name: &str) -> u16 {
        prog.table
            .events
            .iter()
            .position(|e| e.name() == name)
            .unwrap() as u16
    }

    #[test]
    fn genuine_traces_are_accepted() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let mid = b.state("mid");
        let s1 = b.state("s1");
        b.ext(s0, "acc", mid);
        b.int(mid, s1);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let (acc, del) = (idx(&prog, "acc"), idx(&prog, "del"));
        let mut g = SessionGuard::new(Arc::clone(&prog));
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        for _ in 0..3 {
            assert_eq!(g.observe(acc), Ok(()));
            assert_eq!(g.observe(del), Ok(()));
            assert_eq!(r.observe(acc), Ok(()));
            assert_eq!(r.observe(del), Ok(()));
        }
        assert_eq!(g.observed(), 6);
        assert_eq!(r.observed(), 6);
        assert!(g.convicted().is_none());
        assert_eq!(g.attest_stall(), Ok(()));
        assert_eq!(r.attest_stall(), Ok(()));
        assert!(prog.build_stats().dfa_states >= 2);
        assert!(prog.build_stats().table_bytes > 0);
    }

    #[test]
    fn non_traces_and_service_violations_convict() {
        // `del` is enabled initially in the implementation but not in
        // the service: membership passes, trace inclusion fails.
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        b.ext(s0, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let (acc, del) = (idx(&prog, "acc"), idx(&prog, "del"));

        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(
            g.observe(del),
            Err(Conviction::ServiceViolation { event: del })
        );
        // Convictions are sticky.
        assert_eq!(
            g.observe(acc),
            Err(Conviction::ServiceViolation { event: del })
        );

        // Double `acc` is impossible in the composite itself.
        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(g.observe(acc), Ok(()));
        assert_eq!(g.observe(acc), Err(Conviction::NotATrace { event: acc }));

        // The reference agrees frame for frame.
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        assert_eq!(
            r.observe(del),
            Err(Conviction::ServiceViolation { event: del })
        );
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        assert_eq!(r.observe(acc), Ok(()));
        assert_eq!(r.observe(acc), Err(Conviction::NotATrace { event: acc }));
    }

    #[test]
    fn dead_ends_convict_eagerly() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let dead = b.state("dead");
        b.ext(s0, "acc", dead);
        let implementation = b
            .build()
            .unwrap()
            .with_alphabet_extended(service().alphabet());
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let acc = idx(&prog, "acc");
        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(g.observe(acc), Err(Conviction::Stalled));
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        assert_eq!(r.observe(acc), Err(Conviction::Stalled));
    }

    #[test]
    fn attested_stalls_need_a_failing_witness() {
        // Nondeterministic `acc`: one branch progresses, one is stuck.
        // The eager all-fail rule cannot fire, but an attested stall is
        // confirmed by the stuck branch.
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let dead = b.state("dead");
        b.ext(s0, "acc", s1);
        b.ext(s0, "acc", dead);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let acc = idx(&prog, "acc");
        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(g.observe(acc), Ok(()));
        assert_eq!(g.possible_states(), 2);
        assert_eq!(g.attest_stall(), Err(Conviction::Stalled));
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        assert_eq!(r.observe(acc), Ok(()));
        assert_eq!(r.possible_states(), 2);
        assert_eq!(r.attest_stall(), Err(Conviction::Stalled));
    }

    #[test]
    fn interface_mismatch_is_rejected() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        b.ext(s0, "other", s0);
        let implementation = b.build().unwrap();
        assert!(GuardProgram::new(&[&implementation], &service()).is_err());
    }

    #[test]
    fn sampled_traces_never_convict() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let trace = prog.sample_accepted(256);
        assert_eq!(trace.len(), 256);
        let mut g = SessionGuard::new(Arc::clone(&prog));
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        for &ev in &trace {
            assert_eq!(g.observe(ev), Ok(()));
            assert_eq!(r.observe(ev), Ok(()));
        }
    }

    #[test]
    fn stray_indices_convict_both_guards() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let mut g = SessionGuard::new(Arc::clone(&prog));
        let mut r = SessionGuardReference::new(Arc::clone(&prog));
        assert_eq!(g.observe(999), Err(Conviction::NotATrace { event: 999 }));
        assert_eq!(r.observe(999), Err(Conviction::NotATrace { event: 999 }));
    }
}
