//! Online conformance guard: per-session trace validation.
//!
//! A [`GuardProgram`] compiles the loaded system — the fixed components
//! plus the derived converter — into the exact CSR objects the static
//! verifier uses ([`protoquot_spec::compile_composite`] and
//! [`protoquot_spec::tau_star_rows`] over the shared
//! [`protoquot_spec::EventTable`]) and hands out per-session
//! [`SessionGuard`]s that re-check the paper's two-part satisfaction
//! relation *online*, frame by frame:
//!
//! * **trace membership** — the guard tracks the subset of composite
//!   states reachable under the observed external trace (τ-closure,
//!   then an external step per frame). An empty set convicts the frame
//!   as [`Conviction::NotATrace`]: no execution of `B ‖ C` produces it.
//! * **safety** — the ψ-hub of the normalized service steps alongside.
//!   A frame the service cannot take is a
//!   [`Conviction::ServiceViolation`] (trace inclusion fails).
//! * **progress** — after every accepted frame, each possible composite
//!   state is tested for the paper's sink-acceptance containment
//!   (`∃` acceptance set `A` of the current hub with `A ⊆ τ*(s)`).
//!   When *every* possible state fails, the true system state fails
//!   too, so the session is convicted of [`Conviction::Stalled`]. When
//!   a client *attests* a stall ([`SessionGuard::attest_stall`]), the
//!   existence of *one* failing possible state confirms a reachable
//!   progress fault and convicts.
//!
//! Both progress rules are sound with respect to the static check: for
//! a converter that passes [`protoquot_spec::verify_system`], every
//! reachable `(state, hub)` pair satisfies containment, so no genuine
//! trace can ever convict.

use crate::codec::RejectReason;
use protoquot_spec::{
    compile_composite, normalize, tau_star_rows, Alphabet, CompiledComposite, EventId, EventTable,
    NormalSpec, Spec, SpecError,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Why a session was convicted by the online guard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Conviction {
    /// The frame is not an event any execution of `B ‖ C` can produce
    /// after the accepted prefix.
    NotATrace {
        /// Event-table index of the offending frame.
        event: u16,
    },
    /// `B ‖ C` can produce the event, but the service specification
    /// cannot — trace inclusion (the paper's safety half) fails.
    ServiceViolation {
        /// Event-table index of the offending frame.
        event: u16,
    },
    /// Sink-acceptance containment fails for the reachable states —
    /// the progress half of satisfaction is violated.
    Stalled,
}

impl Conviction {
    /// The wire reject code reported for this conviction.
    pub fn reject_reason(&self) -> RejectReason {
        match self {
            Conviction::NotATrace { .. } => RejectReason::NotATrace,
            Conviction::ServiceViolation { .. } => RejectReason::ServiceViolation,
            Conviction::Stalled => RejectReason::Stalled,
        }
    }
}

impl std::fmt::Display for Conviction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Conviction::NotATrace { event } => write!(f, "not a trace (event #{event})"),
            Conviction::ServiceViolation { event } => {
                write!(f, "service violation (event #{event})")
            }
            Conviction::Stalled => write!(f, "progress stall"),
        }
    }
}

/// Compiled guard shared by every session of one gateway.
pub struct GuardProgram {
    table: Arc<EventTable>,
    comp: CompiledComposite,
    /// `τ*` bitset rows, `words` u64 words per composite state.
    tau: Vec<u64>,
    words: usize,
    norm: NormalSpec,
    /// Per-hub acceptance sets as bitsets over the event table.
    acc: Vec<Vec<Vec<u64>>>,
}

impl GuardProgram {
    /// Compiles `parts` (components plus converter) against `service`.
    ///
    /// Mirrors the validation of [`protoquot_spec::verify_system`]: the
    /// solo (externally visible) alphabet of the composition must equal
    /// the service alphabet, and no event may be shared by more than
    /// two components.
    pub fn new(parts: &[&Spec], service: &Spec) -> Result<GuardProgram, SpecError> {
        assert!(
            !parts.is_empty(),
            "GuardProgram needs at least one component"
        );
        let mut counts: HashMap<EventId, usize> = HashMap::new();
        for p in parts {
            for e in p.alphabet().iter() {
                *counts.entry(e).or_insert(0) += 1;
            }
        }
        let mut iface = Alphabet::new();
        for (&e, &c) in &counts {
            if c == 1 {
                iface.insert(e);
            }
        }
        if &iface != service.alphabet() {
            return Err(SpecError::InterfaceMismatch {
                left: format!("{iface}"),
                right: format!("{}", service.alphabet()),
            });
        }
        let table = EventTable::new(service.alphabet());
        let comp = compile_composite(parts, &table)?;
        let words = table.words();
        let tau = tau_star_rows(&comp, words);
        let norm = normalize(service);
        let acc = (0..norm.num_hubs())
            .map(|h| {
                norm.acceptance(h)
                    .iter()
                    .map(|a| table.alphabet_bits(a))
                    .collect()
            })
            .collect();
        Ok(GuardProgram {
            table: Arc::new(table),
            comp,
            tau,
            words,
            norm,
            acc,
        })
    }

    /// The shared event table (index ↔ event mapping on the wire).
    pub fn table(&self) -> &Arc<EventTable> {
        &self.table
    }

    /// Composite states of the compiled `B ‖ C`.
    pub fn num_states(&self) -> usize {
        self.comp.n
    }

    /// ψ-hubs of the normalized service.
    pub fn num_hubs(&self) -> usize {
        self.norm.num_hubs()
    }

    /// Does composite state `s` satisfy sink-acceptance containment
    /// against hub `hub`?
    fn progress_ok(&self, s: u32, hub: usize) -> bool {
        let row = &self.tau[s as usize * self.words..(s as usize + 1) * self.words];
        self.acc[hub]
            .iter()
            .any(|a| a.iter().zip(row).all(|(&aw, &rw)| aw & !rw == 0))
    }
}

/// Per-session online guard state.
pub struct SessionGuard {
    prog: Arc<GuardProgram>,
    /// τ-closed, sorted, deduplicated set of possible composite states.
    possible: Vec<u32>,
    /// Scratch mark bits for the τ-closure (cleared after each use).
    seen: Vec<bool>,
    hub: usize,
    convicted: Option<Conviction>,
    observed: u64,
}

impl SessionGuard {
    /// A fresh guard at the initial state of the compiled product.
    ///
    /// If the initial configuration already fails progress containment
    /// for every reachable state, the session starts convicted — the
    /// static verdict is necessarily a progress failure too.
    pub fn new(prog: Arc<GuardProgram>) -> SessionGuard {
        let n = prog.num_states();
        let possible = vec![prog.comp.initial];
        let hub = prog.norm.initial_hub();
        let mut guard = SessionGuard {
            prog,
            possible,
            seen: vec![false; n],
            hub,
            convicted: None,
            observed: 0,
        };
        guard.tau_close();
        if guard.all_fail() {
            guard.convicted = Some(Conviction::Stalled);
        }
        guard
    }

    /// Extends `possible` with everything reachable over internal
    /// edges, leaving it sorted and deduplicated.
    fn tau_close(&mut self) {
        let comp = &self.prog.comp;
        for &s in &self.possible {
            self.seen[s as usize] = true;
        }
        let mut i = 0;
        while i < self.possible.len() {
            let s = self.possible[i] as usize;
            for k in comp.int_off[s] as usize..comp.int_off[s + 1] as usize {
                let t = comp.int_tgt[k];
                if !self.seen[t as usize] {
                    self.seen[t as usize] = true;
                    self.possible.push(t);
                }
            }
            i += 1;
        }
        self.possible.sort_unstable();
        for &s in &self.possible {
            self.seen[s as usize] = false;
        }
    }

    fn all_fail(&self) -> bool {
        self.possible
            .iter()
            .all(|&s| !self.prog.progress_ok(s, self.hub))
    }

    /// Validates one external event frame (an event-table index).
    ///
    /// On `Err` the session is convicted and stays convicted; every
    /// later call returns the same conviction.
    pub fn observe(&mut self, event: u16) -> Result<(), Conviction> {
        if let Some(c) = &self.convicted {
            return Err(c.clone());
        }
        let Some(eid) = self.prog.table.event(u32::from(event)) else {
            // The gateway rejects unknown indices before reaching the
            // guard; treat a stray one as a non-trace.
            let c = Conviction::NotATrace { event };
            self.convicted = Some(c.clone());
            return Err(c);
        };
        let comp = &self.prog.comp;
        let mut next: Vec<u32> = Vec::with_capacity(self.possible.len());
        for &s in &self.possible {
            let s = s as usize;
            for k in comp.ext_off[s] as usize..comp.ext_off[s + 1] as usize {
                if comp.ext_ev[k] == u32::from(event) {
                    let t = comp.ext_tgt[k];
                    if !self.seen[t as usize] {
                        self.seen[t as usize] = true;
                        next.push(t);
                    }
                }
            }
        }
        for &t in &next {
            self.seen[t as usize] = false;
        }
        if next.is_empty() {
            let c = Conviction::NotATrace { event };
            self.convicted = Some(c.clone());
            return Err(c);
        }
        let Some(hub) = self.prog.norm.step(self.hub, eid) else {
            let c = Conviction::ServiceViolation { event };
            self.convicted = Some(c.clone());
            return Err(c);
        };
        self.possible = next;
        self.hub = hub;
        self.observed += 1;
        self.tau_close();
        if self.all_fail() {
            let c = Conviction::Stalled;
            self.convicted = Some(c.clone());
            return Err(c);
        }
        Ok(())
    }

    /// Confirms or dismisses a client-attested stall.
    ///
    /// Convicts when some possible state fails containment — the
    /// attested stall then witnesses a reachable progress-failing pair.
    /// An attestation no possible state supports is dismissed (`Ok`).
    pub fn attest_stall(&mut self) -> Result<(), Conviction> {
        if let Some(c) = &self.convicted {
            return Err(c.clone());
        }
        if self
            .possible
            .iter()
            .any(|&s| !self.prog.progress_ok(s, self.hub))
        {
            let c = Conviction::Stalled;
            self.convicted = Some(c.clone());
            return Err(c);
        }
        Ok(())
    }

    /// The conviction, if the session has one.
    pub fn convicted(&self) -> Option<&Conviction> {
        self.convicted.as_ref()
    }

    /// Frames accepted so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Number of composite states currently possible.
    pub fn possible_states(&self) -> usize {
        self.possible.len()
    }

    /// The interned event behind a wire index, if any.
    pub fn event_of(&self, event: u16) -> Option<EventId> {
        self.prog.table.event(u32::from(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("service");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    fn idx(prog: &GuardProgram, name: &str) -> u16 {
        prog.table
            .events
            .iter()
            .position(|e| e.name() == name)
            .unwrap() as u16
    }

    #[test]
    fn genuine_traces_are_accepted() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let mid = b.state("mid");
        let s1 = b.state("s1");
        b.ext(s0, "acc", mid);
        b.int(mid, s1);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let (acc, del) = (idx(&prog, "acc"), idx(&prog, "del"));
        let mut g = SessionGuard::new(Arc::clone(&prog));
        for _ in 0..3 {
            assert_eq!(g.observe(acc), Ok(()));
            assert_eq!(g.observe(del), Ok(()));
        }
        assert_eq!(g.observed(), 6);
        assert!(g.convicted().is_none());
        assert_eq!(g.attest_stall(), Ok(()));
    }

    #[test]
    fn non_traces_and_service_violations_convict() {
        // `del` is enabled initially in the implementation but not in
        // the service: membership passes, trace inclusion fails.
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        b.ext(s0, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let (acc, del) = (idx(&prog, "acc"), idx(&prog, "del"));

        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(
            g.observe(del),
            Err(Conviction::ServiceViolation { event: del })
        );
        // Convictions are sticky.
        assert_eq!(
            g.observe(acc),
            Err(Conviction::ServiceViolation { event: del })
        );

        // Double `acc` is impossible in the composite itself.
        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(g.observe(acc), Ok(()));
        assert_eq!(g.observe(acc), Err(Conviction::NotATrace { event: acc }));
    }

    #[test]
    fn dead_ends_convict_eagerly() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let dead = b.state("dead");
        b.ext(s0, "acc", dead);
        let implementation = b
            .build()
            .unwrap()
            .with_alphabet_extended(service().alphabet());
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let acc = idx(&prog, "acc");
        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(g.observe(acc), Err(Conviction::Stalled));
    }

    #[test]
    fn attested_stalls_need_a_failing_witness() {
        // Nondeterministic `acc`: one branch progresses, one is stuck.
        // The eager all-fail rule cannot fire, but an attested stall is
        // confirmed by the stuck branch.
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let dead = b.state("dead");
        b.ext(s0, "acc", s1);
        b.ext(s0, "acc", dead);
        b.ext(s1, "del", s0);
        let implementation = b.build().unwrap();
        let svc = service();
        let prog = Arc::new(GuardProgram::new(&[&implementation], &svc).unwrap());
        let acc = idx(&prog, "acc");
        let mut g = SessionGuard::new(Arc::clone(&prog));
        assert_eq!(g.observe(acc), Ok(()));
        assert_eq!(g.possible_states(), 2);
        assert_eq!(g.attest_stall(), Err(Conviction::Stalled));
    }

    #[test]
    fn interface_mismatch_is_rejected() {
        let mut b = SpecBuilder::new("impl");
        let s0 = b.state("s0");
        b.ext(s0, "other", s0);
        let implementation = b.build().unwrap();
        assert!(GuardProgram::new(&[&implementation], &service()).is_err());
    }
}
