//! The satisfaction relation of §3: "B satisfies A" = safety + progress.
//!
//! * **Safety**: every trace of B is a trace of A (`∀t: B.t ⇒ A.t`).
//! * **Progress**: any environment guaranteed not to deadlock with A is
//!   certain not to deadlock with B — formalised through sink sets:
//!   after any trace `t` leading B to `b`, `prog.(ψ_A.t).b` must hold,
//!   i.e. A may be in a sink whose enabled set is contained in τ*.b.
//!
//! A is regarded as a service specification (nondeterminism = choice,
//! unfair); B as an implementation (nondeterminism fair). A is
//! normalized internally; see [`crate::normal`] for why that preserves
//! both halves of the relation.

use crate::closure::Closures;
use crate::error::SpecError;
use crate::event::{Alphabet, EventId};
use crate::normal::{normalize, NormalSpec};
use crate::spec::{Spec, StateId};
use crate::trace::Trace;
use std::collections::{HashMap, VecDeque};

/// Why a satisfaction check failed.
#[derive(Clone, Debug)]
pub enum Violation {
    /// B can perform a trace A cannot: `trace` is a minimal witness (its
    /// last event is the offending one).
    Safety {
        /// The offending trace of B (not a trace of A).
        trace: Trace,
    },
    /// After `trace`, B may settle in `state` whose τ* set `offered` is
    /// not a superset of any sink acceptance set of A (`needed`): an
    /// environment tuned to A could deadlock with B.
    Progress {
        /// Trace leading to the violation.
        trace: Trace,
        /// The B-state at the violation.
        state: StateId,
        /// A's sink acceptance sets at ψ_A.trace.
        needed: Vec<Alphabet>,
        /// τ*.state in B.
        offered: Alphabet,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Safety { trace } => write!(
                f,
                "safety violation: implementation performs `{}` which the service forbids",
                crate::trace::trace_string(trace)
            ),
            Violation::Progress {
                trace,
                state,
                needed,
                offered,
            } => write!(
                f,
                "progress violation after `{}` in state {}: offers {} but the service \
                 requires one of {:?} to be fully offered",
                crate::trace::trace_string(trace),
                state,
                offered,
                needed
            ),
        }
    }
}

/// Outcome of [`satisfies`]: `Ok(())` or the first violation found.
pub type SatisfactionResult = Result<(), Violation>;

/// Internal: reachable (B-state, ψ-hub) pairs with a parent pointer for
/// counterexample extraction.
struct Exploration {
    /// (b, hub) pairs, indexed.
    pairs: Vec<(StateId, usize)>,
    /// Parent index and the event taken (None for internal moves).
    parents: Vec<Option<(usize, Option<EventId>)>>,
    /// First safety violation found, if any: (pair index, event).
    violation: Option<(usize, EventId)>,
}

/// Breadth-first product exploration. FIFO order matters: discovery
/// order is the canonical order the parallel engine
/// ([`crate::engine`]) renumbers to, parent pointers form a BFS tree
/// (so extracted witnesses are shortest), and the progress check scans
/// pairs in exactly this order.
fn explore(b: &Spec, na: &NormalSpec, stop_at_violation: bool) -> Exploration {
    let mut index: HashMap<(StateId, usize), usize> = HashMap::new();
    let mut pairs = Vec::new();
    let mut parents = Vec::new();
    let mut work = VecDeque::new();
    let start = (b.initial(), na.initial_hub());
    index.insert(start, 0);
    pairs.push(start);
    parents.push(None);
    work.push_back(0usize);
    let mut violation = None;

    while let Some(i) = work.pop_front() {
        let (bs, hub) = pairs[i];
        for &t in b.internal_from(bs) {
            let key = (t, hub);
            if let std::collections::hash_map::Entry::Vacant(v) = index.entry(key) {
                let id = pairs.len();
                v.insert(id);
                pairs.push(key);
                parents.push(Some((i, None)));
                work.push_back(id);
            }
        }
        for &(e, t) in b.external_from(bs) {
            match na.step(hub, e) {
                Some(hub2) => {
                    let key = (t, hub2);
                    if let std::collections::hash_map::Entry::Vacant(v) = index.entry(key) {
                        let id = pairs.len();
                        v.insert(id);
                        pairs.push(key);
                        parents.push(Some((i, Some(e))));
                        work.push_back(id);
                    }
                }
                None => {
                    if violation.is_none() {
                        violation = Some((i, e));
                        if stop_at_violation {
                            return Exploration {
                                pairs,
                                parents,
                                violation,
                            };
                        }
                    }
                }
            }
        }
    }
    Exploration {
        pairs,
        parents,
        violation,
    }
}

fn trace_to(exp: &Exploration, mut i: usize) -> Trace {
    let mut rev = Vec::new();
    while let Some((p, e)) = exp.parents[i] {
        if let Some(e) = e {
            rev.push(e);
        }
        i = p;
    }
    rev.reverse();
    rev
}

/// Checks that the interfaces match, then `B satisfies A with respect to
/// safety`: trace inclusion, via the (B-state × ψ-hub) product.
pub fn satisfies_safety(b: &Spec, a: &Spec) -> Result<SatisfactionResult, SpecError> {
    check_interface(b, a)?;
    let na = normalize(a);
    Ok(safety_with(b, &na))
}

/// Safety check against an already-normalized service.
pub fn safety_with(b: &Spec, na: &NormalSpec) -> SatisfactionResult {
    let exp = explore(b, na, true);
    if let Some((i, e)) = exp.violation {
        let mut trace = trace_to(&exp, i);
        trace.push(e);
        return Err(Violation::Safety { trace });
    }
    Ok(())
}

/// Checks `B satisfies A` (safety **and** progress).
///
/// ```
/// use protoquot_spec::{satisfies, SpecBuilder, Violation};
/// let mut a = SpecBuilder::new("A");
/// let u0 = a.state("u0");
/// let u1 = a.state("u1");
/// a.ext(u0, "acc", u1);
/// a.ext(u1, "del", u0);
/// let service = a.build().unwrap();
/// // An implementation that can silently die after `acc` fails progress.
/// let mut b = SpecBuilder::new("B");
/// let s0 = b.state("s0");
/// let s1 = b.state("s1");
/// let dead = b.state("dead");
/// b.ext(s0, "acc", s1);
/// b.ext(s1, "del", s0);
/// b.int(s1, dead);
/// let imp = b.build().unwrap();
/// assert!(matches!(
///     satisfies(&imp, &service).unwrap(),
///     Err(Violation::Progress { .. })
/// ));
/// ```
pub fn satisfies(b: &Spec, a: &Spec) -> Result<SatisfactionResult, SpecError> {
    check_interface(b, a)?;
    let na = normalize(a);
    Ok(satisfies_with(b, &na))
}

/// Full satisfaction against an already-normalized service.
///
/// Uses the paper's simplification: since a sink set is reachable from
/// every state, quantifying `prog` over *all* reachable states is
/// equivalent to quantifying over sink states only.
pub fn satisfies_with(b: &Spec, na: &NormalSpec) -> SatisfactionResult {
    let exp = explore(b, na, true);
    if let Some((i, e)) = exp.violation {
        let mut trace = trace_to(&exp, i);
        trace.push(e);
        return Err(Violation::Safety { trace });
    }
    let cl = Closures::compute(b);
    for (i, &(bs, hub)) in exp.pairs.iter().enumerate() {
        let offered = cl.tau_star(bs);
        let ok = na
            .acceptance(hub)
            .iter()
            .any(|needed| needed.is_subset(offered));
        if !ok {
            return Err(Violation::Progress {
                trace: trace_to(&exp, i),
                state: bs,
                needed: na.acceptance(hub).to_vec(),
                offered: offered.clone(),
            });
        }
    }
    Ok(())
}

fn check_interface(b: &Spec, a: &Spec) -> Result<(), SpecError> {
    if b.alphabet() != a.alphabet() {
        return Err(SpecError::InterfaceMismatch {
            left: format!("{}", b.alphabet()),
            right: format!("{}", a.alphabet()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;
    use crate::trace::trace_string;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    /// A perfect implementation: identical machine.
    #[test]
    fn identical_machine_satisfies() {
        let s = service();
        assert!(satisfies(&s, &s).unwrap().is_ok());
    }

    /// An implementation with a harmless internal stutter still satisfies.
    #[test]
    fn internal_stutter_satisfies() {
        let mut b = SpecBuilder::new("impl");
        let u0 = b.state("u0");
        let mid = b.state("mid");
        let u1 = b.state("u1");
        b.ext(u0, "acc", mid);
        b.int(mid, u1);
        b.ext(u1, "del", u0);
        let imp = b.build().unwrap();
        assert!(satisfies(&imp, &service()).unwrap().is_ok());
    }

    /// Duplicate delivery violates safety; the counterexample is minimal.
    #[test]
    fn duplicate_delivery_violates_safety() {
        let mut b = SpecBuilder::new("dup");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        let u2 = b.state("u2");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u2);
        b.ext(u2, "del", u0);
        let imp = b.build().unwrap();
        match satisfies(&imp, &service()).unwrap() {
            Err(Violation::Safety { trace }) => {
                assert_eq!(trace_string(&trace), "acc.del.del");
            }
            other => panic!("expected safety violation, got {:?}", other.err()),
        }
    }

    /// An implementation that can stall (deadlock state) violates progress.
    #[test]
    fn stalling_violates_progress() {
        let mut b = SpecBuilder::new("stall");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        let dead = b.state("dead");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.int(u1, dead); // after acc, may silently die
        let imp = b.build().unwrap();
        match satisfies(&imp, &service()).unwrap() {
            Err(Violation::Progress {
                needed, offered, ..
            }) => {
                assert!(offered.is_empty() || !needed.iter().any(|n| n.is_subset(&offered)));
            }
            other => panic!("expected progress violation, got {:?}", other.err()),
        }
    }

    /// Refusing to ever engage (empty implementation) fails progress but
    /// not safety.
    #[test]
    fn empty_implementation_fails_progress_only() {
        let mut b = SpecBuilder::new("empty");
        b.state("only");
        b.event("acc");
        b.event("del");
        let imp = b.build().unwrap();
        assert!(satisfies_safety(&imp, &service()).unwrap().is_ok());
        assert!(matches!(
            satisfies(&imp, &service()).unwrap(),
            Err(Violation::Progress { .. })
        ));
    }

    /// The service's own nondeterminism: B may implement either branch.
    #[test]
    fn implementation_may_resolve_service_choice() {
        // Service: after req, may answer ok or err (internal choice).
        let mut b = SpecBuilder::new("C");
        let s0 = b.state("s0");
        let mid = b.state("mid");
        let l = b.state("l");
        let r = b.state("r");
        b.ext(s0, "req", mid);
        b.int(mid, l);
        b.int(mid, r);
        b.ext(l, "ok", s0);
        b.ext(r, "err", s0);
        let srv = b.build().unwrap();

        // Implementation that always answers ok.
        let mut b = SpecBuilder::new("okimpl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "req", s1);
        b.ext(s1, "ok", s0);
        b.event("err");
        let imp = b.build().unwrap();
        assert!(satisfies(&imp, &srv).unwrap().is_ok());
    }

    /// The converse direction: a *service* client cannot demand more than
    /// an acceptance set — B offering neither branch fails.
    #[test]
    fn offering_no_branch_fails() {
        let mut b = SpecBuilder::new("C");
        let s0 = b.state("s0");
        let mid = b.state("mid");
        let l = b.state("l");
        let r = b.state("r");
        b.ext(s0, "req", mid);
        b.int(mid, l);
        b.int(mid, r);
        b.ext(l, "ok", s0);
        b.ext(r, "err", s0);
        let srv = b.build().unwrap();

        let mut b = SpecBuilder::new("noimpl");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "req", s1);
        b.event("ok");
        b.event("err");
        let imp = b.build().unwrap();
        assert!(matches!(
            satisfies(&imp, &srv).unwrap(),
            Err(Violation::Progress { .. })
        ));
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let s = service();
        let mut b = SpecBuilder::new("other");
        let x = b.state("x");
        b.ext(x, "different", x);
        let imp = b.build().unwrap();
        assert!(satisfies(&imp, &s).is_err());
    }

    /// Fair internal cycles in B are fine: a loss/retry loop that always
    /// may exit to the required event still satisfies progress.
    #[test]
    fn fair_retry_loop_satisfies() {
        let mut b = SpecBuilder::new("retry");
        let u0 = b.state("u0");
        let trying = b.state("trying");
        let again = b.state("again");
        let u1 = b.state("u1");
        b.ext(u0, "acc", trying);
        b.int(trying, again); // "loss"
        b.int(again, trying); // "timeout + retransmit"
        b.int(trying, u1); // success path
        b.ext(u1, "del", u0);
        let imp = b.build().unwrap();
        assert!(satisfies(&imp, &service()).unwrap().is_ok());
    }

    /// An infinite internal livelock that never reaches a del-enabled
    /// state violates progress.
    #[test]
    fn livelock_violates_progress() {
        let mut b = SpecBuilder::new("livelock");
        let u0 = b.state("u0");
        let l1 = b.state("l1");
        let l2 = b.state("l2");
        b.ext(u0, "acc", l1);
        b.int(l1, l2);
        b.int(l2, l1);
        b.event("del");
        let imp = b.build().unwrap();
        assert!(matches!(
            satisfies(&imp, &service()).unwrap(),
            Err(Violation::Progress { .. })
        ));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::Safety {
            trace: crate::trace::trace_of(&["a", "b"]),
        };
        assert!(v.to_string().contains("a.b"));
        let v = Violation::Progress {
            trace: vec![],
            state: StateId(3),
            needed: vec![Alphabet::from_names(["del"])],
            offered: Alphabet::new(),
        };
        assert!(v.to_string().contains("progress"));
    }
}
