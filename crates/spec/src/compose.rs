//! The composition operator `‖` of §3.
//!
//! For specifications A and B:
//!
//! * `Σ(A‖B) = (Σ_A ∪ Σ_B) − (Σ_A ∩ Σ_B)` — shared events are the
//!   interface *between* the components and disappear from the composite
//!   interface;
//! * external transitions of the composite are moves of exactly one
//!   component on a non-shared event;
//! * internal transitions are internal moves of either component, plus
//!   synchronised moves on shared events (which become hidden).
//!
//! [`compose`] builds only the reachable part of the product (the full
//! `S_A × S_B` space per the definition contains unreachable garbage that
//! no trace can distinguish). Use [`compose_full`] when the literal
//! definition is required.

use crate::error::SpecError;
use crate::event::EventId;
use crate::spec::{spec_from_parts, Spec, StateId};
use std::collections::HashMap;

/// Reachable binary composition `a ‖ b`.
///
/// ```
/// use protoquot_spec::{compose, Alphabet, SpecBuilder};
/// // sender: ready --put--> done ; buffer: empty --put--> full --get--> empty
/// let mut s = SpecBuilder::new("S");
/// let ready = s.state("ready");
/// let done = s.state("done");
/// s.ext(ready, "put", done);
/// let sender = s.build().unwrap();
/// let mut b = SpecBuilder::new("B");
/// let empty = b.state("empty");
/// let full = b.state("full");
/// b.ext(empty, "put", full);
/// b.ext(full, "get", empty);
/// let buffer = b.build().unwrap();
/// let comp = compose(&sender, &buffer);
/// // `put` is shared: synchronised and hidden. Only `get` remains.
/// assert_eq!(comp.alphabet(), &Alphabet::from_names(["get"]));
/// assert_eq!(comp.num_internal(), 1);
/// ```
pub fn compose(a: &Spec, b: &Spec) -> Spec {
    let shared = a.alphabet().intersection(b.alphabet());
    let alphabet = a.alphabet().symmetric_difference(b.alphabet());

    // Lower-bound capacity: the product has at least as many states as
    // the larger operand reaches, and every component edge appears at
    // least once unless blocked by synchronisation.
    let state_guess = a.num_states().max(b.num_states());
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::with_capacity(state_guess);
    let mut names: Vec<String> = Vec::with_capacity(state_guess);
    let mut pairs: Vec<(StateId, StateId)> = Vec::with_capacity(state_guess);
    let mut ext: Vec<(StateId, EventId, StateId)> =
        Vec::with_capacity(a.num_external() + b.num_external());
    let mut int: Vec<(StateId, StateId)> = Vec::with_capacity(a.num_internal() + b.num_internal());

    let intern = |sa: StateId,
                  sb: StateId,
                  index: &mut HashMap<(StateId, StateId), StateId>,
                  names: &mut Vec<String>,
                  pairs: &mut Vec<(StateId, StateId)>,
                  work: &mut Vec<(StateId, StateId)>|
     -> StateId {
        *index.entry((sa, sb)).or_insert_with(|| {
            let id = StateId(names.len() as u32);
            names.push(format!("({},{})", a.state_name(sa), b.state_name(sb)));
            pairs.push((sa, sb));
            work.push((sa, sb));
            id
        })
    };

    let mut work: Vec<(StateId, StateId)> = Vec::new();
    let start = intern(
        a.initial(),
        b.initial(),
        &mut index,
        &mut names,
        &mut pairs,
        &mut work,
    );
    debug_assert_eq!(start, StateId(0));

    while let Some((sa, sb)) = work.pop() {
        let from = index[&(sa, sb)];
        // Moves of A alone.
        for &(e, ta) in a.external_from(sa) {
            if shared.contains(e) {
                // Synchronised: internal in the composite, needs B too.
                for tb in b.ext_successors(sb, e) {
                    let to = intern(ta, tb, &mut index, &mut names, &mut pairs, &mut work);
                    int.push((from, to));
                }
            } else {
                let to = intern(ta, sb, &mut index, &mut names, &mut pairs, &mut work);
                ext.push((from, e, to));
            }
        }
        // Moves of B alone on non-shared events (shared handled above).
        for &(e, tb) in b.external_from(sb) {
            if !shared.contains(e) {
                let to = intern(sa, tb, &mut index, &mut names, &mut pairs, &mut work);
                ext.push((from, e, to));
            }
        }
        // Internal moves of either component.
        for &ta in a.internal_from(sa) {
            let to = intern(ta, sb, &mut index, &mut names, &mut pairs, &mut work);
            int.push((from, to));
        }
        for &tb in b.internal_from(sb) {
            let to = intern(sa, tb, &mut index, &mut names, &mut pairs, &mut work);
            int.push((from, to));
        }
    }

    spec_from_parts(
        format!("{}||{}", a.name(), b.name()),
        alphabet,
        names,
        StateId(0),
        ext,
        int,
    )
    .expect("composition preserves validity")
}

/// Literal full-product composition over `S_A × S_B`, per the paper's
/// definition. Exposed for tests of definitional properties; algorithms
/// should use [`compose`].
pub fn compose_full(a: &Spec, b: &Spec) -> Spec {
    let shared = a.alphabet().intersection(b.alphabet());
    let alphabet = a.alphabet().symmetric_difference(b.alphabet());
    let nb = b.num_states() as u32;
    let id = |sa: StateId, sb: StateId| StateId(sa.0 * nb + sb.0);

    let mut names = Vec::with_capacity(a.num_states() * b.num_states());
    for sa in a.states() {
        for sb in b.states() {
            names.push(format!("({},{})", a.state_name(sa), b.state_name(sb)));
        }
    }
    let mut ext = Vec::new();
    let mut int = Vec::new();
    for sa in a.states() {
        for sb in b.states() {
            let from = id(sa, sb);
            for &(e, ta) in a.external_from(sa) {
                if shared.contains(e) {
                    for tb in b.ext_successors(sb, e) {
                        int.push((from, id(ta, tb)));
                    }
                } else {
                    ext.push((from, e, id(ta, sb)));
                }
            }
            for &(e, tb) in b.external_from(sb) {
                if !shared.contains(e) {
                    ext.push((from, e, id(sa, tb)));
                }
            }
            for &ta in a.internal_from(sa) {
                int.push((from, id(ta, sb)));
            }
            for &tb in b.internal_from(sb) {
                int.push((from, id(sa, tb)));
            }
        }
    }
    spec_from_parts(
        format!("{}||{}", a.name(), b.name()),
        alphabet,
        names,
        id(a.initial(), b.initial()),
        ext,
        int,
    )
    .expect("composition preserves validity")
}

/// N-ary composition by left fold, with the safety check that no event
/// appears in more than two component alphabets — the binary `‖` hides a
/// shared event after its first pair, so a third component would
/// silently fail to synchronise (see [`SpecError::EventSharedByMoreThanTwo`]).
pub fn compose_all(parts: &[&Spec]) -> Result<Spec, SpecError> {
    assert!(
        !parts.is_empty(),
        "compose_all needs at least one component"
    );
    let mut counts: HashMap<EventId, usize> = HashMap::new();
    for p in parts {
        for e in p.alphabet().iter() {
            *counts.entry(e).or_insert(0) += 1;
        }
    }
    if let Some((e, _)) = counts.iter().find(|&(_, &c)| c > 2) {
        return Err(SpecError::EventSharedByMoreThanTwo(e.name()));
    }
    if parts.len() == 1 {
        return Ok(parts[0].clone());
    }
    // Prune the seed: the fold only ever explores from the initial
    // state, so unreachable seed states would just bloat every
    // intermediate product scan. Each subsequent `compose` result is
    // reachable by construction, keeping the fold pruned throughout.
    let mut acc = crate::graph::prune_unreachable(parts[0]);
    for p in &parts[1..] {
        acc = compose(&acc, p);
        debug_assert_eq!(
            crate::graph::reachable(&acc).to_vec().len(),
            acc.num_states(),
            "pairwise composition must only materialize reachable states"
        );
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Alphabet;
    use crate::spec::SpecBuilder;

    /// One-shot sender: ready --put--> done (put is shared with buffer).
    fn sender() -> Spec {
        let mut b = SpecBuilder::new("S");
        let ready = b.state("ready");
        let done = b.state("done");
        b.ext(ready, "put", done);
        b.build().unwrap()
    }

    /// Buffer: empty --put--> full --get--> empty.
    fn buffer() -> Spec {
        let mut b = SpecBuilder::new("B");
        let empty = b.state("empty");
        let full = b.state("full");
        b.ext(empty, "put", full);
        b.ext(full, "get", empty);
        b.build().unwrap()
    }

    #[test]
    fn shared_events_hide_and_synchronise() {
        let c = compose(&sender(), &buffer());
        // put shared -> hidden; interface is {get}.
        assert_eq!(c.alphabet(), &Alphabet::from_names(["get"]));
        // reachable: (ready,empty) -int-> (done,full) -get-> (done,empty)
        assert_eq!(c.num_states(), 3);
        assert_eq!(c.num_internal(), 1);
        assert_eq!(c.num_external(), 1);
    }

    #[test]
    fn unshared_events_interleave() {
        let mut b1 = SpecBuilder::new("L");
        let a = b1.state("a");
        let a2 = b1.state("a2");
        b1.ext(a, "x", a2);
        let l = b1.build().unwrap();
        let mut b2 = SpecBuilder::new("R");
        let c = b2.state("c");
        let c2 = b2.state("c2");
        b2.ext(c, "y", c2);
        let r = b2.build().unwrap();
        let comp = compose(&l, &r);
        assert_eq!(comp.alphabet(), &Alphabet::from_names(["x", "y"]));
        // Diamond: 4 states, 4 external transitions.
        assert_eq!(comp.num_states(), 4);
        assert_eq!(comp.num_external(), 4);
        assert_eq!(comp.num_internal(), 0);
    }

    #[test]
    fn shared_event_not_enabled_in_both_disappears() {
        // Buffer can only `get` when full; sender never does `get`, but
        // declare `get` in a second component that never enables it.
        let mut b = SpecBuilder::new("G");
        b.state("only");
        b.event("get");
        let blocker = b.build().unwrap();
        let c = compose(&buffer(), &blocker);
        // get is shared -> hidden from the interface...
        assert_eq!(c.alphabet(), &Alphabet::from_names(["put"]));
        // ...and since the blocker never enables it, no synchronised
        // transition exists: from full, nothing can happen.
        let full = c
            .states()
            .find(|&s| c.state_name(s).contains("full"))
            .unwrap();
        assert!(c.external_from(full).is_empty());
        assert!(c.internal_from(full).is_empty());
    }

    #[test]
    fn internal_moves_interleave() {
        let mut b1 = SpecBuilder::new("I1");
        let a = b1.state("a");
        let a2 = b1.state("a2");
        b1.int(a, a2);
        let l = b1.build().unwrap();
        let mut b2 = SpecBuilder::new("I2");
        let c = b2.state("c");
        let c2 = b2.state("c2");
        b2.int(c, c2);
        let r = b2.build().unwrap();
        let comp = compose(&l, &r);
        assert_eq!(comp.num_states(), 4);
        assert_eq!(comp.num_internal(), 4);
    }

    #[test]
    fn full_product_contains_reachable_as_subgraph() {
        let full = compose_full(&sender(), &buffer());
        let reach = compose(&sender(), &buffer());
        assert_eq!(full.num_states(), 4);
        assert!(reach.num_states() <= full.num_states());
        assert_eq!(full.alphabet(), reach.alphabet());
        let pruned = crate::graph::prune_unreachable(&full);
        assert_eq!(pruned.num_states(), reach.num_states());
        assert_eq!(pruned.num_external(), reach.num_external());
        assert_eq!(pruned.num_internal(), reach.num_internal());
    }

    #[test]
    fn compose_all_rejects_triple_sharing() {
        let s1 = sender();
        let s2 = sender().with_name("S2");
        let s3 = sender().with_name("S3");
        let err = compose_all(&[&s1, &s2, &s3]).unwrap_err();
        assert!(matches!(err, SpecError::EventSharedByMoreThanTwo(_)));
    }

    #[test]
    fn compose_all_folds() {
        let s = sender();
        let b = buffer();
        let mut rb = SpecBuilder::new("Recv");
        let w = rb.state("w");
        let d = rb.state("d");
        rb.ext(w, "get", d);
        let r = rb.build().unwrap();
        let sys = compose_all(&[&s, &b, &r]).unwrap();
        // Everything synchronises away: closed system.
        assert!(sys.alphabet().is_empty());
        // ready/empty/w -> done/full/w -> done/empty/d.
        assert_eq!(sys.num_states(), 3);
        assert_eq!(sys.num_internal(), 2);
    }

    #[test]
    fn nondeterministic_sync_produces_all_pairs() {
        let mut b1 = SpecBuilder::new("N1");
        let a = b1.state("a");
        let t1 = b1.state("t1");
        let t2 = b1.state("t2");
        b1.ext(a, "e", t1);
        b1.ext(a, "e", t2);
        let l = b1.build().unwrap();
        let mut b2 = SpecBuilder::new("N2");
        let c = b2.state("c");
        let u1 = b2.state("u1");
        let u2 = b2.state("u2");
        b2.ext(c, "e", u1);
        b2.ext(c, "e", u2);
        let r = b2.build().unwrap();
        let comp = compose(&l, &r);
        // 4 synchronised internal transitions from the initial state.
        assert_eq!(comp.internal_from(comp.initial()).len(), 4);
    }

    #[test]
    fn composition_commutes_up_to_size() {
        let ab = compose(&sender(), &buffer());
        let ba = compose(&buffer(), &sender());
        assert_eq!(ab.num_states(), ba.num_states());
        assert_eq!(ab.num_external(), ba.num_external());
        assert_eq!(ab.num_internal(), ba.num_internal());
        assert_eq!(ab.alphabet(), ba.alphabet());
    }
}

/// CSP-style synchronous product: like the paper's `‖` except shared
/// events stay *visible* — the composite's alphabet is the union, and a
/// shared event is an external transition of the composite (fired
/// jointly). Used by the bottom-up baselines (Okumura's method builds a
/// converter as a constrained product whose channel events must remain
/// part of the converter interface).
pub fn sync_product(a: &Spec, b: &Spec) -> Spec {
    let shared = a.alphabet().intersection(b.alphabet());
    let alphabet = a.alphabet().union(b.alphabet());

    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut ext: Vec<(StateId, EventId, StateId)> = Vec::new();
    let mut int: Vec<(StateId, StateId)> = Vec::new();
    let mut work: Vec<(StateId, StateId)> = Vec::new();

    let intern = |sa: StateId,
                  sb: StateId,
                  index: &mut HashMap<(StateId, StateId), StateId>,
                  names: &mut Vec<String>,
                  work: &mut Vec<(StateId, StateId)>|
     -> StateId {
        *index.entry((sa, sb)).or_insert_with(|| {
            let id = StateId(names.len() as u32);
            names.push(format!("({},{})", a.state_name(sa), b.state_name(sb)));
            work.push((sa, sb));
            id
        })
    };

    intern(a.initial(), b.initial(), &mut index, &mut names, &mut work);
    while let Some((sa, sb)) = work.pop() {
        let from = index[&(sa, sb)];
        for &(e, ta) in a.external_from(sa) {
            if shared.contains(e) {
                for tb in b.ext_successors(sb, e) {
                    let to = intern(ta, tb, &mut index, &mut names, &mut work);
                    ext.push((from, e, to));
                }
            } else {
                let to = intern(ta, sb, &mut index, &mut names, &mut work);
                ext.push((from, e, to));
            }
        }
        for &(e, tb) in b.external_from(sb) {
            if !shared.contains(e) {
                let to = intern(sa, tb, &mut index, &mut names, &mut work);
                ext.push((from, e, to));
            }
        }
        for &ta in a.internal_from(sa) {
            let to = intern(ta, sb, &mut index, &mut names, &mut work);
            int.push((from, to));
        }
        for &tb in b.internal_from(sb) {
            let to = intern(sa, tb, &mut index, &mut names, &mut work);
            int.push((from, to));
        }
    }

    spec_from_parts(
        format!("{}x{}", a.name(), b.name()),
        alphabet,
        names,
        StateId(0),
        ext,
        int,
    )
    .expect("sync product preserves validity")
}

/// The hiding operator: every transition on an event of `hidden`
/// becomes an internal transition, and the events leave the alphabet.
pub fn hide(spec: &Spec, hidden: &crate::event::Alphabet) -> Spec {
    let mut ext = Vec::new();
    let mut int: Vec<(StateId, StateId)> = spec.internal_transitions().collect();
    for (s, e, t) in spec.external_transitions() {
        if hidden.contains(e) {
            int.push((s, t));
        } else {
            ext.push((s, e, t));
        }
    }
    spec_from_parts(
        format!("{}\\hidden", spec.name()),
        spec.alphabet().difference(hidden),
        spec.states()
            .map(|s| spec.state_name(s).to_owned())
            .collect(),
        spec.initial(),
        ext,
        int,
    )
    .expect("hiding preserves validity")
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::event::Alphabet;
    use crate::spec::SpecBuilder;

    fn ping() -> Spec {
        let mut b = SpecBuilder::new("P");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "sync", c);
        b.ext(c, "p_only", a);
        b.build().unwrap()
    }

    fn pong() -> Spec {
        let mut b = SpecBuilder::new("Q");
        let a = b.state("x");
        let c = b.state("y");
        b.ext(a, "sync", c);
        b.ext(c, "q_only", a);
        b.build().unwrap()
    }

    #[test]
    fn sync_product_keeps_shared_events_visible() {
        let p = sync_product(&ping(), &pong());
        assert_eq!(
            p.alphabet(),
            &Alphabet::from_names(["sync", "p_only", "q_only"])
        );
        // (a,x) --sync--> (c,y); then p_only/q_only interleave.
        assert_eq!(p.num_internal(), 0);
        let init = p.initial();
        assert_eq!(p.external_from(init).len(), 1);
        assert_eq!(p.external_from(init)[0].0, EventId::new("sync"));
    }

    #[test]
    fn sync_product_blocks_unmatched_shared_events() {
        let mut b = SpecBuilder::new("Blocker");
        b.state("only");
        b.event("sync");
        let blocker = b.build().unwrap();
        let p = sync_product(&ping(), &blocker);
        // sync can never fire: the composite is a single stuck state.
        assert_eq!(p.num_states(), 1);
        assert_eq!(p.num_external(), 0);
    }

    #[test]
    fn hide_turns_events_internal() {
        let p = ping();
        let h = hide(&p, &Alphabet::from_names(["sync"]));
        assert_eq!(h.alphabet(), &Alphabet::from_names(["p_only"]));
        assert_eq!(h.num_internal(), 1);
        assert_eq!(h.num_external(), 1);
        assert_eq!(h.num_states(), p.num_states());
    }

    #[test]
    fn hide_nothing_is_identity_shape() {
        let p = ping();
        let h = hide(&p, &Alphabet::new());
        assert_eq!(h.num_external(), p.num_external());
        assert_eq!(h.num_internal(), 0);
        assert_eq!(h.alphabet(), p.alphabet());
    }

    #[test]
    fn paper_compose_equals_sync_product_plus_hide() {
        // A‖B = hide(sync_product(A,B), shared) up to bisimilarity.
        let a = ping();
        let b = pong();
        let shared = a.alphabet().intersection(b.alphabet());
        let via_ops = hide(&sync_product(&a, &b), &shared);
        let direct = compose(&a, &b);
        assert!(crate::minimize::bisimilar(&via_ops, &direct));
    }

    #[test]
    fn fold_with_unreachable_seed_matches_nway_composition() {
        // The seed carries an unreachable state (and a solo event only
        // it uses); the pruned fold and the single n-way exploration
        // must agree on the reachable composite.
        let mut b1 = SpecBuilder::new("L");
        let l0 = b1.state("l0");
        let l1 = b1.state("l1");
        let orphan = b1.state("orphan");
        b1.ext(l0, "in", l1);
        b1.ext(l1, "x", l0);
        b1.ext(orphan, "ghost", l0);
        let l = b1.build().unwrap();

        let mut b2 = SpecBuilder::new("M");
        let m0 = b2.state("m0");
        let m1 = b2.state("m1");
        b2.ext(m0, "x", m1);
        b2.ext(m1, "y", m0);
        let m = b2.build().unwrap();

        let mut b3 = SpecBuilder::new("R");
        let r0 = b3.state("r0");
        let r1 = b3.state("r1");
        b3.ext(r0, "y", r1);
        b3.ext(r1, "out", r0);
        let r = b3.build().unwrap();

        let folded = compose_all(&[&l, &m, &r]).unwrap();
        let nway = crate::engine::compose_all_nway(&[&l, &m, &r]).unwrap();
        assert_eq!(folded.num_states(), nway.num_states());
        assert_eq!(folded.alphabet(), nway.alphabet());
        for s in folded.states() {
            assert_eq!(folded.external_from(s), nway.external_from(s));
            assert_eq!(folded.internal_from(s), nway.internal_from(s));
        }
        assert!(crate::minimize::bisimilar(&folded, &nway));
        // No composite state mentions the unreachable seed state.
        assert!(folded
            .states()
            .all(|s| !folded.state_name(s).contains("orphan")));
    }
}
