//! Traces and the projection functions `i`/`o` of §4.
//!
//! A trace is a finite sequence of interface events — one possible
//! observed behaviour. Trace sets are prefix-closed and include the
//! empty trace ε.

use crate::closure::close_lambda;
use crate::event::{Alphabet, EventId};
use crate::spec::Spec;
use crate::stateset::StateSet;

/// A trace: a finite sequence of events.
pub type Trace = Vec<EventId>;

/// Builds a trace from event names.
pub fn trace_of(names: &[&str]) -> Trace {
    names.iter().map(|n| EventId::new(n)).collect()
}

/// Renders a trace as `e1.e2.e3` (ε for the empty trace).
pub fn trace_string(t: &[EventId]) -> String {
    if t.is_empty() {
        return "ε".to_owned();
    }
    t.iter().map(|e| e.name()).collect::<Vec<_>>().join(".")
}

/// Projects a trace onto a sub-alphabet: the paper's `i`/`o` functions
/// are `project(t, Int)` and `project(t, Ext)` respectively.
pub fn project(t: &[EventId], onto: &Alphabet) -> Trace {
    t.iter().copied().filter(|e| onto.contains(*e)).collect()
}

/// The set of states `{s : s0 ⟼t s}` — all states reachable by trace
/// `t`, accounting for internal transitions before, between and after
/// the events. Empty iff `t` is not a trace of `spec`.
pub fn states_after(spec: &Spec, t: &[EventId]) -> StateSet {
    let mut current = StateSet::new(spec.num_states());
    current.insert(spec.initial());
    close_lambda(spec, &mut current);
    for &e in t {
        let mut next = StateSet::new(spec.num_states());
        for s in current.iter() {
            for target in spec.ext_successors(s, e) {
                next.insert(target);
            }
        }
        close_lambda(spec, &mut next);
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// The paper's `A.t` predicate: is `t` a trace of `spec`?
pub fn has_trace(spec: &Spec, t: &[EventId]) -> bool {
    !states_after(spec, t).is_empty()
}

/// Enumerates every trace of `spec` of length at most `max_len`.
/// Exponential; intended for tests on small machines.
pub fn traces_up_to(spec: &Spec, max_len: usize) -> Vec<Trace> {
    let mut result: Vec<Trace> = vec![Vec::new()];
    let mut frontier: Vec<(Trace, StateSet)> = {
        let mut init = StateSet::new(spec.num_states());
        init.insert(spec.initial());
        close_lambda(spec, &mut init);
        vec![(Vec::new(), init)]
    };
    for _ in 0..max_len {
        let mut next_frontier = Vec::new();
        for (t, states) in &frontier {
            let mut enabled = Alphabet::new();
            for s in states.iter() {
                enabled = enabled.union(&spec.tau(s));
            }
            for e in enabled.iter() {
                let mut next = StateSet::new(spec.num_states());
                for s in states.iter() {
                    for target in spec.ext_successors(s, e) {
                        next.insert(target);
                    }
                }
                if next.is_empty() {
                    continue;
                }
                close_lambda(spec, &mut next);
                let mut t2 = t.clone();
                t2.push(e);
                result.push(t2.clone());
                next_frontier.push((t2, next));
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    result
}

/// Checks `∀t: |t| ≤ max_len ∧ B.t ⇒ A.t` by enumeration — a brute-force
/// bounded trace-inclusion oracle used to cross-validate the efficient
/// checker in [`crate::satisfy`].
pub fn bounded_trace_inclusion(b: &Spec, a: &Spec, max_len: usize) -> Option<Trace> {
    traces_up_to(b, max_len)
        .into_iter()
        .find(|t| !has_trace(a, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn ab_machine() -> Spec {
        // a --x--> b --y--> a, plus internal a ~> c, c --z--> a.
        let mut bld = SpecBuilder::new("m");
        let a = bld.state("a");
        let b = bld.state("b");
        let c = bld.state("c");
        bld.ext(a, "x", b);
        bld.ext(b, "y", a);
        bld.int(a, c);
        bld.ext(c, "z", a);
        bld.build().unwrap()
    }

    #[test]
    fn empty_trace_always_possible() {
        let m = ab_machine();
        assert!(has_trace(&m, &[]));
    }

    #[test]
    fn traces_follow_events_and_internal_moves() {
        let m = ab_machine();
        assert!(has_trace(&m, &trace_of(&["x", "y"])));
        assert!(has_trace(&m, &trace_of(&["z", "x"])));
        assert!(!has_trace(&m, &trace_of(&["y"])));
        assert!(!has_trace(&m, &trace_of(&["x", "x"])));
    }

    #[test]
    fn states_after_accounts_for_closure() {
        let m = ab_machine();
        let after_empty = states_after(&m, &[]);
        // a plus internally-reachable c.
        assert_eq!(after_empty.len(), 2);
        let after_x = states_after(&m, &trace_of(&["x"]));
        assert_eq!(after_x.len(), 1);
    }

    #[test]
    fn projection_splits_alphabets() {
        let int = Alphabet::from_names(["m1", "m2"]);
        let t = trace_of(&["acc", "m1", "del", "m2", "m1"]);
        let p = project(&t, &int);
        assert_eq!(trace_string(&p), "m1.m2.m1");
    }

    #[test]
    fn projection_of_disjoint_is_empty() {
        let int = Alphabet::from_names(["nope"]);
        let t = trace_of(&["acc", "del"]);
        assert_eq!(project(&t, &int), Vec::new());
        assert_eq!(trace_string(&project(&t, &int)), "ε");
    }

    #[test]
    fn enumeration_matches_membership() {
        let m = ab_machine();
        let traces = traces_up_to(&m, 3);
        for t in &traces {
            assert!(has_trace(&m, t), "enumerated {:?} not a member", t);
        }
        // ε, x, z, xy, zx, xyx, xyz, zxy, ... spot-check counts per length.
        let len1 = traces.iter().filter(|t| t.len() == 1).count();
        assert_eq!(len1, 2); // x and z
    }

    #[test]
    fn bounded_inclusion_finds_counterexample() {
        let m = ab_machine();
        let mut bld = SpecBuilder::new("only_x");
        let a = bld.state("a");
        let b = bld.state("b");
        bld.ext(a, "x", b);
        let small = bld.build().unwrap();
        // small ⊆ m
        assert!(bounded_trace_inclusion(&small, &m, 4).is_none());
        // m ⊄ small: z (or xy) is a counterexample.
        let cex = bounded_trace_inclusion(&m, &small, 4).unwrap();
        assert!(!has_trace(&small, &cex));
    }

    #[test]
    fn trace_string_formats() {
        assert_eq!(trace_string(&trace_of(&["a", "b"])), "a.b");
        assert_eq!(trace_string(&[]), "ε");
    }
}
