//! Refusals and acceptance sets — the semantic layer beneath the
//! paper's progress definition.
//!
//! §3 notes that its notion of progress "is similar to the 'refusals'
//! of Hoare, or the 'acceptance sets' of Hennessey". This module makes
//! those objects directly queryable:
//!
//! * the **acceptance sets** after a trace `t` are the τ* sets of the
//!   sink states reachable after `t` — the alternatives the system may
//!   internally commit to;
//! * the system **may refuse** an offered set `X` after `t` iff it can
//!   commit to an acceptance set disjoint from `X` (with `X` = the
//!   whole alphabet: may deadlock);
//! * the system **must accept** `X` iff every acceptance set meets it.
//!
//! "B satisfies A with respect to progress" (the paper's `prog`) is
//! then: whenever A *must* make some offer, B can cover one of A's
//! acceptance alternatives — which is exactly what
//! [`crate::satisfy::satisfies`] checks; tests below cross-validate.

use crate::event::{Alphabet, EventId};
use crate::normal::{normalize, NormalSpec};
use crate::spec::Spec;

/// Failures-semantics queries over one specification.
///
/// Construction normalizes the specification once; queries are then
/// cheap ψ-walks.
pub struct Failures {
    na: NormalSpec,
}

impl Failures {
    /// Prepares the failures view of `spec`.
    pub fn new(spec: &Spec) -> Failures {
        Failures {
            na: normalize(spec),
        }
    }

    /// The acceptance sets after `t`: the distinct τ* sets of sink
    /// states reachable by `t`. `None` iff `t` is not a trace.
    pub fn acceptances_after(&self, t: &[EventId]) -> Option<Vec<Alphabet>> {
        let hub = self.na.psi(t)?;
        Some(self.na.acceptance(hub).to_vec())
    }

    /// Everything that may happen next after `t` (the τ* of the trace).
    pub fn possible_after(&self, t: &[EventId]) -> Option<Alphabet> {
        let hub = self.na.psi(t)?;
        Some(self.na.tau_star(hub).clone())
    }

    /// May the system refuse the entire offered set `x` after `t`?
    /// (`(t, x)` is a *failure* in CSP terms.) `None` iff `t` is not a
    /// trace.
    pub fn may_refuse(&self, t: &[EventId], x: &Alphabet) -> Option<bool> {
        let accs = self.acceptances_after(t)?;
        Some(accs.iter().any(|r| r.is_disjoint(x)))
    }

    /// Must the system accept something from `x` after `t` (i.e. can it
    /// never refuse all of `x`)?
    pub fn must_accept(&self, t: &[EventId], x: &Alphabet) -> Option<bool> {
        self.may_refuse(t, x).map(|r| !r)
    }

    /// May the system deadlock after `t` (refuse the whole alphabet)?
    pub fn may_deadlock(&self, t: &[EventId]) -> Option<bool> {
        self.may_refuse(t, &self.na.spec().alphabet().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;
    use crate::trace::trace_of;

    /// After `req`, the service internally commits to offering `ok`
    /// or to offering `err`.
    fn choice() -> Spec {
        let mut b = SpecBuilder::new("C");
        let s0 = b.state("s0");
        let mid = b.state("mid");
        let l = b.state("l");
        let r = b.state("r");
        b.ext(s0, "req", mid);
        b.int(mid, l);
        b.int(mid, r);
        b.ext(l, "ok", s0);
        b.ext(r, "err", s0);
        b.build().unwrap()
    }

    #[test]
    fn acceptances_reflect_internal_choice() {
        let f = Failures::new(&choice());
        let accs = f.acceptances_after(&trace_of(&["req"])).unwrap();
        assert_eq!(accs.len(), 2);
        assert!(accs.contains(&Alphabet::from_names(["ok"])));
        assert!(accs.contains(&Alphabet::from_names(["err"])));
        assert_eq!(
            f.possible_after(&trace_of(&["req"])).unwrap(),
            Alphabet::from_names(["ok", "err"])
        );
    }

    #[test]
    fn refusals_against_partial_offers() {
        let f = Failures::new(&choice());
        let t = trace_of(&["req"]);
        // Offering only `ok`: the system may have committed to `err`.
        assert_eq!(f.may_refuse(&t, &Alphabet::from_names(["ok"])), Some(true));
        assert_eq!(f.may_refuse(&t, &Alphabet::from_names(["err"])), Some(true));
        // Offering both: some acceptance always meets it.
        assert_eq!(
            f.must_accept(&t, &Alphabet::from_names(["ok", "err"])),
            Some(true)
        );
        // Never deadlocks here.
        assert_eq!(f.may_deadlock(&t), Some(false));
        // Initially only `req` is on offer; refusing {req} is impossible.
        assert_eq!(
            f.must_accept(&[], &Alphabet::from_names(["req"])),
            Some(true)
        );
    }

    #[test]
    fn deadlock_is_refusal_of_everything() {
        let mut b = SpecBuilder::new("D");
        let s0 = b.state("s0");
        let dead = b.state("dead");
        let live = b.state("live");
        b.ext(s0, "go", live);
        b.int(live, dead); // may silently die
        b.ext(live, "more", s0);
        let spec = b.build().unwrap();
        let f = Failures::new(&spec);
        assert_eq!(f.may_deadlock(&trace_of(&["go"])), Some(true));
        assert_eq!(f.may_deadlock(&[]), Some(false));
    }

    #[test]
    fn non_traces_are_none() {
        let f = Failures::new(&choice());
        assert!(f.acceptances_after(&trace_of(&["ok"])).is_none());
        assert!(f
            .may_refuse(&trace_of(&["nope"]), &Alphabet::new())
            .is_none());
        assert!(f.may_deadlock(&trace_of(&["req", "req"])).is_none());
    }

    /// Cross-validation with `satisfies`: B fails progress against A
    /// exactly when, after some common trace, B may refuse an offer A
    /// must be prepared for — demonstrated on the deadlocking example.
    #[test]
    fn refusals_explain_progress_verdicts() {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();

        let mut ib = SpecBuilder::new("impl");
        let s0 = ib.state("s0");
        let s1 = ib.state("s1");
        let dead = ib.state("dead");
        ib.ext(s0, "acc", s1);
        ib.ext(s1, "del", s0);
        ib.int(s1, dead);
        let imp = ib.build().unwrap();

        // The checker reports a progress violation after `acc`…
        let verdict = crate::satisfy::satisfies(&imp, &service).unwrap();
        assert!(matches!(
            verdict,
            Err(crate::satisfy::Violation::Progress { .. })
        ));
        // …and the failures view shows why: the service's sole
        // acceptance after `acc` is {del}, but the implementation may
        // refuse it.
        let fs = Failures::new(&service);
        let fi = Failures::new(&imp);
        let t = trace_of(&["acc"]);
        assert_eq!(
            fs.acceptances_after(&t).unwrap(),
            vec![Alphabet::from_names(["del"])]
        );
        assert_eq!(
            fi.may_refuse(&t, &Alphabet::from_names(["del"])),
            Some(true)
        );
    }
}
