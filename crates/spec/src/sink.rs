//! Sink sets (paper §3) and the Figure 4 collapse operation.
//!
//! A state `s` is *in a sink set* iff every state internally reachable
//! from it can internally reach back: `∀s' : s λ* s' ⇒ s' λ* s`. In graph
//! terms, `s` lies on a strongly connected component of the internal
//! graph with no internal edge leaving the component. Under the paper's
//! fairness assumption, such a cycle of internal transitions behaves like
//! a single state whose enabled-event set is the union over the cycle —
//! which is exactly what [`collapse_sinks`] constructs (Figure 4).

use crate::event::Alphabet;
use crate::spec::{spec_from_parts, Spec, StateId};

/// Strongly connected components of the internal-transition graph, with
/// sink-set classification.
#[derive(Clone, Debug)]
pub struct SinkInfo {
    /// SCC id per state.
    scc_of: Vec<usize>,
    /// Number of SCCs.
    num_sccs: usize,
    /// Per SCC: does any internal edge leave it?
    escapes: Vec<bool>,
}

impl SinkInfo {
    /// Computes SCCs of the internal graph (iterative Tarjan) and marks
    /// which are escape-free.
    pub fn compute(spec: &Spec) -> SinkInfo {
        let n = spec.num_states();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut num_sccs = 0usize;

        // Iterative Tarjan: frame = (node, next-child-position).
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, ci)) = call.last() {
                if ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let children = spec.internal_from(StateId(v as u32));
                if ci < children.len() {
                    call.last_mut().unwrap().1 += 1;
                    let w = children[ci].index();
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w] = false;
                            scc_of[w] = num_sccs;
                            if w == v {
                                break;
                            }
                        }
                        num_sccs += 1;
                    }
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }

        let mut escapes = vec![false; num_sccs];
        for (s, t) in spec.internal_transitions() {
            if scc_of[s.index()] != scc_of[t.index()] {
                escapes[scc_of[s.index()]] = true;
            }
        }
        SinkInfo {
            scc_of,
            num_sccs,
            escapes,
        }
    }

    /// The paper's `sink.s` predicate.
    pub fn is_sink(&self, s: StateId) -> bool {
        !self.escapes[self.scc_of[s.index()]]
    }

    /// SCC id of a state.
    pub fn scc_of(&self, s: StateId) -> usize {
        self.scc_of[s.index()]
    }

    /// Number of SCCs of the internal graph.
    pub fn num_sccs(&self) -> usize {
        self.num_sccs
    }

    /// The union of τ.s over the SCC containing `s` — the enabled-event
    /// set of the collapsed sink set.
    pub fn scc_tau(&self, spec: &Spec, s: StateId) -> Alphabet {
        let target = self.scc_of[s.index()];
        let mut acc = Alphabet::new();
        for t in spec.states() {
            if self.scc_of[t.index()] == target {
                acc = acc.union(&spec.tau(t));
            }
        }
        acc
    }
}

/// The Figure 4 operation: merges every sink set (escape-free internal
/// SCC with more than one state, or with an internal self-loop) into a
/// single state carrying the union of the members' external transitions.
///
/// Trace set and progress semantics are preserved under the paper's
/// fairness assumption for implementations.
///
/// ```
/// use protoquot_spec::{collapse_sinks, Alphabet, SpecBuilder};
/// // Figure 4's left-hand machine: a two-state internal cycle enabling
/// // f on one state and g on the other.
/// let mut b = SpecBuilder::new("fig4");
/// let s0 = b.state("s0");
/// let c1 = b.state("c1");
/// let c2 = b.state("c2");
/// b.ext(s0, "e", c1);
/// b.int(c1, c2);
/// b.int(c2, c1);
/// b.ext(c1, "f", s0);
/// b.ext(c2, "g", s0);
/// let spec = b.build().unwrap();
/// let collapsed = collapse_sinks(&spec);
/// // The cycle becomes one state offering {f, g} (the right-hand side).
/// assert_eq!(collapsed.num_states(), 2);
/// let merged = collapsed.states().find(|&s| collapsed.tau(s).len() == 2).unwrap();
/// assert_eq!(collapsed.tau(merged), Alphabet::from_names(["f", "g"]));
/// ```
pub fn collapse_sinks(spec: &Spec) -> Spec {
    let info = SinkInfo::compute(spec);
    let n = spec.num_states();
    // Representative state per SCC for states in sink sets; other states
    // map to themselves.
    let mut repr: Vec<Option<StateId>> = vec![None; info.num_sccs];
    let mut map = vec![StateId(0); n];
    let mut new_names: Vec<String> = Vec::new();
    for s in spec.states() {
        let scc = info.scc_of(s);
        if info.is_sink(s) {
            if let Some(r) = repr[scc] {
                map[s.index()] = r;
                // Extend the merged label: new ids are assigned
                // densely in push order, so `r` indexes `new_names`
                // directly.
                new_names[r.index()] = format!("{}+{}", new_names[r.index()], spec.state_name(s));
                continue;
            }
            let id = StateId(new_names.len() as u32);
            repr[scc] = Some(id);
            map[s.index()] = id;
            new_names.push(spec.state_name(s).to_owned());
        } else {
            let id = StateId(new_names.len() as u32);
            map[s.index()] = id;
            new_names.push(spec.state_name(s).to_owned());
        }
    }

    let mut ext = Vec::new();
    for (s, e, t) in spec.external_transitions() {
        ext.push((map[s.index()], e, map[t.index()]));
    }
    let mut int = Vec::new();
    for (s, t) in spec.internal_transitions() {
        let (ms, mt) = (map[s.index()], map[t.index()]);
        if ms != mt {
            int.push((ms, mt));
        }
    }
    spec_from_parts(
        format!("{}/collapsed", spec.name()),
        spec.alphabet().clone(),
        new_names,
        map[spec.initial().index()],
        ext,
        int,
    )
    .expect("collapse preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    /// The left-hand machine of Figure 4: a state with an external edge
    /// into a two-state internal cycle; the cycle states enable f and g.
    fn figure4_left() -> Spec {
        let mut b = SpecBuilder::new("fig4");
        let s0 = b.state("s0");
        let c1 = b.state("c1");
        let c2 = b.state("c2");
        let t1 = b.state("t1");
        let t2 = b.state("t2");
        b.ext(s0, "e", c1);
        b.int(c1, c2);
        b.int(c2, c1);
        b.ext(c1, "f", t1);
        b.ext(c2, "g", t2);
        b.build().unwrap()
    }

    #[test]
    fn cycle_states_are_sink() {
        let s = figure4_left();
        let info = SinkInfo::compute(&s);
        let c1 = s.state_by_name("c1").unwrap();
        let c2 = s.state_by_name("c2").unwrap();
        let s0 = s.state_by_name("s0").unwrap();
        assert!(info.is_sink(c1));
        assert!(info.is_sink(c2));
        // s0 has no internal transitions at all: trivially a sink.
        assert!(info.is_sink(s0));
        assert_eq!(info.scc_of(c1), info.scc_of(c2));
        assert_ne!(info.scc_of(s0), info.scc_of(c1));
    }

    #[test]
    fn escaping_cycle_is_not_sink() {
        let mut b = SpecBuilder::new("escape");
        let a = b.state("a");
        let c = b.state("c");
        let out = b.state("out");
        b.int(a, c);
        b.int(c, a);
        b.int(c, out);
        let s = b.build().unwrap();
        let info = SinkInfo::compute(&s);
        assert!(!info.is_sink(a));
        assert!(!info.is_sink(c));
        assert!(info.is_sink(out));
    }

    #[test]
    fn collapse_merges_cycle_and_unions_events() {
        let s = figure4_left();
        let collapsed = collapse_sinks(&s);
        // 5 states -> 4: c1+c2 merged (right-hand side of Figure 4).
        assert_eq!(collapsed.num_states(), 4);
        assert_eq!(collapsed.num_internal(), 0);
        let merged = collapsed
            .states()
            .find(|&st| collapsed.state_name(st).contains('+'))
            .unwrap();
        assert_eq!(collapsed.tau(merged), Alphabet::from_names(["f", "g"]));
    }

    #[test]
    fn scc_tau_unions_over_component() {
        let s = figure4_left();
        let info = SinkInfo::compute(&s);
        let c1 = s.state_by_name("c1").unwrap();
        assert_eq!(info.scc_tau(&s, c1), Alphabet::from_names(["f", "g"]));
    }

    #[test]
    fn self_loop_internal_is_its_own_sink() {
        let mut b = SpecBuilder::new("selfloop");
        let a = b.state("a");
        b.int(a, a);
        b.ext(a, "e", a);
        let s = b.build().unwrap();
        let info = SinkInfo::compute(&s);
        assert!(info.is_sink(a));
        // Collapsing drops the self-loop.
        let c = collapse_sinks(&s);
        assert_eq!(c.num_internal(), 0);
        assert_eq!(c.num_states(), 1);
    }

    #[test]
    fn collapse_preserves_initial_mapping() {
        let mut b = SpecBuilder::new("init");
        let a = b.state("a");
        let c = b.state("c");
        b.int(a, c);
        b.int(c, a);
        b.initial(c);
        let s = b.build().unwrap();
        let collapsed = collapse_sinks(&s);
        assert_eq!(collapsed.num_states(), 1);
        assert_eq!(collapsed.initial(), StateId(0));
    }

    /// A sink ring with hundreds of members collapses to one state
    /// whose label and τ union over every member (this shape used to
    /// trigger a quadratic representative scan).
    #[test]
    fn collapse_scales_to_many_state_sink() {
        let n = 300usize;
        let mut b = SpecBuilder::new("bigring");
        let entry = b.state("entry");
        let ring: Vec<StateId> = (0..n).map(|i| b.state(&format!("r{i}"))).collect();
        b.ext(entry, "e", ring[0]);
        for i in 0..n {
            b.int(ring[i], ring[(i + 1) % n]);
            b.ext(ring[i], &format!("out{i}"), entry);
        }
        let s = b.build().unwrap();
        let collapsed = collapse_sinks(&s);
        assert_eq!(collapsed.num_states(), 2);
        assert_eq!(collapsed.num_internal(), 0);
        let merged = collapsed
            .states()
            .find(|&st| collapsed.state_name(st).contains('+'))
            .unwrap();
        // Every member's name and external offer is folded in.
        assert_eq!(
            collapsed.state_name(merged).split('+').count(),
            n,
            "merged label covers the whole ring"
        );
        assert_eq!(collapsed.tau(merged).len(), n);
        // A second, disjoint sink pair must pick its own
        // representative without disturbing the first.
        let mut b2 = SpecBuilder::new("tworings");
        let r1a = b2.state("r1a");
        let r1b = b2.state("r1b");
        let r2a = b2.state("r2a");
        let r2b = b2.state("r2b");
        b2.int(r1a, r1b);
        b2.int(r1b, r1a);
        b2.int(r2a, r2b);
        b2.int(r2b, r2a);
        b2.ext(r1a, "x", r2a);
        let s2 = b2.build().unwrap();
        let collapsed2 = collapse_sinks(&s2);
        assert_eq!(collapsed2.num_states(), 2);
        assert_eq!(collapsed2.state_name(StateId(0)), "r1a+r1b");
        assert_eq!(collapsed2.state_name(StateId(1)), "r2a+r2b");
    }

    #[test]
    fn chain_of_sccs_orders_correctly() {
        // a -> b -> c (internal chain): only c is a sink.
        let mut b = SpecBuilder::new("chain");
        let s1 = b.state("a");
        let s2 = b.state("b");
        let s3 = b.state("c");
        b.int(s1, s2);
        b.int(s2, s3);
        let s = b.build().unwrap();
        let info = SinkInfo::compute(&s);
        assert!(!info.is_sink(s1));
        assert!(!info.is_sink(s2));
        assert!(info.is_sink(s3));
        assert_eq!(info.num_sccs(), 3);
    }
}
