//! Rendering specifications: Graphviz DOT and a plain-text listing.

use crate::spec::Spec;

/// Renders the specification as a Graphviz digraph. Internal transitions
/// are dashed, the initial state is doubly circled.
pub fn to_dot(spec: &Spec) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(spec.name())));
    out.push_str("  rankdir=LR;\n  node [shape=circle];\n");
    for s in spec.states() {
        let shape = if s == spec.initial() {
            "doublecircle"
        } else {
            "circle"
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}];\n",
            s.index(),
            escape(spec.state_name(s)),
            shape
        ));
    }
    for (s, e, t) in spec.external_transitions() {
        out.push_str(&format!(
            "  n{} -> n{} [label=\"{}\"];\n",
            s.index(),
            t.index(),
            escape(&e.name())
        ));
    }
    for (s, t) in spec.internal_transitions() {
        out.push_str(&format!(
            "  n{} -> n{} [style=dashed];\n",
            s.index(),
            t.index()
        ));
    }
    out.push_str("}\n");
    out
}

/// Plain-text adjacency listing, stable across runs; useful in golden
/// tests and terminal output.
pub fn to_text(spec: &Spec) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "spec {} [{} states, initial {}]\n",
        spec.name(),
        spec.num_states(),
        spec.state_name(spec.initial())
    ));
    out.push_str(&format!("alphabet: {}\n", spec.alphabet()));
    for s in spec.states() {
        let mut edges: Vec<String> = Vec::new();
        let mut ext: Vec<_> = spec.external_from(s).to_vec();
        ext.sort_by_key(|&(e, t)| (e.name(), t));
        for (e, t) in ext {
            edges.push(format!("{} -> {}", e, spec.state_name(t)));
        }
        let mut int: Vec<_> = spec.internal_from(s).to_vec();
        int.sort();
        for t in int {
            edges.push(format!("~> {}", spec.state_name(t)));
        }
        out.push_str(&format!(
            "  {}: {}\n",
            spec.state_name(s),
            if edges.is_empty() {
                "(no transitions)".to_owned()
            } else {
                edges.join(" | ")
            }
        ));
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn sample() -> Spec {
        let mut b = SpecBuilder::new("sam\"ple");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "go", c);
        b.int(c, a);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_edges_and_escapes() {
        let d = to_dot(&sample());
        assert!(d.contains("digraph \"sam\\\"ple\""));
        assert!(d.contains("doublecircle"));
        assert!(d.contains("label=\"go\""));
        assert!(d.contains("style=dashed"));
    }

    #[test]
    fn text_listing_is_stable() {
        let t = to_text(&sample());
        assert!(t.contains("2 states"));
        assert!(t.contains("a: go -> c"));
        assert!(t.contains("c: ~> a"));
    }

    #[test]
    fn text_marks_stuck_states() {
        let mut b = SpecBuilder::new("stuck");
        b.state("only");
        let t = to_text(&b.build().unwrap());
        assert!(t.contains("(no transitions)"));
    }
}
