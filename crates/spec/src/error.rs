//! Error types for specification construction and analysis.

use std::fmt;

/// Errors raised while building or transforming a [`Spec`](crate::Spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A specification must have a nonempty state set.
    NoStates(String),
    /// A transition or the initial state referenced a state index out of
    /// range.
    InvalidState(usize),
    /// An operation referenced an event outside the alphabet.
    UnknownEvent(String),
    /// An operation would have introduced a duplicate event.
    DuplicateEvent(String),
    /// Two specifications that must share an interface do not.
    InterfaceMismatch {
        /// Alphabet of the left operand.
        left: String,
        /// Alphabet of the right operand.
        right: String,
    },
    /// An event was found in more than two component alphabets of an
    /// n-ary composition; the paper's binary `‖` hides an event as soon
    /// as two components share it, so a third user would silently
    /// mis-synchronise.
    EventSharedByMoreThanTwo(String),
    /// A textual spec failed to parse (detail in the message).
    Parse(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoStates(name) => {
                write!(f, "specification `{name}` has no states")
            }
            SpecError::InvalidState(i) => write!(f, "state index {i} out of range"),
            SpecError::UnknownEvent(e) => write!(f, "event `{e}` is not in the alphabet"),
            SpecError::DuplicateEvent(e) => write!(f, "event `{e}` already in the alphabet"),
            SpecError::InterfaceMismatch { left, right } => write!(
                f,
                "interface mismatch: left alphabet {left}, right alphabet {right}"
            ),
            SpecError::EventSharedByMoreThanTwo(e) => write!(
                f,
                "event `{e}` appears in more than two component alphabets; \
                 binary composition would hide it after the first pair"
            ),
            SpecError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SpecError::NoStates("x".into()).to_string().contains("x"));
        assert!(SpecError::InvalidState(3).to_string().contains('3'));
        assert!(SpecError::UnknownEvent("e".into())
            .to_string()
            .contains("`e`"));
        assert!(SpecError::DuplicateEvent("e".into())
            .to_string()
            .contains("already"));
        assert!(SpecError::InterfaceMismatch {
            left: "{a}".into(),
            right: "{b}".into()
        }
        .to_string()
        .contains("mismatch"));
        assert!(SpecError::EventSharedByMoreThanTwo("e".into())
            .to_string()
            .contains("more than two"));
        assert!(SpecError::Parse("bad".into()).to_string().contains("bad"));
    }
}
