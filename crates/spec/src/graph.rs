//! Whole-graph reachability utilities: which states can occur at all,
//! and pruning those that cannot.

use crate::spec::{spec_from_parts, Spec, StateId};
use crate::stateset::StateSet;

/// The set of states reachable from the initial state via any mix of
/// external and internal transitions.
pub fn reachable(spec: &Spec) -> StateSet {
    reachable_from(spec, spec.initial())
}

/// The set of states reachable from `start`.
pub fn reachable_from(spec: &Spec, start: StateId) -> StateSet {
    let mut set = StateSet::new(spec.num_states());
    let mut stack = vec![start];
    set.insert(start);
    while let Some(s) = stack.pop() {
        for &(_, t) in spec.external_from(s) {
            if set.insert(t) {
                stack.push(t);
            }
        }
        for &t in spec.internal_from(s) {
            if set.insert(t) {
                stack.push(t);
            }
        }
    }
    set
}

/// Removes unreachable states, renumbering the rest. The alphabet is
/// unchanged (interfaces are declarative).
pub fn prune_unreachable(spec: &Spec) -> Spec {
    let live = reachable(spec);
    if live.len() == spec.num_states() {
        return spec.clone();
    }
    let mut map = vec![None; spec.num_states()];
    let mut names = Vec::new();
    for s in live.iter() {
        map[s.index()] = Some(StateId(names.len() as u32));
        names.push(spec.state_name(s).to_owned());
    }
    let ext = spec
        .external_transitions()
        .filter_map(|(s, e, t)| Some((map[s.index()]?, e, map[t.index()]?)))
        .collect();
    let int = spec
        .internal_transitions()
        .filter_map(|(s, t)| Some((map[s.index()]?, map[t.index()]?)))
        .collect();
    spec_from_parts(
        spec.name().to_owned(),
        spec.alphabet().clone(),
        names,
        map[spec.initial().index()].expect("initial state is always reachable"),
        ext,
        int,
    )
    .expect("pruning preserves validity")
}

/// States with no outgoing transitions at all (external or internal).
/// In a closed system these are deadlocks; in an open one they simply
/// refuse everything.
pub fn terminal_states(spec: &Spec) -> Vec<StateId> {
    spec.states()
        .filter(|&s| spec.external_from(s).is_empty() && spec.internal_from(s).is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn with_island() -> Spec {
        let mut b = SpecBuilder::new("island");
        let a = b.state("a");
        let c = b.state("c");
        let orphan = b.state("orphan");
        let orphan2 = b.state("orphan2");
        b.ext(a, "e", c);
        b.int(c, a);
        b.ext(orphan, "e", orphan2);
        b.build().unwrap()
    }

    #[test]
    fn reachable_excludes_island() {
        let s = with_island();
        let r = reachable(&s);
        assert_eq!(r.len(), 2);
        assert!(r.contains(s.state_by_name("a").unwrap()));
        assert!(!r.contains(s.state_by_name("orphan").unwrap()));
    }

    #[test]
    fn prune_drops_island_and_renumbers() {
        let s = with_island();
        let p = prune_unreachable(&s);
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.num_external(), 1);
        assert_eq!(p.num_internal(), 1);
        assert_eq!(p.state_name(p.initial()), "a");
        // Alphabet unchanged even though the orphan edge is gone.
        assert_eq!(p.alphabet(), s.alphabet());
    }

    #[test]
    fn prune_noop_when_fully_reachable() {
        let mut b = SpecBuilder::new("full");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "e", c);
        let s = b.build().unwrap();
        let p = prune_unreachable(&s);
        assert_eq!(p, s);
    }

    #[test]
    fn terminal_states_found() {
        let mut b = SpecBuilder::new("t");
        let a = b.state("a");
        let dead = b.state("dead");
        b.ext(a, "e", dead);
        let s = b.build().unwrap();
        assert_eq!(terminal_states(&s), vec![dead]);
    }

    #[test]
    fn reachable_from_alternate_start() {
        let s = with_island();
        let orphan = s.state_by_name("orphan").unwrap();
        let r = reachable_from(&s, orphan);
        assert_eq!(r.len(), 2);
        assert!(r.contains(s.state_by_name("orphan2").unwrap()));
    }
}
