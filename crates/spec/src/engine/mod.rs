//! A compiled, interned verification engine for the satisfaction check.
//!
//! The reference pipeline — [`crate::compose_all`] folding pairwise
//! products, [`crate::normalize`] building per-hub `HashMap`s, and
//! [`crate::satisfies`] exploring with per-state λ*/τ* DFS — is clear
//! but allocation-heavy. This module compiles the same §3/§4 objects
//! into dense CSR form (`u32` state ids, event-indexed step tables,
//! bitset alphabets) and re-runs the three hot paths on top of it:
//!
//! * **composition** — a single n-way reachable product exploration
//!   ([`compose_all_nway`]) instead of fold-with-materialization;
//! * **normalization** — subset construction with hash-consed,
//!   canonically sorted hub sets and a dense ψ step table;
//! * **satisfaction** — a parallel product frontier over the vendored
//!   `threadpool` (the same condvar work-queue pattern as the core
//!   safety-phase engine), with a sequential canonical BFS re-walk on
//!   failure paths only.
//!
//! Everything observable — verdicts, witness traces, violation state
//! ids, `needed`/`offered` sets — is **bit identical** to the reference
//! at every thread count; `tests/verify_differential.rs` enforces this.
//! The reference functions stay in place as oracles.

mod compiled;
mod norm;
mod product;

use crate::error::SpecError;
use crate::event::{Alphabet, EventId};
use crate::satisfy::SatisfactionResult;
use crate::spec::{spec_from_parts, Spec, StateId};
use compiled::{build_nway, build_single};
use norm::compile_normal;
use product::run_product;
use std::collections::HashMap;
use std::sync::Arc;

pub use compiled::{tau_star_rows, CompiledComposite, EventTable};

/// Compiles `P_0 ‖ … ‖ P_{n-1}` into CSR form over `tbl`.
///
/// `tbl` must cover every event owned by exactly one component (the
/// composite's interface); shared events synchronise and hide, exactly
/// as [`crate::compose_all`] would. Events shared by more than two
/// components are rejected with the same error as the reference fold.
/// A single component compiles as the identity on its state ids.
pub fn compile_composite(
    parts: &[&Spec],
    tbl: &EventTable,
) -> Result<CompiledComposite, SpecError> {
    assert!(
        !parts.is_empty(),
        "compile_composite needs at least one component"
    );
    event_counts(parts)?;
    Ok(if parts.len() == 1 {
        build_single(parts[0], tbl)
    } else {
        build_nway(parts, tbl)
    })
}

/// Size and work counters of one engine verification run.
///
/// All fields except `threads` are deterministic: they do not vary with
/// the thread count (asserted by the differential tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyEngineStats {
    /// Composite states explored (equals the reference composite).
    pub states: usize,
    /// Composite transitions (external + internal CSR entries).
    pub transitions: usize,
    /// ψ-hubs of the determinized service.
    pub hubs: usize,
    /// Reachable product pairs checked (up to the stopping point on a
    /// safety violation).
    pub pairs: usize,
    /// Interning hits: composite tuples plus hub sets.
    pub dedup_hits: usize,
    /// Bytes held by the compiled CSR tables and interned keys.
    pub arena_bytes: usize,
    /// Worker threads used for the product frontier and progress scan.
    pub threads: usize,
}

impl std::fmt::Display for VerifyEngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "states={} transitions={} hubs={} pairs={} dedup_hits={} arena={}B threads={}",
            self.states,
            self.transitions,
            self.hubs,
            self.pairs,
            self.dedup_hits,
            self.arena_bytes,
            self.threads
        )
    }
}

/// Verdict plus engine statistics.
#[derive(Debug)]
pub struct EngineVerdict {
    /// The satisfaction verdict, bit identical to the reference.
    pub verdict: SatisfactionResult,
    /// Counters of the run.
    pub stats: VerifyEngineStats,
}

/// Counts alphabet owners per event, rejecting events shared by more
/// than two components (mirrors [`crate::compose_all`]).
fn event_counts(parts: &[&Spec]) -> Result<HashMap<EventId, usize>, SpecError> {
    let mut counts: HashMap<EventId, usize> = HashMap::new();
    for p in parts {
        for e in p.alphabet().iter() {
            *counts.entry(e).or_insert(0) += 1;
        }
    }
    if let Some((e, _)) = counts.iter().find(|&(_, &c)| c > 2) {
        return Err(SpecError::EventSharedByMoreThanTwo(e.name()));
    }
    Ok(counts)
}

/// The composite interface: events owned by exactly one component
/// (shared events synchronise and hide, per §3's `‖`).
fn solo_alphabet(counts: &HashMap<EventId, usize>) -> Alphabet {
    let mut a = Alphabet::new();
    for (&e, &c) in counts {
        if c == 1 {
            a.insert(e);
        }
    }
    a
}

/// Checks `P_0 ‖ … ‖ P_{n-1} satisfies service` on the compiled engine.
///
/// Equivalent to `satisfies(&compose_all(parts)?, service)` — same
/// errors, same verdict, same witness — but without materializing the
/// composite `Spec`, and with the product check parallelized across
/// `threads` workers.
pub fn verify_system(
    parts: &[&Spec],
    service: &Spec,
    threads: usize,
) -> Result<EngineVerdict, SpecError> {
    assert!(
        !parts.is_empty(),
        "verify_system needs at least one component"
    );
    let counts = event_counts(parts)?;
    let iface = solo_alphabet(&counts);
    if &iface != service.alphabet() {
        return Err(SpecError::InterfaceMismatch {
            left: format!("{iface}"),
            right: format!("{}", service.alphabet()),
        });
    }
    let threads = threads.max(1);
    let tbl = EventTable::new(service.alphabet());
    let comp = Arc::new(if parts.len() == 1 {
        build_single(parts[0], &tbl)
    } else {
        build_nway(parts, &tbl)
    });
    let norm = Arc::new(compile_normal(service, &tbl));
    let outcome = run_product(Arc::clone(&comp), Arc::clone(&norm), &tbl, threads);
    Ok(EngineVerdict {
        verdict: outcome.verdict,
        stats: VerifyEngineStats {
            states: comp.n,
            transitions: comp.num_transitions(),
            hubs: norm.nh,
            pairs: outcome.pairs,
            dedup_hits: comp.dedup_hits + norm.dedup_hits,
            arena_bytes: comp.arena_bytes + norm.arena_bytes,
            threads,
        },
    })
}

/// Engine counterpart of [`crate::satisfies`]: checks `B satisfies A`
/// with `threads` workers, returning the identical verdict plus stats.
pub fn satisfies_engine(b: &Spec, a: &Spec, threads: usize) -> Result<EngineVerdict, SpecError> {
    verify_system(&[b], a, threads)
}

/// N-way composition as a single product exploration.
///
/// Produces a `Spec` identical to the reference left fold
/// `compose_all(parts)` — same state numbering, names, and per-state
/// adjacency order (modulo the duplicate-edge removal both paths share)
/// — without materializing any intermediate composite.
pub fn compose_all_nway(parts: &[&Spec]) -> Result<Spec, SpecError> {
    assert!(
        !parts.is_empty(),
        "compose_all_nway needs at least one component"
    );
    let counts = event_counts(parts)?;
    if parts.len() == 1 {
        return Ok(parts[0].clone());
    }
    let iface = solo_alphabet(&counts);
    let tbl = EventTable::new(&iface);
    let comp = build_nway(parts, &tbl);

    let name = parts
        .iter()
        .map(|p| p.name().to_string())
        .collect::<Vec<_>>()
        .join("||");
    let names: Vec<String> = comp
        .tuples
        .iter()
        .map(|t| {
            let mut label = parts[0].state_name(StateId(t[0])).to_string();
            for (i, &s) in t.iter().enumerate().skip(1) {
                label = format!("({},{})", label, parts[i].state_name(StateId(s)));
            }
            label
        })
        .collect();

    let mut ext = Vec::with_capacity(comp.ext_ev.len());
    let mut int = Vec::with_capacity(comp.int_tgt.len());
    for s in 0..comp.n {
        for k in comp.ext_off[s] as usize..comp.ext_off[s + 1] as usize {
            ext.push((
                StateId(s as u32),
                tbl.events[comp.ext_ev[k] as usize],
                StateId(comp.ext_tgt[k]),
            ));
        }
        for k in comp.int_off[s] as usize..comp.int_off[s + 1] as usize {
            int.push((StateId(s as u32), StateId(comp.int_tgt[k])));
        }
    }
    spec_from_parts(name, iface, names, StateId(0), ext, int)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::{compose, compose_all};
    use crate::minimize::bisimilar;
    use crate::satisfy::{satisfies, Violation};
    use crate::spec::SpecBuilder;

    fn alternator(name: &str, a: &str, b: &str) -> Spec {
        let mut sb = SpecBuilder::new(name);
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        sb.ext(s0, a, s1);
        sb.ext(s1, b, s0);
        sb.build().unwrap()
    }

    /// Relay of three components: in -> x -> y -> out.
    fn relay_parts() -> (Spec, Spec, Spec) {
        (
            alternator("p0", "in", "x"),
            alternator("p1", "x", "y"),
            alternator("p2", "y", "out"),
        )
    }

    #[test]
    fn nway_matches_pairwise_compose_exactly() {
        let a = alternator("A", "in", "x");
        let b = alternator("B", "x", "out");
        let reference = compose(&a, &b);
        let nway = compose_all_nway(&[&a, &b]).unwrap();
        assert_eq!(nway.name(), reference.name());
        assert_eq!(nway.alphabet(), reference.alphabet());
        assert_eq!(nway.num_states(), reference.num_states());
        for s in reference.states() {
            assert_eq!(nway.state_name(s), reference.state_name(s));
            assert_eq!(nway.external_from(s), reference.external_from(s));
            assert_eq!(nway.internal_from(s), reference.internal_from(s));
        }
        assert_eq!(nway.initial(), reference.initial());
    }

    #[test]
    fn nway_matches_fold_for_three_parts() {
        let (p0, p1, p2) = relay_parts();
        let folded = compose_all(&[&p0, &p1, &p2]).unwrap();
        let nway = compose_all_nway(&[&p0, &p1, &p2]).unwrap();
        assert_eq!(nway.num_states(), folded.num_states());
        assert_eq!(nway.alphabet(), folded.alphabet());
        for s in folded.states() {
            assert_eq!(nway.external_from(s), folded.external_from(s));
            assert_eq!(nway.internal_from(s), folded.internal_from(s));
        }
        assert!(bisimilar(&nway, &folded));
    }

    #[test]
    fn nway_rejects_three_way_sharing() {
        let p0 = alternator("p0", "e", "x");
        let p1 = alternator("p1", "e", "y");
        let p2 = alternator("p2", "e", "z");
        assert!(matches!(
            compose_all_nway(&[&p0, &p1, &p2]),
            Err(SpecError::EventSharedByMoreThanTwo(_))
        ));
    }

    #[test]
    fn engine_agrees_on_simple_satisfaction() {
        let service = alternator("svc", "acc", "del");
        let mut sb = SpecBuilder::new("impl");
        let s0 = sb.state("s0");
        let mid = sb.state("mid");
        let s1 = sb.state("s1");
        sb.ext(s0, "acc", mid);
        sb.int(mid, s1);
        sb.ext(s1, "del", s0);
        let imp = sb.build().unwrap();
        for threads in [1, 2, 4] {
            let out = satisfies_engine(&imp, &service, threads).unwrap();
            assert!(out.verdict.is_ok());
            assert!(out.stats.pairs >= 3);
        }
    }

    #[test]
    fn engine_reproduces_reference_safety_witness() {
        let service = alternator("svc", "acc", "del");
        let mut sb = SpecBuilder::new("impl");
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        sb.ext(s0, "acc", s1);
        sb.ext(s1, "del", s0);
        sb.ext(s1, "del", s1); // duplicate delivery
        let imp = sb.build().unwrap();
        let reference = satisfies(&imp, &service).unwrap();
        for threads in [1, 2, 8] {
            let engine = satisfies_engine(&imp, &service, threads).unwrap();
            match (&reference, &engine.verdict) {
                (Err(Violation::Safety { trace: rt }), Err(Violation::Safety { trace: et })) => {
                    assert_eq!(rt, et);
                }
                other => panic!("expected matching safety violations, got {other:?}"),
            }
        }
    }

    #[test]
    fn engine_reproduces_reference_progress_violation() {
        let service = alternator("svc", "acc", "del");
        let mut sb = SpecBuilder::new("impl");
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        let dead = sb.state("dead");
        sb.ext(s0, "acc", s1);
        sb.ext(s1, "del", s0);
        sb.int(s1, dead);
        let imp = sb.build().unwrap();
        let reference = satisfies(&imp, &service).unwrap();
        for threads in [1, 2, 8] {
            let engine = satisfies_engine(&imp, &service, threads).unwrap();
            match (&reference, &engine.verdict) {
                (
                    Err(Violation::Progress {
                        trace: rt,
                        state: rs,
                        needed: rn,
                        offered: ro,
                    }),
                    Err(Violation::Progress {
                        trace: et,
                        state: es,
                        needed: en,
                        offered: eo,
                    }),
                ) => {
                    assert_eq!(rt, et);
                    assert_eq!(rs, es);
                    assert_eq!(rn, en);
                    assert_eq!(ro, eo);
                }
                other => panic!("expected matching progress violations, got {other:?}"),
            }
        }
    }

    #[test]
    fn interface_mismatch_matches_reference_error() {
        let b = alternator("b", "x", "y");
        let a = alternator("a", "x", "z");
        let reference = satisfies(&b, &a).unwrap_err();
        let engine = satisfies_engine(&b, &a, 1).unwrap_err();
        assert_eq!(format!("{reference}"), format!("{engine}"));
    }

    #[test]
    fn stats_are_thread_invariant() {
        let (p0, p1, p2) = relay_parts();
        let composite = compose_all(&[&p0, &p1, &p2]).unwrap();
        let service = {
            // The composite interface is {in, out}; accept everything.
            let mut sb = SpecBuilder::new("svc");
            let s0 = sb.state("s0");
            let s1 = sb.state("s1");
            sb.ext(s0, "in", s1);
            sb.ext(s1, "out", s0);
            sb.build().unwrap()
        };
        let reference = satisfies(&composite, &service).unwrap();
        let base = verify_system(&[&p0, &p1, &p2], &service, 1).unwrap();
        assert_eq!(reference.is_ok(), base.verdict.is_ok());
        for threads in [2, 8] {
            let out = verify_system(&[&p0, &p1, &p2], &service, threads).unwrap();
            let mut stats = out.stats;
            stats.threads = base.stats.threads;
            assert_eq!(stats, base.stats);
        }
    }
}
