//! The (composite state × ψ-hub) product check: safety as trace
//! inclusion, progress as sink-acceptance containment.
//!
//! The happy path is fully parallel: a condvar work-queue frontier (the
//! `safety_engine` pattern) marks reachable pairs in an atomic bitmap,
//! then the progress scan partitions the pair space across the pool.
//! Only when a check *fails* does a sequential canonical BFS re-walk
//! run, reproducing the reference exploration order exactly — so the
//! witness trace, violation state id, and needed/offered sets are bit
//! identical to [`crate::satisfies`] at every thread count.

use super::compiled::{bits_subset, tau_star_rows, CompiledComposite};
use super::norm::{CompiledNormal, NO_HUB};
use crate::satisfy::{SatisfactionResult, Violation};
use crate::spec::StateId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use threadpool::ThreadPool;

use super::compiled::EventTable;

struct FrontierQueue {
    items: VecDeque<u64>,
    pending: usize,
}

struct Frontier {
    comp: Arc<CompiledComposite>,
    norm: Arc<CompiledNormal>,
    nh: u64,
    seen: Vec<AtomicU64>,
    queue: Mutex<FrontierQueue>,
    ready: Condvar,
    violated: AtomicBool,
}

fn try_mark(seen: &[AtomicU64], p: u64) -> bool {
    let bit = 1u64 << (p % 64);
    seen[(p / 64) as usize].fetch_or(bit, Ordering::Relaxed) & bit == 0
}

fn run_worker(sh: &Frontier) {
    let ne = sh.norm.ne;
    let mut discovered: Vec<u64> = Vec::new();
    loop {
        let item = {
            let mut q = sh.queue.lock().expect("frontier queue poisoned");
            loop {
                if sh.violated.load(Ordering::Relaxed) {
                    q.items.clear();
                }
                if let Some(p) = q.items.pop_front() {
                    q.pending += 1;
                    break Some(p);
                }
                if q.pending == 0 {
                    break None;
                }
                q = sh.ready.wait(q).expect("frontier queue poisoned");
            }
        };
        let Some(p) = item else {
            sh.ready.notify_all();
            return;
        };

        let t = (p / sh.nh) as usize;
        let h = (p % sh.nh) as usize;
        discovered.clear();
        let mut abort = false;
        for k in sh.comp.int_off[t] as usize..sh.comp.int_off[t + 1] as usize {
            let p2 = sh.comp.int_tgt[k] as u64 * sh.nh + h as u64;
            if try_mark(&sh.seen, p2) {
                discovered.push(p2);
            }
        }
        for k in sh.comp.ext_off[t] as usize..sh.comp.ext_off[t + 1] as usize {
            let h2 = sh.norm.step[h * ne + sh.comp.ext_ev[k] as usize];
            if h2 == NO_HUB {
                sh.violated.store(true, Ordering::Relaxed);
                abort = true;
                break;
            }
            let p2 = sh.comp.ext_tgt[k] as u64 * sh.nh + h2 as u64;
            if try_mark(&sh.seen, p2) {
                discovered.push(p2);
            }
        }

        let mut q = sh.queue.lock().expect("frontier queue poisoned");
        if abort {
            q.items.clear();
        } else {
            q.items.extend(discovered.iter().copied());
        }
        q.pending -= 1;
        let wake = q.pending == 0 || abort || !q.items.is_empty();
        drop(q);
        if wake {
            sh.ready.notify_all();
        }
    }
}

/// Sequential canonical re-walk of the product, in exactly the
/// reference [`crate::satisfy`] exploration order: FIFO over pairs,
/// internal edges before external edges, stopping at the first
/// undefined ψ step when `stop` is set.
struct Walk {
    /// `(state, hub)` pairs in discovery order.
    pairs: Vec<(u32, u32)>,
    /// Per pair: parent index and the external event (as a table index,
    /// `u32::MAX` for internal moves / the root).
    parents: Vec<(u32, u32)>,
    /// First safety violation: (pair index, event-table index).
    violation: Option<(usize, u32)>,
}

const NO_EVENT: u32 = u32::MAX;
const NO_PARENT: u32 = u32::MAX;

fn canonical_walk(comp: &CompiledComposite, norm: &CompiledNormal, stop: bool) -> Walk {
    let ne = norm.ne;
    let mut index: HashMap<(u32, u32), u32> = HashMap::new();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut parents: Vec<(u32, u32)> = Vec::new();
    let mut work: VecDeque<u32> = VecDeque::new();
    let start = (comp.initial, norm.initial);
    index.insert(start, 0);
    pairs.push(start);
    parents.push((NO_PARENT, NO_EVENT));
    work.push_back(0);
    let mut violation = None;

    while let Some(i) = work.pop_front() {
        let (t, h) = pairs[i as usize];
        let tu = t as usize;
        for k in comp.int_off[tu] as usize..comp.int_off[tu + 1] as usize {
            let key = (comp.int_tgt[k], h);
            if let std::collections::hash_map::Entry::Vacant(v) = index.entry(key) {
                let id = pairs.len() as u32;
                v.insert(id);
                pairs.push(key);
                parents.push((i, NO_EVENT));
                work.push_back(id);
            }
        }
        for k in comp.ext_off[tu] as usize..comp.ext_off[tu + 1] as usize {
            let ev = comp.ext_ev[k];
            let h2 = norm.step[h as usize * ne + ev as usize];
            if h2 == NO_HUB {
                if violation.is_none() {
                    violation = Some((i as usize, ev));
                    if stop {
                        return Walk {
                            pairs,
                            parents,
                            violation,
                        };
                    }
                }
                continue;
            }
            let key = (comp.ext_tgt[k], h2);
            if let std::collections::hash_map::Entry::Vacant(v) = index.entry(key) {
                let id = pairs.len() as u32;
                v.insert(id);
                pairs.push(key);
                parents.push((i, ev));
                work.push_back(id);
            }
        }
    }
    Walk {
        pairs,
        parents,
        violation,
    }
}

fn trace_to(walk: &Walk, tbl: &EventTable, mut i: usize) -> Vec<crate::event::EventId> {
    let mut rev = Vec::new();
    loop {
        let (p, ev) = walk.parents[i];
        if p == NO_PARENT {
            break;
        }
        if ev != NO_EVENT {
            rev.push(tbl.events[ev as usize]);
        }
        i = p as usize;
    }
    rev.reverse();
    rev
}

/// Outcome of the product check.
pub(crate) struct ProductOutcome {
    pub(crate) verdict: SatisfactionResult,
    /// Reachable product pairs (up to the stopping point on a safety
    /// violation — deterministic across thread counts by construction).
    pub(crate) pairs: usize,
}

pub(crate) fn run_product(
    comp: Arc<CompiledComposite>,
    norm: Arc<CompiledNormal>,
    tbl: &EventTable,
    threads: usize,
) -> ProductOutcome {
    let threads = threads.max(1);
    let nh = norm.nh as u64;
    let total = comp.n as u64 * nh;
    let seen: Vec<AtomicU64> = (0..total.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
    let root = comp.initial as u64 * nh + norm.initial as u64;
    try_mark(&seen, root);

    let frontier = Arc::new(Frontier {
        comp: Arc::clone(&comp),
        norm: Arc::clone(&norm),
        nh,
        seen,
        queue: Mutex::new(FrontierQueue {
            items: VecDeque::from([root]),
            pending: 0,
        }),
        ready: Condvar::new(),
        violated: AtomicBool::new(false),
    });

    if threads == 1 {
        run_worker(&frontier);
    } else {
        let pool = ThreadPool::new(threads);
        for _ in 0..threads {
            let sh = Arc::clone(&frontier);
            pool.execute(move || run_worker(&sh));
        }
        pool.join();
    }

    if frontier.violated.load(Ordering::Relaxed) {
        // Canonical re-walk to the reference's first violation.
        let walk = canonical_walk(&comp, &norm, true);
        let (i, ev) = walk
            .violation
            .expect("parallel frontier saw a violation the canonical walk must reach");
        let mut trace = trace_to(&walk, tbl, i);
        trace.push(tbl.events[ev as usize]);
        return ProductOutcome {
            verdict: Err(Violation::Safety { trace }),
            pairs: walk.pairs.len(),
        };
    }

    // Progress: some acceptance set of the hub must be offered (τ*) by
    // the composite state, for every reachable pair.
    let words = norm.words;
    let tau = Arc::new(tau_star_rows(&comp, words));
    let any_fail = if threads == 1 {
        progress_scan_range(&norm, &frontier.seen, &tau, 0, total)
    } else {
        let fail = Arc::new(AtomicBool::new(false));
        let next_chunk = Arc::new(AtomicUsize::new(0));
        let chunk = ((total / (threads as u64 * 8)) + 1).max(256);
        let nchunks = total.div_ceil(chunk);
        let pool = ThreadPool::new(threads);
        for _ in 0..threads {
            let sh = Arc::clone(&frontier);
            let tau = Arc::clone(&tau);
            let fail = Arc::clone(&fail);
            let next_chunk = Arc::clone(&next_chunk);
            pool.execute(move || loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed) as u64;
                if c >= nchunks || fail.load(Ordering::Relaxed) {
                    return;
                }
                let lo = c * chunk;
                let hi = (lo + chunk).min(total);
                if progress_scan_range(&sh.norm, &sh.seen, &tau, lo, hi) {
                    fail.store(true, Ordering::Relaxed);
                    return;
                }
            });
        }
        pool.join();
        fail.load(Ordering::Relaxed)
    };

    let pairs = frontier
        .seen
        .iter()
        .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
        .sum();

    if !any_fail {
        return ProductOutcome {
            verdict: Ok(()),
            pairs,
        };
    }

    // Canonical re-walk (no safety violation exists) to the reference's
    // first progress-violating pair in discovery order.
    let walk = canonical_walk(&comp, &norm, false);
    debug_assert!(walk.violation.is_none());
    for (i, &(t, h)) in walk.pairs.iter().enumerate() {
        let offered = &tau[t as usize * words..(t as usize + 1) * words];
        let ok = norm
            .acceptance(h as usize)
            .any(|needed| bits_subset(needed, offered));
        if !ok {
            let needed = norm
                .acceptance(h as usize)
                .map(|bits| tbl.to_alphabet(bits))
                .collect();
            return ProductOutcome {
                verdict: Err(Violation::Progress {
                    trace: trace_to(&walk, tbl, i),
                    state: StateId(t),
                    needed,
                    offered: tbl.to_alphabet(offered),
                }),
                pairs,
            };
        }
    }
    unreachable!("parallel progress scan failed but canonical walk found no violating pair")
}

fn progress_scan_range(
    norm: &CompiledNormal,
    seen: &[AtomicU64],
    tau: &[u64],
    lo: u64,
    hi: u64,
) -> bool {
    let words = norm.words;
    let nh = norm.nh as u64;
    for p in lo..hi {
        if seen[(p / 64) as usize].load(Ordering::Relaxed) >> (p % 64) & 1 == 0 {
            continue;
        }
        let t = (p / nh) as usize;
        let h = (p % nh) as usize;
        let offered = &tau[t * words..(t + 1) * words];
        if !norm
            .acceptance(h)
            .any(|needed| bits_subset(needed, offered))
        {
            return true;
        }
    }
    false
}
