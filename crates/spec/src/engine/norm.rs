//! Compiled determinization of the service specification.
//!
//! The same subset construction as [`crate::normal::normalize`], but
//! hubs are hash-consed, canonically sorted `Arc<[u32]>` state sets and
//! the ψ step function is a dense `hubs × events` table instead of
//! per-hub `HashMap`s. Hub numbering is internal to the engine — the
//! verdict-relevant content per hub (acceptance sets in first-occurrence
//! order over ascending members, and the step function on state sets)
//! is identical to the reference.

use super::compiled::{set_bit, test_bit, EventTable};
use crate::sink::SinkInfo;
use crate::spec::{Spec, StateId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Sentinel for "event not accepted by this hub" in the step table.
pub(crate) const NO_HUB: u32 = u32::MAX;

/// The compiled normal form of a service specification.
pub(crate) struct CompiledNormal {
    /// Number of hubs (λ*-closed state sets).
    pub(crate) nh: usize,
    /// Number of events in the interned table.
    pub(crate) ne: usize,
    /// Bitset words per row.
    pub(crate) words: usize,
    /// Initial hub (λ*-closure of the initial state).
    pub(crate) initial: u32,
    /// Dense ψ step table, `nh × ne`, [`NO_HUB`] where undefined.
    pub(crate) step: Vec<u32>,
    /// Concatenated acceptance bitsets, `words` u64s each.
    pub(crate) acc_data: Vec<u64>,
    /// Per-hub offsets into `acc_data` in units of sets (length `nh+1`).
    pub(crate) acc_off: Vec<u32>,
    /// Hub-set interning hits during the subset construction.
    pub(crate) dedup_hits: usize,
    /// Bytes held by the step table, acceptance storage, and hub keys.
    pub(crate) arena_bytes: usize,
}

impl CompiledNormal {
    /// Acceptance bitsets of `hub`, first-occurrence order.
    pub(crate) fn acceptance(&self, hub: usize) -> impl Iterator<Item = &[u64]> {
        let lo = self.acc_off[hub] as usize;
        let hi = self.acc_off[hub + 1] as usize;
        (lo..hi).map(move |i| &self.acc_data[i * self.words..(i + 1) * self.words])
    }
}

/// Runs the subset construction over `a` against the interned event
/// table. Every event of `a`'s alphabet must be in the table.
pub(crate) fn compile_normal(a: &Spec, tbl: &EventTable) -> CompiledNormal {
    let ne = tbl.len();
    let words = tbl.words();
    let n = a.num_states();
    let sinks = SinkInfo::compute(a);

    // τ* of each sink SCC, as bits (the acceptance-set alphabet).
    let mut scc_bits: HashMap<usize, Vec<u64>> = HashMap::new();
    for s in a.states() {
        if sinks.is_sink(s) {
            scc_bits
                .entry(sinks.scc_of(s))
                .or_insert_with(|| tbl.alphabet_bits(&sinks.scc_tau(a, s)));
        }
    }

    let mut mark = vec![false; n];
    // λ*-closure of `seed`, returned sorted — the canonical hub key.
    let mut close = move |seed: &[u32], a: &Spec| -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        for &s in seed {
            if !mark[s as usize] {
                mark[s as usize] = true;
                out.push(s);
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &t in a.internal_from(StateId(s)) {
                if !mark[t.0 as usize] {
                    mark[t.0 as usize] = true;
                    out.push(t.0);
                    stack.push(t.0);
                }
            }
        }
        for &s in &out {
            mark[s as usize] = false;
        }
        out.sort_unstable();
        out
    };

    let mut intern: HashMap<Arc<[u32]>, u32> = HashMap::new();
    let mut hubs: Vec<Arc<[u32]>> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut dedup_hits = 0usize;
    let mut key_bytes = 0usize;

    let root: Arc<[u32]> = close(&[a.initial().0], a).into();
    key_bytes += root.len() * 4;
    intern.insert(root.clone(), 0);
    hubs.push(root);
    queue.push_back(0);

    let mut step: Vec<u32> = Vec::new();
    let mut acc_data: Vec<u64> = Vec::new();
    let mut acc_off: Vec<u32> = vec![0];
    let mut enabled = vec![0u64; words];
    let mut seed: Vec<u32> = Vec::new();

    // FIFO pops process hubs exactly in id order, so `step` and the
    // acceptance storage grow row by row.
    while let Some(h) = queue.pop_front() {
        let q = hubs[h as usize].clone();

        enabled.iter_mut().for_each(|w| *w = 0);
        for &s in q.iter() {
            for &(e, _) in a.external_from(StateId(s)) {
                set_bit(&mut enabled, tbl.idx(e));
            }
        }

        // Acceptance: sink SCC τ* sets over ascending members,
        // deduplicated keeping first occurrence — the reference order.
        let first_set = acc_data.len() / words;
        for &s in q.iter() {
            if sinks.is_sink(StateId(s)) {
                let bits = &scc_bits[&sinks.scc_of(StateId(s))];
                let sets_so_far = acc_data.len() / words;
                let dup = (first_set..sets_so_far)
                    .any(|i| &acc_data[i * words..(i + 1) * words] == bits.as_slice());
                if !dup {
                    acc_data.extend_from_slice(bits);
                }
            }
        }
        debug_assert!(
            acc_data.len() / words > first_set,
            "every λ*-closed set contains a sink state"
        );
        acc_off.push((acc_data.len() / words) as u32);

        for ev in 0..ne as u32 {
            if !test_bit(&enabled, ev) {
                step.push(NO_HUB);
                continue;
            }
            let e = tbl.events[ev as usize];
            seed.clear();
            for &s in q.iter() {
                for &(e2, t) in a.external_from(StateId(s)) {
                    if e2 == e {
                        seed.push(t.0);
                    }
                }
            }
            let next = close(&seed, a);
            let id = match intern.get(next.as_slice()) {
                Some(&i) => {
                    dedup_hits += 1;
                    i
                }
                None => {
                    let i = hubs.len() as u32;
                    key_bytes += next.len() * 4;
                    let key: Arc<[u32]> = next.into();
                    intern.insert(key.clone(), i);
                    hubs.push(key);
                    queue.push_back(i);
                    i
                }
            };
            step.push(id);
        }
    }

    let nh = hubs.len();
    debug_assert_eq!(step.len(), nh * ne);
    let arena_bytes = key_bytes + 4 * (step.len() + acc_off.len()) + 8 * acc_data.len();
    CompiledNormal {
        nh,
        ne,
        words,
        initial: 0,
        step,
        acc_data,
        acc_off,
        dedup_hits,
        arena_bytes,
    }
}
