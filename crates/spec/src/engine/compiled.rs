//! Compiled CSR automata: dense `u32` state ids, event-indexed edge
//! tables, and bitset alphabets over an interned event table.
//!
//! The composite of `n` components is explored **once**, directly over
//! state tuples, instead of folding pairwise [`crate::compose`] calls
//! that materialize (and re-intern) every intermediate `Spec`. The
//! expansion scan below is ordered so that both the state numbering and
//! the per-state adjacency order are *identical* to what the reference
//! left fold would produce — that is what lets the engine reproduce the
//! reference verdicts, witness traces, and violation state ids bit for
//! bit (see `tests/verify_differential.rs`).

use crate::event::{Alphabet, EventId};
use crate::spec::{Spec, StateId};
use std::collections::HashMap;

/// Interned table of an alphabet's events, sorted ascending by event
/// *name* — the single event-id assignment point shared by the verify
/// engine, the simulation engine, and the runtime wire codec.
///
/// Numeric [`EventId`]s are process-local (the interner hands them out
/// in first-use order), so two processes built from the same
/// specification would disagree on them. Table indices depend only on
/// the event names: identical alphabets yield identical index
/// assignments in every process, which is what lets a gateway and a
/// remote load generator agree on the wire encoding of each event.
pub struct EventTable {
    /// The events, ascending by name; the table index of an event is
    /// its position here.
    pub events: Vec<EventId>,
    index: HashMap<EventId, u32>,
}

impl EventTable {
    /// Builds the table for `alphabet`. Index assignment depends only
    /// on the event names, never on interner history.
    pub fn new(alphabet: &Alphabet) -> EventTable {
        let mut events: Vec<EventId> = alphabet.iter().collect();
        events.sort_by_key(|e| e.name());
        let index = events
            .iter()
            .enumerate()
            .map(|(i, &e)| (e, i as u32))
            .collect();
        EventTable { events, index }
    }

    /// Number of events in the table.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the table holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Words per bitset row (at least one so slices stay non-empty).
    pub fn words(&self) -> usize {
        self.events.len().div_ceil(64) + usize::from(self.events.is_empty())
    }

    /// The table index of `e`. Panics if `e` is not in the table.
    pub fn idx(&self, e: EventId) -> u32 {
        self.index[&e]
    }

    /// The table index of `e`, or `None` if `e` is not in the table.
    pub fn lookup(&self, e: EventId) -> Option<u32> {
        self.index.get(&e).copied()
    }

    /// The event behind table index `i`, or `None` if out of range.
    pub fn event(&self, i: u32) -> Option<EventId> {
        self.events.get(i as usize).copied()
    }

    /// Decodes a bitset row back into an [`Alphabet`].
    pub fn to_alphabet(&self, bits: &[u64]) -> Alphabet {
        let mut a = Alphabet::new();
        for (i, &e) in self.events.iter().enumerate() {
            if bits[i / 64] >> (i % 64) & 1 == 1 {
                a.insert(e);
            }
        }
        a
    }

    /// Encodes an [`Alphabet`] as a bitset row over this table.
    pub fn alphabet_bits(&self, a: &Alphabet) -> Vec<u64> {
        let mut bits = vec![0u64; self.words()];
        for e in a.iter() {
            set_bit(&mut bits, self.idx(e));
        }
        bits
    }
}

pub(crate) fn set_bit(bits: &mut [u64], i: u32) {
    bits[(i / 64) as usize] |= 1u64 << (i % 64);
}

pub(crate) fn test_bit(bits: &[u64], i: u32) -> bool {
    bits[(i / 64) as usize] >> (i % 64) & 1 == 1
}

pub(crate) fn bits_subset(sub: &[u64], sup: &[u64]) -> bool {
    sub.iter().zip(sup).all(|(&a, &b)| a & !b == 0)
}

/// The compiled composite `P_0 ‖ … ‖ P_{n-1}` in CSR form.
///
/// External edges carry event-table indices; internal edges are plain
/// successor lists. For a single component the compile is the identity
/// on state ids; for `n ≥ 2` the numbering equals the reference fold's.
pub struct CompiledComposite {
    /// Number of composite states.
    pub n: usize,
    /// Initial composite state.
    pub initial: u32,
    /// CSR row offsets into `ext_ev`/`ext_tgt` (length `n + 1`).
    pub ext_off: Vec<u32>,
    /// Event-table index per external edge, in adjacency order.
    pub ext_ev: Vec<u32>,
    /// Target state per external edge.
    pub ext_tgt: Vec<u32>,
    /// CSR row offsets into `int_tgt` (length `n + 1`).
    pub int_off: Vec<u32>,
    /// Target state per internal edge, in adjacency order.
    pub int_tgt: Vec<u32>,
    /// Tuple-interning hits during the n-way exploration.
    pub dedup_hits: usize,
    /// Bytes held by the CSR arrays and interned tuple keys.
    pub arena_bytes: usize,
    /// The state tuple behind each composite id (empty for the
    /// single-component identity compile).
    pub tuples: Vec<Box<[u32]>>,
}

impl CompiledComposite {
    /// Total edges (external + internal CSR entries).
    pub fn num_transitions(&self) -> usize {
        self.ext_ev.len() + self.int_tgt.len()
    }

    fn finish_arena(&mut self, key_bytes: usize) {
        self.arena_bytes = key_bytes
            + 4 * (self.ext_off.len()
                + self.ext_ev.len()
                + self.ext_tgt.len()
                + self.int_off.len()
                + self.int_tgt.len());
    }
}

/// Identity compile of a single component: state `i` stays state `i`
/// (including unreachable ones — the product exploration never visits
/// them), so violation state ids match the reference exactly.
pub(crate) fn build_single(b: &Spec, tbl: &EventTable) -> CompiledComposite {
    let n = b.num_states();
    let mut ext_off = Vec::with_capacity(n + 1);
    let mut int_off = Vec::with_capacity(n + 1);
    let mut ext_ev = Vec::with_capacity(b.num_external());
    let mut ext_tgt = Vec::with_capacity(b.num_external());
    let mut int_tgt = Vec::with_capacity(b.num_internal());
    ext_off.push(0);
    int_off.push(0);
    for s in b.states() {
        for &(e, t) in b.external_from(s) {
            ext_ev.push(tbl.idx(e));
            ext_tgt.push(t.0);
        }
        for &t in b.internal_from(s) {
            int_tgt.push(t.0);
        }
        ext_off.push(ext_ev.len() as u32);
        int_off.push(int_tgt.len() as u32);
    }
    let mut c = CompiledComposite {
        n,
        initial: b.initial().0,
        ext_off,
        ext_ev,
        ext_tgt,
        int_off,
        int_tgt,
        dedup_hits: 0,
        arena_bytes: 0,
        tuples: Vec::new(),
    };
    c.finish_arena(0);
    c
}

/// How one component edge participates in the composite.
#[derive(Clone, Copy)]
enum EdgeKind {
    /// Event owned by this component alone: external in the composite
    /// (payload = event-table index).
    Solo(u32),
    /// Event shared with component `other`: synchronises and hides.
    Shared(u32),
}

struct PartEdge {
    e: EventId,
    kind: EdgeKind,
    tgt: u32,
}

/// N-way reachable product exploration.
///
/// The scan order below flattens the reference left fold
/// `(…(P_0 ‖ P_1) ‖ …) ‖ P_{n-1}`: interning happens in exactly the
/// order the outermost pairwise [`crate::compose`] would intern, and
/// the per-state adjacency comes out as
///
/// * external: components ascending, solo edges in stored order;
/// * internal: synchronisations with component `n-1` first (driven by
///   the lower-indexed owner's edge order), then each inner fold
///   level's synchronisations descending, then every component's
///   internal moves ascending.
///
/// Events present in the table but shared (hence hidden) never reach
/// `ext_ev`; an event shared by more than two components must have been
/// rejected by the caller.
pub(crate) fn build_nway(parts: &[&Spec], tbl: &EventTable) -> CompiledComposite {
    let np = parts.len();
    debug_assert!(np >= 1);
    let last = np - 1;

    // Owners per event (at most two by the caller's check).
    let mut owners: HashMap<EventId, (usize, usize)> = HashMap::new();
    for (i, p) in parts.iter().enumerate() {
        for e in p.alphabet().iter() {
            owners
                .entry(e)
                .and_modify(|o| o.1 = i)
                .or_insert((i, usize::MAX));
        }
    }

    // Pre-classified edge lists, aligned with each spec's stored order.
    let part_edges: Vec<Vec<Vec<PartEdge>>> = parts
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (0..p.num_states())
                .map(|s| {
                    p.external_from(StateId(s as u32))
                        .iter()
                        .map(|&(e, t)| {
                            let (lo, hi) = owners[&e];
                            let kind = if hi == usize::MAX {
                                EdgeKind::Solo(tbl.idx(e))
                            } else {
                                EdgeKind::Shared(if lo == i { hi as u32 } else { lo as u32 })
                            };
                            PartEdge { e, kind, tgt: t.0 }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let mut intern: HashMap<Box<[u32]>, u32> = HashMap::new();
    let mut tuples: Vec<Box<[u32]>> = Vec::new();
    let mut work: Vec<u32> = Vec::new();
    let mut ext_edges: Vec<(u32, u32, u32)> = Vec::new();
    let mut int_edges: Vec<(u32, u32)> = Vec::new();
    let mut dedup_hits = 0usize;
    let mut key_bytes = 0usize;

    let root: Box<[u32]> = parts.iter().map(|p| p.initial().0).collect();
    key_bytes += root.len() * 4;
    intern.insert(root.clone(), 0);
    tuples.push(root);
    work.push(0);

    // Interns `cur` with position `i` (and optionally `j`) replaced.
    let mut reach = |cur: &[u32],
                     i: usize,
                     ti: u32,
                     j: Option<(usize, u32)>,
                     intern: &mut HashMap<Box<[u32]>, u32>,
                     tuples: &mut Vec<Box<[u32]>>,
                     work: &mut Vec<u32>|
     -> u32 {
        let mut t: Box<[u32]> = cur.into();
        t[i] = ti;
        if let Some((j, tj)) = j {
            t[j] = tj;
        }
        if let Some(&id) = intern.get(&t) {
            dedup_hits += 1;
            return id;
        }
        let id = tuples.len() as u32;
        key_bytes += t.len() * 4;
        intern.insert(t.clone(), id);
        tuples.push(t);
        work.push(id);
        id
    };

    let mut cur = vec![0u32; np];
    // LIFO pop mirrors the reference `compose` work stack, so ids are
    // assigned in the same first-reference order.
    while let Some(id) = work.pop() {
        cur.copy_from_slice(&tuples[id as usize]);
        // Phase A: the outermost fold level — solo externals and
        // synchronisations with the last component, interleaved in each
        // component's stored edge order.
        for i in 0..np {
            for pe in &part_edges[i][cur[i] as usize] {
                match pe.kind {
                    EdgeKind::Solo(ev) => {
                        let to = reach(&cur, i, pe.tgt, None, &mut intern, &mut tuples, &mut work);
                        ext_edges.push((id, ev, to));
                    }
                    EdgeKind::Shared(other) if other as usize == last && i != last => {
                        for qe in &part_edges[last][cur[last] as usize] {
                            if qe.e == pe.e {
                                let to = reach(
                                    &cur,
                                    i,
                                    pe.tgt,
                                    Some((last, qe.tgt)),
                                    &mut intern,
                                    &mut tuples,
                                    &mut work,
                                );
                                int_edges.push((id, to));
                            }
                        }
                    }
                    EdgeKind::Shared(_) => {}
                }
            }
        }
        // Phase B: inner fold levels' synchronisations, level descending.
        for k in (1..last).rev() {
            for i in 0..k {
                for pe in &part_edges[i][cur[i] as usize] {
                    if let EdgeKind::Shared(other) = pe.kind {
                        if other as usize == k {
                            for qe in &part_edges[k][cur[k] as usize] {
                                if qe.e == pe.e {
                                    let to = reach(
                                        &cur,
                                        i,
                                        pe.tgt,
                                        Some((k, qe.tgt)),
                                        &mut intern,
                                        &mut tuples,
                                        &mut work,
                                    );
                                    int_edges.push((id, to));
                                }
                            }
                        }
                    }
                }
            }
        }
        // Phase C: internal moves of every component, ascending.
        for (i, p) in parts.iter().enumerate() {
            for &t in p.internal_from(StateId(cur[i])) {
                let to = reach(&cur, i, t.0, None, &mut intern, &mut tuples, &mut work);
                int_edges.push((id, to));
            }
        }
    }

    let n = tuples.len();
    let (ext_off, ext_ev, ext_tgt) = csr_ext(n, &ext_edges);
    let (int_off, int_tgt) = csr_int(n, &int_edges);
    let mut c = CompiledComposite {
        n,
        initial: 0,
        ext_off,
        ext_ev,
        ext_tgt,
        int_off,
        int_tgt,
        dedup_hits,
        arena_bytes: 0,
        tuples,
    };
    c.finish_arena(key_bytes);
    c
}

/// Stable counting sort of `(from, ev, tgt)` edges into CSR rows.
fn csr_ext(n: usize, edges: &[(u32, u32, u32)]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n + 1];
    for &(f, _, _) in edges {
        off[f as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut ev = vec![0u32; edges.len()];
    let mut tgt = vec![0u32; edges.len()];
    let mut cursor: Vec<u32> = off.clone();
    for &(f, e, t) in edges {
        let p = cursor[f as usize] as usize;
        ev[p] = e;
        tgt[p] = t;
        cursor[f as usize] += 1;
    }
    (off, ev, tgt)
}

fn csr_int(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n + 1];
    for &(f, _) in edges {
        off[f as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut tgt = vec![0u32; edges.len()];
    let mut cursor: Vec<u32> = off.clone();
    for &(f, t) in edges {
        let p = cursor[f as usize] as usize;
        tgt[p] = t;
        cursor[f as usize] += 1;
    }
    (off, tgt)
}

/// `τ*` rows for every composite state: the externally offered events
/// after any number of internal moves, as bitsets over the event table.
///
/// One iterative Tarjan pass over the internal graph, then a reverse
/// topological DP over the SCC DAG — linear in the composite instead of
/// the reference's per-state DFS.
pub fn tau_star_rows(comp: &CompiledComposite, words: usize) -> Vec<u64> {
    let n = comp.n;
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut frames: Vec<(u32, u32)> = Vec::new();
    let mut scc_members: Vec<Vec<u32>> = Vec::new();
    let mut next_index = 0u32;

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            let s = v as usize;
            let begin = comp.int_off[s] as usize;
            let end = comp.int_off[s + 1] as usize;
            if (frame.1 as usize) < end - begin {
                let w = comp.int_tgt[begin + frame.1 as usize];
                frame.1 += 1;
                let ws = w as usize;
                if index[ws] == UNVISITED {
                    index[ws] = next_index;
                    low[ws] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[ws] = true;
                    frames.push((w, 0));
                } else if on_stack[ws] {
                    low[s] = low[s].min(index[ws]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0 as usize;
                    low[p] = low[p].min(low[s]);
                }
                if low[s] == index[s] {
                    let scc = scc_members.len() as u32;
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = scc;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc_members.push(members);
                }
            }
        }
    }

    // SCCs complete successors-first, so a single ascending pass is the
    // reverse topological DP.
    let nscc = scc_members.len();
    let mut scc_bits = vec![0u64; nscc * words];
    let mut acc = vec![0u64; words];
    for ci in 0..nscc {
        acc.iter_mut().for_each(|w| *w = 0);
        for &s in &scc_members[ci] {
            let su = s as usize;
            for k in comp.ext_off[su] as usize..comp.ext_off[su + 1] as usize {
                set_bit(&mut acc, comp.ext_ev[k]);
            }
            for k in comp.int_off[su] as usize..comp.int_off[su + 1] as usize {
                let cj = scc_of[comp.int_tgt[k] as usize] as usize;
                if cj != ci {
                    debug_assert!(cj < ci, "successor SCC must complete first");
                    for w in 0..words {
                        acc[w] |= scc_bits[cj * words + w];
                    }
                }
            }
        }
        scc_bits[ci * words..(ci + 1) * words].copy_from_slice(&acc);
    }

    let mut rows = vec![0u64; n * words];
    for s in 0..n {
        let ci = scc_of[s] as usize;
        rows[s * words..(s + 1) * words].copy_from_slice(&scc_bits[ci * words..(ci + 1) * words]);
    }
    rows
}
