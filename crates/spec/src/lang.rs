//! Trace-language operations: determinization, language equality, and
//! exhaustive safety diagnostics.
//!
//! The satisfaction checker ([`crate::satisfy`]) stops at the *first*
//! violation; [`all_minimal_violations`] instead enumerates **every**
//! distinct way an implementation can first step outside a service —
//! one shortest witness per `(implementation state, service state,
//! event)` triple — which is what you want when repairing a protocol
//! rather than just rejecting it.

use crate::event::EventId;
use crate::normal::{normalize, NormalSpec};
use crate::spec::{spec_from_parts, Spec, StateId};
use crate::trace::Trace;
use std::collections::{HashMap, VecDeque};

/// Subset-construction determinization: returns a deterministic,
/// internal-free specification with exactly the same trace set.
///
/// (Unlike [`normalize`], which preserves the progress semantics with
/// hub/leaf structure, this flattens to pure trace semantics — use it
/// for display, comparison and language algebra.)
///
/// ```
/// use protoquot_spec::{determinize, language_equal, SpecBuilder};
/// let mut b = SpecBuilder::new("nd");
/// let s0 = b.state("s0");
/// let p = b.state("p");
/// let q = b.state("q");
/// b.ext(s0, "e", p);
/// b.ext(s0, "e", q); // nondeterministic on e
/// b.ext(p, "x", s0);
/// b.ext(q, "y", s0);
/// let nd = b.build().unwrap();
/// let d = determinize(&nd);
/// assert!(d.is_deterministic());
/// assert!(language_equal(&nd, &d));
/// ```
pub fn determinize(spec: &Spec) -> Spec {
    let na = normalize(spec);
    // The hubs of the normal form *are* the subset-construction states;
    // connect them directly with the ψ-step function.
    let names: Vec<String> = (0..na.num_hubs()).map(|h| format!("q{h}")).collect();
    let mut ext = Vec::new();
    for h in 0..na.num_hubs() {
        for e in na.tau_star(h).iter() {
            let t = na.step(h, e).expect("τ* events always step");
            ext.push((StateId(h as u32), e, StateId(t as u32)));
        }
    }
    spec_from_parts(
        format!("{}/det", spec.name()),
        spec.alphabet().clone(),
        names,
        StateId(na.initial_hub() as u32),
        ext,
        Vec::new(),
    )
    .expect("determinization preserves validity")
}

/// True iff the two specifications have the same trace set (mutual
/// safety inclusion). Interfaces must match.
pub fn language_equal(a: &Spec, b: &Spec) -> bool {
    matches!(crate::satisfy::satisfies_safety(a, b), Ok(Ok(())))
        && matches!(crate::satisfy::satisfies_safety(b, a), Ok(Ok(())))
}

/// One way `b` can first violate `a`: after `prefix` (a trace of both),
/// `b` enables `event` but `a` does not.
#[derive(Clone, Debug)]
pub struct MinimalViolation {
    /// The common prefix.
    pub prefix: Trace,
    /// The offending next event.
    pub event: EventId,
    /// The implementation state enabling it.
    pub b_state: StateId,
}

impl MinimalViolation {
    /// The full violating trace (prefix plus the offending event).
    pub fn trace(&self) -> Trace {
        let mut t = self.prefix.clone();
        t.push(self.event);
        t
    }
}

/// Enumerates every distinct minimal violation of `a` by `b`: a BFS
/// over the `(b state, ψ_A hub)` product, reporting — with a shortest
/// prefix — each `(b state, hub, event)` at which `b` can step outside
/// `a`. Empty iff `b` satisfies `a` w.r.t. safety.
pub fn all_minimal_violations(b: &Spec, a: &Spec) -> Vec<MinimalViolation> {
    let na: NormalSpec = normalize(a);
    let mut index: HashMap<(StateId, usize), usize> = HashMap::new();
    let mut parents: Vec<Option<(usize, Option<EventId>)>> = Vec::new();
    let mut pairs: Vec<(StateId, usize)> = Vec::new();
    let mut queue = VecDeque::new();

    let start = (b.initial(), na.initial_hub());
    index.insert(start, 0);
    pairs.push(start);
    parents.push(None);
    queue.push_back(0usize);

    let mut violations = Vec::new();
    while let Some(i) = queue.pop_front() {
        let (bs, hub) = pairs[i];
        for &t in b.internal_from(bs) {
            let key = (t, hub);
            if let std::collections::hash_map::Entry::Vacant(v) = index.entry(key) {
                let id = pairs.len();
                v.insert(id);
                pairs.push(key);
                parents.push(Some((i, None)));
                queue.push_back(id);
            }
        }
        let mut reported: Vec<EventId> = Vec::new();
        for &(e, t) in b.external_from(bs) {
            match na.step(hub, e) {
                Some(hub2) => {
                    let key = (t, hub2);
                    if let std::collections::hash_map::Entry::Vacant(v) = index.entry(key) {
                        let id = pairs.len();
                        v.insert(id);
                        pairs.push(key);
                        parents.push(Some((i, Some(e))));
                        queue.push_back(id);
                    }
                }
                None => {
                    if !reported.contains(&e) {
                        reported.push(e);
                        violations.push(MinimalViolation {
                            prefix: trace_to(&parents, i),
                            event: e,
                            b_state: bs,
                        });
                    }
                }
            }
        }
    }
    violations
}

fn trace_to(parents: &[Option<(usize, Option<EventId>)>], mut i: usize) -> Trace {
    let mut rev = Vec::new();
    while let Some((p, e)) = parents[i] {
        if let Some(e) = e {
            rev.push(e);
        }
        i = p;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;
    use crate::trace::{has_trace, trace_of, traces_up_to};

    fn nondet() -> Spec {
        let mut b = SpecBuilder::new("nd");
        let s0 = b.state("s0");
        let p = b.state("p");
        let q = b.state("q");
        let r = b.state("r");
        b.ext(s0, "e", p);
        b.ext(s0, "e", q);
        b.int(q, r);
        b.ext(p, "x", s0);
        b.ext(r, "y", s0);
        b.build().unwrap()
    }

    #[test]
    fn determinize_flattens_and_preserves_traces() {
        let nd = nondet();
        let d = determinize(&nd);
        assert!(d.is_deterministic());
        let t1: std::collections::HashSet<_> = traces_up_to(&nd, 4).into_iter().collect();
        let t2: std::collections::HashSet<_> = traces_up_to(&d, 4).into_iter().collect();
        assert_eq!(t1, t2);
        assert!(language_equal(&nd, &d));
    }

    #[test]
    fn language_equal_discriminates() {
        let nd = nondet();
        let mut b = SpecBuilder::new("smaller");
        let s0 = b.state("s0");
        let p = b.state("p");
        b.ext(s0, "e", p);
        b.ext(p, "x", s0);
        b.event("y");
        let smaller = b.build().unwrap();
        assert!(!language_equal(&nd, &smaller));
        assert!(matches!(
            crate::satisfy::satisfies_safety(&smaller, &nd),
            Ok(Ok(()))
        ));
    }

    #[test]
    fn no_violations_when_satisfied() {
        let nd = nondet();
        assert!(all_minimal_violations(&nd, &nd).is_empty());
    }

    #[test]
    fn all_first_escapes_enumerated() {
        // Service: (a b)*; impl can do a, then b or the illegal c, and
        // from the post-b state the illegal d.
        let mut sb = SpecBuilder::new("srv");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "a", u1);
        sb.ext(u1, "b", u0);
        sb.event("c");
        sb.event("d");
        let srv = sb.build().unwrap();

        let mut ib = SpecBuilder::new("imp");
        let s0 = ib.state("s0");
        let s1 = ib.state("s1");
        ib.ext(s0, "a", s1);
        ib.ext(s1, "b", s0);
        ib.ext(s1, "c", s0); // violation after "a"
        ib.ext(s0, "d", s0); // violation at start and after "a b"
        let imp = ib.build().unwrap();

        let vs = all_minimal_violations(&imp, &srv);
        let rendered: std::collections::HashSet<String> = vs
            .iter()
            .map(|v| crate::trace::trace_string(&v.trace()))
            .collect();
        assert!(rendered.contains("d"), "{rendered:?}");
        assert!(rendered.contains("a.c"), "{rendered:?}");
        // Each is genuinely minimal: the prefix is a trace of both.
        for v in &vs {
            assert!(has_trace(&imp, &v.prefix));
            assert!(has_trace(&srv, &v.prefix));
            assert!(!has_trace(&srv, &v.trace()));
        }
    }

    #[test]
    fn bfs_yields_shortest_prefixes() {
        // The violation is reachable both directly and via a detour;
        // BFS must report the short one.
        let mut sb = SpecBuilder::new("srv");
        let u0 = sb.state("u0");
        sb.ext(u0, "a", u0);
        sb.event("z");
        let srv = sb.build().unwrap();
        let mut ib = SpecBuilder::new("imp");
        let s0 = ib.state("s0");
        let s1 = ib.state("s1");
        ib.ext(s0, "a", s1);
        ib.ext(s1, "a", s1);
        ib.ext(s1, "z", s0);
        let imp = ib.build().unwrap();
        let vs = all_minimal_violations(&imp, &srv);
        assert_eq!(vs.len(), 1);
        assert_eq!(trace_of(&["a", "z"]), vs[0].trace());
    }

    #[test]
    fn deterministic_input_is_fixed_point_of_determinize() {
        let mut b = SpecBuilder::new("d");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "x", s1);
        b.ext(s1, "y", s0);
        let d = b.build().unwrap();
        let dd = determinize(&d);
        assert_eq!(dd.num_states(), d.num_states());
        assert!(crate::minimize::bisimilar(&d, &dd));
    }
}
