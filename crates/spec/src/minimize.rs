//! Strong bisimulation: minimization and equivalence checking.
//!
//! Used to compare algorithm outputs against expected machines modulo
//! state naming — the paper's figures are concrete graphs, and two
//! derivations of the "same" converter should be bisimilar even if the
//! construction numbered states differently.
//!
//! Internal transitions are treated as a distinguished label (strong
//! bisimulation). This is finer than trace or testing equivalence, which
//! is what we want when checking structural claims.

use crate::event::EventId;
use crate::spec::{spec_from_parts, Spec, StateId};
use std::collections::{BTreeSet, HashMap};

/// Computes the coarsest strong-bisimulation partition of the states.
/// Returns the block id of every state.
/// A state's refinement signature: its current block plus the set of
/// `(label, target block)` pairs (`None` = internal transition).
type Signature = (usize, BTreeSet<(Option<EventId>, usize)>);

fn partition(spec: &Spec) -> Vec<usize> {
    let n = spec.num_states();
    let mut block = vec![0usize; n];
    let mut num_blocks = 1usize;
    loop {
        let mut sig_index: HashMap<Signature, usize> = HashMap::new();
        let mut next_block = vec![0usize; n];
        let mut next_count = 0usize;
        for s in 0..n {
            let sid = StateId(s as u32);
            let mut sig: BTreeSet<(Option<EventId>, usize)> = BTreeSet::new();
            for &(e, t) in spec.external_from(sid) {
                sig.insert((Some(e), block[t.index()]));
            }
            for &t in spec.internal_from(sid) {
                sig.insert((None, block[t.index()]));
            }
            let key = (block[s], sig);
            let id = *sig_index.entry(key).or_insert_with(|| {
                let id = next_count;
                next_count += 1;
                id
            });
            next_block[s] = id;
        }
        if next_count == num_blocks {
            return next_block;
        }
        block = next_block;
        num_blocks = next_count;
    }
}

/// Quotients the specification by strong bisimulation.
///
/// ```
/// use protoquot_spec::{minimize, bisimilar, SpecBuilder};
/// // A 4-state unrolling of a 2-state loop.
/// let mut b = SpecBuilder::new("unrolled");
/// let s: Vec<_> = (0..4).map(|i| b.state(&format!("s{i}"))).collect();
/// for i in 0..4 {
///     b.ext(s[i], if i % 2 == 0 { "e" } else { "f" }, s[(i + 1) % 4]);
/// }
/// let big = b.build().unwrap();
/// let small = minimize(&big);
/// assert_eq!(small.num_states(), 2);
/// assert!(bisimilar(&big, &small));
/// ```
pub fn minimize(spec: &Spec) -> Spec {
    let block = partition(spec);
    let num_blocks = block.iter().max().map(|m| m + 1).unwrap_or(0);
    // Representative (first) state per block for naming.
    let mut names = vec![String::new(); num_blocks];
    for s in spec.states() {
        let b = block[s.index()];
        if names[b].is_empty() {
            names[b] = spec.state_name(s).to_owned();
        }
    }
    let mut ext: Vec<(StateId, EventId, StateId)> = Vec::new();
    let mut int: Vec<(StateId, StateId)> = Vec::new();
    for s in spec.states() {
        let from = StateId(block[s.index()] as u32);
        for &(e, t) in spec.external_from(s) {
            ext.push((from, e, StateId(block[t.index()] as u32)));
        }
        for &t in spec.internal_from(s) {
            int.push((from, StateId(block[t.index()] as u32)));
        }
    }
    let min = spec_from_parts(
        format!("{}/min", spec.name()),
        spec.alphabet().clone(),
        names,
        StateId(block[spec.initial().index()] as u32),
        ext,
        int,
    )
    .expect("minimization preserves validity");
    crate::graph::prune_unreachable(&min)
}

/// True iff the two specifications have equal alphabets and bisimilar
/// initial states.
pub fn bisimilar(a: &Spec, b: &Spec) -> bool {
    if a.alphabet() != b.alphabet() {
        return false;
    }
    // Disjoint union, then one partition refinement.
    let offset = a.num_states() as u32;
    let mut names: Vec<String> = Vec::new();
    for s in a.states() {
        names.push(format!("L:{}", a.state_name(s)));
    }
    for s in b.states() {
        names.push(format!("R:{}", b.state_name(s)));
    }
    let mut ext = Vec::new();
    let mut int = Vec::new();
    for (s, e, t) in a.external_transitions() {
        ext.push((s, e, t));
    }
    for (s, t) in a.internal_transitions() {
        int.push((s, t));
    }
    for (s, e, t) in b.external_transitions() {
        ext.push((StateId(s.0 + offset), e, StateId(t.0 + offset)));
    }
    for (s, t) in b.internal_transitions() {
        int.push((StateId(s.0 + offset), StateId(t.0 + offset)));
    }
    let union = spec_from_parts(
        "union".to_owned(),
        a.alphabet().union(b.alphabet()),
        names,
        StateId(0),
        ext,
        int,
    )
    .expect("union is valid");
    let block = partition(&union);
    block[a.initial().index()] == block[(b.initial().0 + offset) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn two_state_loop(name: &str) -> Spec {
        let mut b = SpecBuilder::new(name);
        let x = b.state("x");
        let y = b.state("y");
        b.ext(x, "e", y);
        b.ext(y, "f", x);
        b.build().unwrap()
    }

    #[test]
    fn identical_machines_are_bisimilar() {
        let a = two_state_loop("a");
        let b = two_state_loop("b");
        assert!(bisimilar(&a, &b));
    }

    #[test]
    fn unrolled_loop_minimizes_back() {
        // x -e-> y -f-> x2 -e-> y2 -f-> x : a 4-state unrolling of the
        // 2-state loop.
        let mut b = SpecBuilder::new("unrolled");
        let x = b.state("x");
        let y = b.state("y");
        let x2 = b.state("x2");
        let y2 = b.state("y2");
        b.ext(x, "e", y);
        b.ext(y, "f", x2);
        b.ext(x2, "e", y2);
        b.ext(y2, "f", x);
        let big = b.build().unwrap();
        let small = minimize(&big);
        assert_eq!(small.num_states(), 2);
        assert!(bisimilar(&big, &small));
        assert!(bisimilar(&big, &two_state_loop("ref")));
    }

    #[test]
    fn different_behaviour_not_bisimilar() {
        let a = two_state_loop("a");
        let mut b = SpecBuilder::new("b");
        let x = b.state("x");
        let y = b.state("y");
        b.ext(x, "e", y);
        b.ext(y, "e", x); // f replaced by e
        b.event("f");
        let other = b.build().unwrap();
        assert!(!bisimilar(&a, &other));
    }

    #[test]
    fn alphabet_mismatch_not_bisimilar() {
        let a = two_state_loop("a");
        let mut bb = SpecBuilder::new("b");
        let x = bb.state("x");
        let y = bb.state("y");
        bb.ext(x, "e", y);
        bb.ext(y, "f", x);
        bb.event("extra");
        let b = bb.build().unwrap();
        assert!(!bisimilar(&a, &b));
    }

    #[test]
    fn internal_transitions_distinguish_strongly() {
        // x -e-> y  vs  x ~> m -e-> y : trace-equivalent but not strongly
        // bisimilar.
        let mut b1 = SpecBuilder::new("direct");
        let x = b1.state("x");
        let y = b1.state("y");
        b1.ext(x, "e", y);
        let direct = b1.build().unwrap();
        let mut b2 = SpecBuilder::new("stutter");
        let x = b2.state("x");
        let m = b2.state("m");
        let y = b2.state("y");
        b2.int(x, m);
        b2.ext(m, "e", y);
        let stutter = b2.build().unwrap();
        assert!(!bisimilar(&direct, &stutter));
    }

    #[test]
    fn minimize_merges_duplicate_deadends() {
        let mut b = SpecBuilder::new("dup");
        let s = b.state("s");
        let d1 = b.state("d1");
        let d2 = b.state("d2");
        b.ext(s, "e", d1);
        b.ext(s, "e", d2);
        let spec = b.build().unwrap();
        let m = minimize(&spec);
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.num_external(), 1);
    }

    #[test]
    fn minimize_is_idempotent() {
        let a = two_state_loop("a");
        let m1 = minimize(&a);
        let m2 = minimize(&m1);
        assert_eq!(m1.num_states(), m2.num_states());
        assert!(bisimilar(&m1, &m2));
    }
}
