//! The specification tuple (S, Σ, T, λ, s0) of the paper's §3.
//!
//! A [`Spec`] is a finite set of states, a finite alphabet of events, an
//! *external* transition relation `T ⊆ S × Σ × S` (edges labelled with an
//! interface event) and an *internal* transition relation `λ ⊆ S × S`
//! (unlabelled edges that can fire without environmental cooperation),
//! plus a distinguished initial state.

use crate::error::SpecError;
use crate::event::{Alphabet, EventId};
use std::collections::HashMap;
use std::fmt;

/// Index of a state within one [`Spec`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A finite-state specification per §3 of the paper.
///
/// Construct one with [`SpecBuilder`]. The adjacency of both transition
/// relations is indexed per-state for fast traversal.
#[derive(Clone, PartialEq, Eq)]
pub struct Spec {
    name: String,
    alphabet: Alphabet,
    state_names: Vec<String>,
    initial: StateId,
    /// Per-state outgoing external transitions, `(event, target)`.
    ext: Vec<Vec<(EventId, StateId)>>,
    /// Per-state outgoing internal transitions.
    int: Vec<Vec<StateId>>,
}

impl Spec {
    /// Human-readable name of the specification.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interface Σ. Note that Σ may include events with no
    /// transitions — the alphabet defines the interface, not the
    /// behaviour, and the composition operator keys off it.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states |S|.
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Number of external transitions |T|.
    pub fn num_external(&self) -> usize {
        self.ext.iter().map(Vec::len).sum()
    }

    /// Number of internal transitions |λ|.
    pub fn num_internal(&self) -> usize {
        self.int.iter().map(Vec::len).sum()
    }

    /// The initial state s0.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Iterator over all states.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_names.len() as u32).map(StateId)
    }

    /// The label of a state.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.state_names[s.index()]
    }

    /// Looks a state up by label.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId(i as u32))
    }

    /// Outgoing external transitions of `s` as `(event, target)` pairs.
    pub fn external_from(&self, s: StateId) -> &[(EventId, StateId)] {
        &self.ext[s.index()]
    }

    /// Outgoing internal transitions of `s`.
    pub fn internal_from(&self, s: StateId) -> &[StateId] {
        &self.int[s.index()]
    }

    /// All targets of `s --e--> _` (the relation may be nondeterministic).
    pub fn ext_successors(&self, s: StateId, e: EventId) -> impl Iterator<Item = StateId> + '_ {
        self.ext[s.index()]
            .iter()
            .filter(move |(ev, _)| *ev == e)
            .map(|&(_, t)| t)
    }

    /// True iff `s --e--> s'` for some `s'` — "`e` is enabled in `s`".
    pub fn enables(&self, s: StateId, e: EventId) -> bool {
        self.ext[s.index()].iter().any(|&(ev, _)| ev == e)
    }

    /// τ.s — the set of external events enabled in `s` (paper §3).
    pub fn tau(&self, s: StateId) -> Alphabet {
        self.ext[s.index()].iter().map(|&(e, _)| e).collect()
    }

    /// Iterator over every external transition `(source, event, target)`.
    pub fn external_transitions(&self) -> impl Iterator<Item = (StateId, EventId, StateId)> + '_ {
        self.ext
            .iter()
            .enumerate()
            .flat_map(|(s, edges)| edges.iter().map(move |&(e, t)| (StateId(s as u32), e, t)))
    }

    /// Iterator over every internal transition `(source, target)`.
    pub fn internal_transitions(&self) -> impl Iterator<Item = (StateId, StateId)> + '_ {
        self.int
            .iter()
            .enumerate()
            .flat_map(|(s, targets)| targets.iter().map(move |&t| (StateId(s as u32), t)))
    }

    /// True iff the spec has no internal transitions at all (e.g. the
    /// converters produced by the quotient algorithm: λ_C0 = ∅).
    pub fn is_internal_free(&self) -> bool {
        self.int.iter().all(Vec::is_empty)
    }

    /// True iff every state has at most one successor per event and there
    /// are no internal transitions.
    pub fn is_deterministic(&self) -> bool {
        if !self.is_internal_free() {
            return false;
        }
        self.ext.iter().all(|edges| {
            let mut seen = std::collections::HashSet::new();
            edges.iter().all(|&(e, _)| seen.insert(e))
        })
    }

    /// Renames the specification (returns self for chaining).
    pub fn with_name(mut self, name: &str) -> Spec {
        self.name = name.to_owned();
        self
    }

    /// Returns a copy whose alphabet additionally contains `extra`.
    /// Useful to align interfaces before a satisfaction check.
    pub fn with_alphabet_extended(mut self, extra: &Alphabet) -> Spec {
        self.alphabet = self.alphabet.union(extra);
        self
    }

    /// Returns a copy with every occurrence of event `from` relabelled to
    /// `to`, in both the alphabet and the transitions. `to` must not
    /// already be in the alphabet.
    pub fn rename_event(&self, from: EventId, to: EventId) -> Result<Spec, SpecError> {
        if !self.alphabet.contains(from) {
            return Err(SpecError::UnknownEvent(from.name()));
        }
        if self.alphabet.contains(to) {
            return Err(SpecError::DuplicateEvent(to.name()));
        }
        let mut out = self.clone();
        out.alphabet.remove(from);
        out.alphabet.insert(to);
        for edges in &mut out.ext {
            for (e, _) in edges.iter_mut() {
                if *e == from {
                    *e = to;
                }
            }
        }
        Ok(out)
    }

    /// A one-line summary: name, |S|, |T|, |λ|, Σ.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} states, {} external, {} internal, alphabet {}",
            self.name,
            self.num_states(),
            self.num_external(),
            self.num_internal(),
            self.alphabet
        )
    }
}

impl fmt::Debug for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "spec {} (initial {}) {{",
            self.name,
            self.state_name(self.initial)
        )?;
        for s in self.states() {
            for &(e, t) in self.external_from(s) {
                writeln!(
                    f,
                    "  {} --{}--> {}",
                    self.state_name(s),
                    e,
                    self.state_name(t)
                )?;
            }
            for &t in self.internal_from(s) {
                writeln!(f, "  {} ~~~> {}", self.state_name(s), self.state_name(t))?;
            }
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Spec`].
///
/// ```
/// use protoquot_spec::SpecBuilder;
/// let mut b = SpecBuilder::new("toggle");
/// let on = b.state("on");
/// let off = b.state("off");
/// b.ext(on, "flip", off);
/// b.ext(off, "flip", on);
/// let spec = b.build().unwrap();
/// assert_eq!(spec.num_states(), 2);
/// ```
pub struct SpecBuilder {
    name: String,
    alphabet: Alphabet,
    state_names: Vec<String>,
    state_index: HashMap<String, StateId>,
    initial: Option<StateId>,
    ext: Vec<(StateId, EventId, StateId)>,
    int: Vec<(StateId, StateId)>,
}

impl SpecBuilder {
    /// Starts a new builder for a spec called `name`.
    pub fn new(name: &str) -> SpecBuilder {
        SpecBuilder {
            name: name.to_owned(),
            alphabet: Alphabet::new(),
            state_names: Vec::new(),
            state_index: HashMap::new(),
            initial: None,
            ext: Vec::new(),
            int: Vec::new(),
        }
    }

    /// Declares (or looks up) a state by label. The first state declared
    /// becomes the initial state unless [`initial`](Self::initial) is
    /// called.
    pub fn state(&mut self, label: &str) -> StateId {
        if let Some(&id) = self.state_index.get(label) {
            return id;
        }
        let id = StateId(self.state_names.len() as u32);
        self.state_names.push(label.to_owned());
        self.state_index.insert(label.to_owned(), id);
        id
    }

    /// Declares an event as part of the interface without adding a
    /// transition.
    pub fn event(&mut self, name: &str) -> EventId {
        let e = EventId::new(name);
        self.alphabet.insert(e);
        e
    }

    /// Adds an external transition `from --event--> to`. The event is
    /// added to the alphabet automatically.
    pub fn ext(&mut self, from: StateId, event: &str, to: StateId) -> &mut Self {
        let e = self.event(event);
        self.ext.push((from, e, to));
        self
    }

    /// Adds an external transition with an already-interned event id.
    pub fn ext_id(&mut self, from: StateId, event: EventId, to: StateId) -> &mut Self {
        self.alphabet.insert(event);
        self.ext.push((from, event, to));
        self
    }

    /// Adds an internal transition `from ~~> to`.
    pub fn int(&mut self, from: StateId, to: StateId) -> &mut Self {
        self.int.push((from, to));
        self
    }

    /// Sets the initial state (default: first state declared).
    pub fn initial(&mut self, s: StateId) -> &mut Self {
        self.initial = Some(s);
        self
    }

    /// Finishes construction, validating the specification.
    pub fn build(self) -> Result<Spec, SpecError> {
        if self.state_names.is_empty() {
            return Err(SpecError::NoStates(self.name));
        }
        let n = self.state_names.len();
        let initial = self.initial.unwrap_or(StateId(0));
        if initial.index() >= n {
            return Err(SpecError::InvalidState(initial.index()));
        }
        let mut ext: Vec<Vec<(EventId, StateId)>> = vec![Vec::new(); n];
        for (s, e, t) in self.ext {
            if s.index() >= n {
                return Err(SpecError::InvalidState(s.index()));
            }
            if t.index() >= n {
                return Err(SpecError::InvalidState(t.index()));
            }
            if !ext[s.index()].contains(&(e, t)) {
                ext[s.index()].push((e, t));
            }
        }
        let mut int: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for (s, t) in self.int {
            if s.index() >= n {
                return Err(SpecError::InvalidState(s.index()));
            }
            if t.index() >= n {
                return Err(SpecError::InvalidState(t.index()));
            }
            if !int[s.index()].contains(&t) {
                int[s.index()].push(t);
            }
        }
        Ok(Spec {
            name: self.name,
            alphabet: self.alphabet,
            state_names: self.state_names,
            initial,
            ext,
            int,
        })
    }
}

/// Low-level constructor used by algorithms that synthesise specs whole
/// (composition, normalization, the quotient). Performs the same
/// validation as [`SpecBuilder::build`].
pub fn spec_from_parts(
    name: String,
    alphabet: Alphabet,
    state_names: Vec<String>,
    initial: StateId,
    external: Vec<(StateId, EventId, StateId)>,
    internal: Vec<(StateId, StateId)>,
) -> Result<Spec, SpecError> {
    let mut b = SpecBuilder::new(&name);
    for label in &state_names {
        // Synthesised state labels may repeat textually; disambiguate by
        // index so lookups still work on the primary occurrence.
        if b.state_index.contains_key(label) {
            let fresh = format!("{label}#{}", b.state_names.len());
            b.state(&fresh);
        } else {
            b.state(label);
        }
    }
    b.alphabet = alphabet;
    b.initial = Some(initial);
    b.ext = external;
    b.int = internal;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> Spec {
        let mut b = SpecBuilder::new("toggle");
        let on = b.state("on");
        let off = b.state("off");
        b.ext(on, "flip", off);
        b.ext(off, "flip", on);
        b.build().unwrap()
    }

    #[test]
    fn builder_basics() {
        let s = toggle();
        assert_eq!(s.name(), "toggle");
        assert_eq!(s.num_states(), 2);
        assert_eq!(s.num_external(), 2);
        assert_eq!(s.num_internal(), 0);
        assert_eq!(s.initial(), StateId(0));
        assert!(s.is_internal_free());
        assert!(s.is_deterministic());
    }

    #[test]
    fn state_lookup_roundtrip() {
        let s = toggle();
        let on = s.state_by_name("on").unwrap();
        assert_eq!(s.state_name(on), "on");
        assert!(s.state_by_name("nonexistent").is_none());
    }

    #[test]
    fn enables_and_tau() {
        let s = toggle();
        let flip = EventId::new("flip");
        let on = s.state_by_name("on").unwrap();
        assert!(s.enables(on, flip));
        assert!(!s.enables(on, EventId::new("other")));
        assert_eq!(s.tau(on), Alphabet::from_names(["flip"]));
    }

    #[test]
    fn duplicate_transitions_are_deduped() {
        let mut b = SpecBuilder::new("d");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "e", c);
        b.ext(a, "e", c);
        b.int(a, c);
        b.int(a, c);
        let s = b.build().unwrap();
        assert_eq!(s.num_external(), 1);
        assert_eq!(s.num_internal(), 1);
    }

    #[test]
    fn empty_spec_is_error() {
        assert!(matches!(
            SpecBuilder::new("nil").build(),
            Err(SpecError::NoStates(_))
        ));
    }

    #[test]
    fn nondeterministic_spec_detected() {
        let mut b = SpecBuilder::new("nd");
        let a = b.state("a");
        let c = b.state("c");
        let d = b.state("d");
        b.ext(a, "e", c);
        b.ext(a, "e", d);
        let s = b.build().unwrap();
        assert!(!s.is_deterministic());
        assert!(s.is_internal_free());
        let e = EventId::new("e");
        let succ: Vec<_> = s.ext_successors(a, e).collect();
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn internal_transitions_make_nondeterministic() {
        let mut b = SpecBuilder::new("i");
        let a = b.state("a");
        let c = b.state("c");
        b.int(a, c);
        let s = b.build().unwrap();
        assert!(!s.is_deterministic());
        assert!(!s.is_internal_free());
    }

    #[test]
    fn rename_event() {
        let s = toggle();
        let flip = EventId::new("flip");
        let flop = EventId::new("flop");
        let r = s.rename_event(flip, flop).unwrap();
        assert!(r.alphabet().contains(flop));
        assert!(!r.alphabet().contains(flip));
        let on = r.state_by_name("on").unwrap();
        assert!(r.enables(on, flop));
        // Renaming to an existing event or from a missing one fails.
        assert!(s.rename_event(EventId::new("missing"), flop).is_err());
        let two = {
            let mut b = SpecBuilder::new("two");
            let a = b.state("a");
            b.ext(a, "x", a);
            b.ext(a, "y", a);
            b.build().unwrap()
        };
        assert!(two
            .rename_event(EventId::new("x"), EventId::new("y"))
            .is_err());
    }

    #[test]
    fn declared_event_without_transition_is_in_alphabet() {
        let mut b = SpecBuilder::new("iface");
        b.state("only");
        b.event("phantom");
        let s = b.build().unwrap();
        assert!(s.alphabet().contains(EventId::new("phantom")));
        assert_eq!(s.num_external(), 0);
    }

    #[test]
    fn invalid_initial_state_rejected() {
        let mut b = SpecBuilder::new("bad");
        b.state("a");
        b.initial(StateId(5));
        assert!(matches!(b.build(), Err(SpecError::InvalidState(5))));
    }
}
