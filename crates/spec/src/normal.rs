//! Normal form for service specifications (§3) and the ψ tracker.
//!
//! The satisfaction definition and the quotient algorithm require the
//! service specification A to be in *normal form*:
//!
//! 1. no state has both internal and external outgoing transitions;
//! 2. the internal graph is acyclic (`s λ* s' ∧ s' λ* s ⇒ s = s'`);
//! 3. all same-event successors of states internally reachable from a
//!    common state coincide.
//!
//! In a normal-form spec, every trace `t` determines a unique state
//! `ψ_A.t` such that the states reachable by `t` are exactly the
//! λ*-successors of `ψ_A.t`.
//!
//! [`normalize`] converts **any** specification into normal form while
//! preserving the two semantic projections the theory uses:
//!
//! * the trace set (safety), and
//! * the per-trace family of sink acceptance sets (progress): for each
//!   trace, the collection `{τ*.a' : ψ_A.t λ* a', sink.a'}` is preserved
//!   up to the addition of supersets of existing members, which leaves
//!   the `prog` predicate unchanged (if `R ⊆ R_full ⊆ τ*.b` then already
//!   `R ⊆ τ*.b`).
//!
//! The construction is a subset construction over λ*-closed state sets:
//! each reachable closed set `Q` becomes a *hub* state `ψ(t)`; each
//! distinct sink acceptance set of `Q` becomes a *leaf* reached from the
//! hub by one internal transition, carrying exactly that set of external
//! transitions; one additional leaf carries the full enabled set so that
//! no trace is lost. Hubs with a single leaf equal to the full set are
//! emitted as a single plain state.

use crate::closure::{close_lambda, Closures};
use crate::event::{Alphabet, EventId};
use crate::sink::SinkInfo;
use crate::spec::{spec_from_parts, Spec, StateId};
use crate::stateset::StateSet;
use std::collections::HashMap;

/// Checks the three normal-form conditions literally.
pub fn is_normal_form(spec: &Spec) -> bool {
    // (i) no state with both internal and external outgoing transitions.
    for s in spec.states() {
        if !spec.internal_from(s).is_empty() && !spec.external_from(s).is_empty() {
            return false;
        }
    }
    // (ii) internal graph acyclic (and no internal self-loops).
    let cl = Closures::compute(spec);
    for s in spec.states() {
        for t in cl.lambda_star(s).iter() {
            if t != s && cl.reaches(t, s) {
                return false;
            }
        }
        if spec.internal_from(s).contains(&s) {
            return false;
        }
    }
    // (iii) unique e-successor across internally reachable states.
    for s in spec.states() {
        let mut target: HashMap<EventId, StateId> = HashMap::new();
        for mid in cl.lambda_star(s).iter() {
            for &(e, t) in spec.external_from(mid) {
                match target.entry(e) {
                    std::collections::hash_map::Entry::Occupied(o) => {
                        if *o.get() != t {
                            return false;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(t);
                    }
                }
            }
        }
    }
    true
}

/// A specification in normal form, with the precomputed structure the
/// satisfaction checker and the quotient algorithm need:
/// per-hub acceptance sets and the deterministic ψ step function.
#[derive(Clone, Debug)]
pub struct NormalSpec {
    spec: Spec,
    /// State id of the hub (ψ-state) for each hub index.
    hub_state: Vec<StateId>,
    /// ψ-step: hub × event → hub.
    step: Vec<HashMap<EventId, usize>>,
    /// Sink acceptance sets per hub: the τ* sets of the sink states
    /// internally reachable from the hub, deduplicated.
    acceptance: Vec<Vec<Alphabet>>,
    /// τ* of each hub (all events possible after the trace).
    full: Vec<Alphabet>,
    /// Initial hub (ψ_A.ε).
    initial_hub: usize,
}

impl NormalSpec {
    /// The normal-form specification itself.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Number of hubs (distinct ψ states).
    pub fn num_hubs(&self) -> usize {
        self.hub_state.len()
    }

    /// ψ_A.ε — the hub for the empty trace.
    pub fn initial_hub(&self) -> usize {
        self.initial_hub
    }

    /// The spec state realising a hub.
    pub fn hub_state(&self, hub: usize) -> StateId {
        self.hub_state[hub]
    }

    /// ψ-step: the unique hub after observing `e`, or `None` if `e`
    /// cannot occur here (a safety boundary).
    pub fn step(&self, hub: usize, e: EventId) -> Option<usize> {
        self.step[hub].get(&e).copied()
    }

    /// Runs ψ over a whole trace.
    pub fn psi(&self, t: &[EventId]) -> Option<usize> {
        let mut h = self.initial_hub;
        for &e in t {
            h = self.step(h, e)?;
        }
        Some(h)
    }

    /// The sink acceptance sets of a hub: the environment is guaranteed
    /// progress iff it can always offer a superset of *some* member.
    pub fn acceptance(&self, hub: usize) -> &[Alphabet] {
        &self.acceptance[hub]
    }

    /// τ* of the hub — every event that may happen next after this trace.
    pub fn tau_star(&self, hub: usize) -> &Alphabet {
        &self.full[hub]
    }
}

/// Canonical interning key for a hub: ascending, duplicate-free state
/// list. [`StateSet::to_vec`] already yields ascending order from the
/// bitset, but the explicit sort + dedup guarantees two λ*-closures
/// that enumerate the same states in *different discovery orders* can
/// never intern as distinct hubs, even if the set representation
/// changes.
fn canonical_hub_key(q: &StateSet) -> Vec<StateId> {
    let mut key = q.to_vec();
    key.sort_unstable_by_key(|s| s.index());
    key.dedup();
    key
}

/// Converts an arbitrary specification into an equivalent [`NormalSpec`]
/// (see module docs for the preservation argument).
///
/// ```
/// use protoquot_spec::{normalize, is_normal_form, trace_of, SpecBuilder};
/// let mut b = SpecBuilder::new("messy");
/// let s0 = b.state("s0");
/// let s1 = b.state("s1");
/// b.ext(s0, "e", s1);
/// b.int(s0, s1); // external + internal from one state: not normal form
/// let messy = b.build().unwrap();
/// assert!(!is_normal_form(&messy));
/// let n = normalize(&messy);
/// assert!(is_normal_form(n.spec()));
/// // ψ tracks traces through the normal form.
/// assert!(n.psi(&trace_of(&["e"])).is_some());
/// assert!(n.psi(&trace_of(&["e", "e"])).is_none());
/// ```
pub fn normalize(spec: &Spec) -> NormalSpec {
    let sinks = SinkInfo::compute(spec);

    // Acceptance sets of a λ*-closed set Q: τ* of each sink SCC present.
    let scc_tau_cache: HashMap<usize, Alphabet> = {
        let mut m = HashMap::new();
        for s in spec.states() {
            if sinks.is_sink(s) {
                m.entry(sinks.scc_of(s))
                    .or_insert_with(|| sinks.scc_tau(spec, s));
            }
        }
        m
    };

    let closed_initial = {
        let mut q = StateSet::new(spec.num_states());
        q.insert(spec.initial());
        close_lambda(spec, &mut q);
        q
    };

    let mut hub_index: HashMap<Vec<StateId>, usize> = HashMap::new();
    let mut hubs: Vec<StateSet> = Vec::new();
    let mut work: Vec<usize> = Vec::new();

    let key0 = canonical_hub_key(&closed_initial);
    hub_index.insert(key0, 0);
    hubs.push(closed_initial);
    work.push(0);

    let mut step: Vec<HashMap<EventId, usize>> = vec![HashMap::new()];
    let mut acceptance: Vec<Vec<Alphabet>> = Vec::new();
    let mut full: Vec<Alphabet> = Vec::new();

    while let Some(h) = work.pop() {
        let q = hubs[h].clone();
        // Enabled events anywhere in Q.
        let mut enabled = Alphabet::new();
        for s in q.iter() {
            enabled = enabled.union(&spec.tau(s));
        }
        // Sink acceptance sets.
        let mut accs: Vec<Alphabet> = Vec::new();
        for s in q.iter() {
            if sinks.is_sink(s) {
                let a = scc_tau_cache[&sinks.scc_of(s)].clone();
                if !accs.contains(&a) {
                    accs.push(a);
                }
            }
        }
        debug_assert!(
            !accs.is_empty(),
            "every λ*-closed set contains a sink state"
        );
        while acceptance.len() <= h {
            acceptance.push(Vec::new());
            full.push(Alphabet::new());
        }
        acceptance[h] = accs;
        full[h] = enabled.clone();

        // Successor hubs per event.
        for e in enabled.iter() {
            let mut next = StateSet::new(spec.num_states());
            for s in q.iter() {
                for t in spec.ext_successors(s, e) {
                    next.insert(t);
                }
            }
            close_lambda(spec, &mut next);
            let key = canonical_hub_key(&next);
            let idx = match hub_index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = hubs.len();
                    hub_index.insert(key, i);
                    hubs.push(next);
                    step.push(HashMap::new());
                    work.push(i);
                    i
                }
            };
            step[h].insert(e, idx);
        }
    }
    debug_assert_eq!(acceptance.len(), hubs.len());

    // Materialize as a Spec. For each hub:
    //  - if acceptance == [full]: one plain state with full's edges;
    //  - else: a hub state with internal edges to one leaf per acceptance
    //    set, plus a full-leaf if `full` is not among them.
    let mut names: Vec<String> = Vec::new();
    let mut hub_state: Vec<StateId> = Vec::with_capacity(hubs.len());
    let mut leaves: Vec<Vec<(StateId, Alphabet)>> = Vec::with_capacity(hubs.len());
    for (h, _) in hubs.iter().enumerate() {
        let merged = acceptance[h].len() == 1 && acceptance[h][0] == full[h];
        let hs = StateId(names.len() as u32);
        names.push(format!("ψ{h}"));
        hub_state.push(hs);
        let mut hleaves = Vec::new();
        if merged {
            hleaves.push((hs, full[h].clone()));
        } else {
            let mut sets = acceptance[h].clone();
            if !sets.contains(&full[h]) {
                sets.push(full[h].clone());
            }
            for (i, set) in sets.into_iter().enumerate() {
                let ls = StateId(names.len() as u32);
                names.push(format!("ψ{h}.{i}"));
                hleaves.push((ls, set));
            }
        }
        leaves.push(hleaves);
    }

    let mut ext: Vec<(StateId, EventId, StateId)> = Vec::new();
    let mut int: Vec<(StateId, StateId)> = Vec::new();
    for h in 0..hubs.len() {
        for (ls, set) in &leaves[h] {
            if *ls != hub_state[h] {
                int.push((hub_state[h], *ls));
            }
            for e in set.iter() {
                let target = step[h][&e];
                ext.push((*ls, e, hub_state[target]));
            }
        }
    }

    let norm_spec = spec_from_parts(
        format!("{}/nf", spec.name()),
        spec.alphabet().clone(),
        names,
        hub_state[0],
        ext,
        int,
    )
    .expect("normalization preserves validity");
    debug_assert!(is_normal_form(&norm_spec));

    NormalSpec {
        spec: norm_spec,
        hub_state,
        step,
        acceptance,
        full,
        initial_hub: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;
    use crate::trace::{has_trace, trace_of, traces_up_to};

    fn alternating_service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    #[test]
    fn deterministic_spec_is_normal_and_fixed_by_normalize() {
        let s = alternating_service();
        assert!(is_normal_form(&s));
        let n = normalize(&s);
        assert_eq!(n.num_hubs(), 2);
        assert_eq!(n.spec().num_states(), 2);
        assert!(n.spec().is_internal_free());
    }

    #[test]
    fn psi_tracks_traces() {
        let n = normalize(&alternating_service());
        let h0 = n.initial_hub();
        assert_eq!(n.psi(&[]), Some(h0));
        let h1 = n.psi(&trace_of(&["acc"])).unwrap();
        assert_ne!(h0, h1);
        assert_eq!(n.psi(&trace_of(&["acc", "del"])), Some(h0));
        assert_eq!(n.psi(&trace_of(&["del"])), None);
        assert_eq!(n.psi(&trace_of(&["acc", "acc"])), None);
    }

    #[test]
    fn acceptance_of_deterministic_state_is_tau() {
        let n = normalize(&alternating_service());
        let h0 = n.initial_hub();
        assert_eq!(n.acceptance(h0), &[Alphabet::from_names(["acc"])]);
        assert_eq!(n.tau_star(h0), &Alphabet::from_names(["acc"]));
    }

    /// A service with a nondeterministic internal choice: after `req`,
    /// the service may be willing to `ok` or willing to `err`.
    fn choice_service() -> Spec {
        let mut b = SpecBuilder::new("C");
        let s0 = b.state("s0");
        let mid = b.state("mid");
        let l = b.state("l");
        let r = b.state("r");
        b.ext(s0, "req", mid);
        b.int(mid, l);
        b.int(mid, r);
        b.ext(l, "ok", s0);
        b.ext(r, "err", s0);
        let spec = b.build().unwrap();
        assert!(is_normal_form(&spec));
        spec
    }

    #[test]
    fn choice_service_acceptance_sets() {
        let n = normalize(&choice_service());
        let h = n.psi(&trace_of(&["req"])).unwrap();
        let accs = n.acceptance(h);
        // Two sink leaves: {ok} and {err}; full = {ok, err}.
        assert!(accs.contains(&Alphabet::from_names(["ok"])));
        assert!(accs.contains(&Alphabet::from_names(["err"])));
        assert_eq!(n.tau_star(h), &Alphabet::from_names(["ok", "err"]));
    }

    #[test]
    fn normalize_preserves_traces() {
        for spec in [alternating_service(), choice_service(), messy()] {
            let n = normalize(&spec);
            let orig = traces_up_to(&spec, 4);
            let norm = traces_up_to(n.spec(), 4);
            let orig_set: std::collections::HashSet<_> = orig.into_iter().collect();
            let norm_set: std::collections::HashSet<_> = norm.into_iter().collect();
            assert_eq!(orig_set, norm_set, "trace sets differ for {}", spec.name());
        }
    }

    /// Deliberately *not* in normal form: external+internal from one
    /// state, an internal cycle, and nondeterministic events.
    fn messy() -> Spec {
        let mut b = SpecBuilder::new("messy");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        let s3 = b.state("s3");
        b.ext(s0, "a", s1);
        b.int(s0, s2); // external + internal from s0: violates (i)
        b.int(s2, s3);
        b.int(s3, s2); // internal cycle: violates (ii)
        b.ext(s2, "b", s0);
        b.ext(s3, "a", s3); // "a" from two internally-related states: (iii)
        b.build().unwrap()
    }

    #[test]
    fn messy_is_not_normal_but_normalizes() {
        let m = messy();
        assert!(!is_normal_form(&m));
        let n = normalize(&m);
        assert!(is_normal_form(n.spec()));
        // Traces checked in normalize_preserves_traces; here check ψ is
        // total on actual traces.
        for t in traces_up_to(&m, 4) {
            assert!(n.psi(&t).is_some(), "ψ undefined on trace of original");
            assert!(has_trace(n.spec(), &t));
        }
    }

    #[test]
    fn normal_form_violations_detected_individually() {
        // (i) only.
        let mut b = SpecBuilder::new("v1");
        let x = b.state("x");
        let y = b.state("y");
        b.ext(x, "e", y);
        b.int(x, y);
        assert!(!is_normal_form(&b.build().unwrap()));

        // (ii) only.
        let mut b = SpecBuilder::new("v2");
        let x = b.state("x");
        let y = b.state("y");
        b.int(x, y);
        b.int(y, x);
        assert!(!is_normal_form(&b.build().unwrap()));

        // (iii) only: two λ-successors with diverging `e` targets.
        let mut b = SpecBuilder::new("v3");
        let x = b.state("x");
        let p = b.state("p");
        let q = b.state("q");
        let t1 = b.state("t1");
        let t2 = b.state("t2");
        b.int(x, p);
        b.int(x, q);
        b.ext(p, "e", t1);
        b.ext(q, "e", t2);
        assert!(!is_normal_form(&b.build().unwrap()));
    }

    #[test]
    fn sink_acceptance_excludes_transient_only_events() {
        // s0 ~> sink. s0 enables "transient"; sink enables "stable".
        let mut b = SpecBuilder::new("trans");
        let s0 = b.state("s0");
        let sink = b.state("sink");
        let t1 = b.state("t1");
        let t2 = b.state("t2");
        b.int(s0, sink);
        b.ext(s0, "transient", t1);
        b.ext(sink, "stable", t2);
        let spec = b.build().unwrap();
        let n = normalize(&spec);
        let h0 = n.initial_hub();
        // Acceptance: only {stable} (the single sink). full = both.
        assert_eq!(n.acceptance(h0), &[Alphabet::from_names(["stable"])]);
        assert_eq!(
            n.tau_star(h0),
            &Alphabet::from_names(["transient", "stable"])
        );
        // But the trace "transient" must survive normalization (full leaf).
        assert!(has_trace(n.spec(), &trace_of(&["transient"])));
    }

    #[test]
    fn hub_keys_are_canonical_under_discovery_order() {
        // Two λ*-closures over the same states, discovered in opposite
        // orders: after `a`, the closure seeds at v1 and walks v1→v2;
        // after `b`, it seeds at v2 and walks v2→v1. Both must intern
        // as ONE hub — the key is the canonical sorted set, never the
        // discovery order.
        let mut b = SpecBuilder::new("orders");
        let u0 = b.state("u0");
        let v1 = b.state("v1");
        let v2 = b.state("v2");
        b.ext(u0, "a", v1);
        b.ext(u0, "b", v2);
        b.int(v1, v2);
        b.int(v2, v1);
        let spec = b.build().unwrap();
        let n = normalize(&spec);
        assert_eq!(n.num_hubs(), 2, "initial hub plus one shared {{v1,v2}} hub");
        assert_eq!(n.psi(&trace_of(&["a"])), n.psi(&trace_of(&["b"])));
    }
}
