//! A compact bitset over the states of one specification.
//!
//! The closure computations (λ*, τ*, reachability) are set-heavy; a
//! word-packed bitset keeps them allocation-light and cache-friendly.

use crate::spec::StateId;

/// Fixed-capacity bitset over state indices `0..capacity`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StateSet {
    words: Vec<u64>,
    capacity: usize,
}

impl StateSet {
    /// An empty set able to hold states `0..capacity`.
    pub fn new(capacity: usize) -> StateSet {
        StateSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity (number of representable states).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a state; returns true if newly inserted.
    pub fn insert(&mut self, s: StateId) -> bool {
        let (w, b) = (s.index() / 64, s.index() % 64);
        debug_assert!(s.index() < self.capacity);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a state; returns true if it was present.
    pub fn remove(&mut self, s: StateId) -> bool {
        let (w, b) = (s.index() / 64, s.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, s: StateId) -> bool {
        let (w, b) = (s.index() / 64, s.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of states in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union; returns true if `self` changed.
    pub fn union_with(&mut self, other: &StateSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &StateSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = StateId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(StateId((wi * 64 + b) as u32))
                }
            })
        })
    }

    /// A canonical sorted `Vec` of members (useful as a hash key).
    pub fn to_vec(&self) -> Vec<StateId> {
        self.iter().collect()
    }
}

impl FromIterator<StateId> for StateSet {
    /// Builds a set sized to fit the largest member.
    fn from_iter<T: IntoIterator<Item = StateId>>(iter: T) -> Self {
        let items: Vec<StateId> = iter.into_iter().collect();
        let cap = items.iter().map(|s| s.index() + 1).max().unwrap_or(0);
        let mut set = StateSet::new(cap);
        for s in items {
            set.insert(s);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = StateSet::new(130);
        assert!(s.insert(StateId(0)));
        assert!(s.insert(StateId(129)));
        assert!(!s.insert(StateId(0)));
        assert!(s.contains(StateId(0)));
        assert!(s.contains(StateId(129)));
        assert!(!s.contains(StateId(64)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(StateId(0)));
        assert!(!s.remove(StateId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_subset() {
        let mut a = StateSet::new(100);
        let mut b = StateSet::new(100);
        a.insert(StateId(1));
        b.insert(StateId(1));
        b.insert(StateId(70));
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(b.is_subset(&a));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_ascending() {
        let mut s = StateSet::new(200);
        for i in [5u32, 63, 64, 128, 199] {
            s.insert(StateId(i));
        }
        let got: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(got, vec![5, 63, 64, 128, 199]);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: StateSet = [StateId(3), StateId(66)].into_iter().collect();
        assert!(s.capacity() >= 67);
        assert!(s.contains(StateId(66)));
        let empty: StateSet = std::iter::empty().collect();
        assert!(empty.is_empty());
    }
}
