//! Event names and alphabets.
//!
//! The paper models interaction through *named events* (its Σ component).
//! Event names are interned process-wide so that two specifications built
//! independently synchronise on events simply by using the same name —
//! exactly how the paper treats, e.g., the `-d0` event shared between the
//! AB sender and its channel.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A process-wide interned event name.
///
/// Equality of [`EventId`]s is equality of names. The numeric value is an
/// implementation detail and is stable only within one process run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u32);

struct Interner {
    names: Vec<String>,
    index: std::collections::HashMap<String, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            index: std::collections::HashMap::new(),
        })
    })
}

impl EventId {
    /// Interns `name` and returns its id. Calling twice with the same name
    /// returns the same id.
    pub fn new(name: &str) -> EventId {
        {
            let guard = interner().read().unwrap();
            if let Some(&id) = guard.index.get(name) {
                return EventId(id);
            }
        }
        let mut guard = interner().write().unwrap();
        if let Some(&id) = guard.index.get(name) {
            return EventId(id);
        }
        let id = guard.names.len() as u32;
        guard.names.push(name.to_owned());
        guard.index.insert(name.to_owned(), id);
        EventId(id)
    }

    /// The interned name of this event.
    pub fn name(&self) -> String {
        interner().read().unwrap().names[self.0 as usize].clone()
    }

    /// Raw index (stable within a process run only).
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventId({:?})", self.name())
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl From<&str> for EventId {
    fn from(s: &str) -> Self {
        EventId::new(s)
    }
}

/// A finite set of events — the Σ of a specification, or an interface
/// (e.g. the `Int`/`Ext` split of the quotient problem).
///
/// Supports the interface calculus the composition operator needs:
/// Σ(A‖B) = (Σ_A ∪ Σ_B) − (Σ_A ∩ Σ_B).
#[derive(Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Alphabet {
    events: BTreeSet<EventId>,
}

impl Alphabet {
    /// The empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Builds an alphabet from event names.
    pub fn from_names<'a, I: IntoIterator<Item = &'a str>>(names: I) -> Alphabet {
        names.into_iter().map(EventId::new).collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, e: EventId) -> bool {
        self.events.contains(&e)
    }

    /// Inserts an event; returns true if it was not already present.
    pub fn insert(&mut self, e: EventId) -> bool {
        self.events.insert(e)
    }

    /// Removes an event; returns true if it was present.
    pub fn remove(&mut self, e: EventId) -> bool {
        self.events.remove(&e)
    }

    /// Iterates events in a stable (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events.iter().copied()
    }

    /// Σ_A ∪ Σ_B.
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        Alphabet {
            events: self.events.union(&other.events).copied().collect(),
        }
    }

    /// Σ_A ∩ Σ_B — the events two composed components synchronise on.
    pub fn intersection(&self, other: &Alphabet) -> Alphabet {
        Alphabet {
            events: self.events.intersection(&other.events).copied().collect(),
        }
    }

    /// Σ_A − Σ_B.
    pub fn difference(&self, other: &Alphabet) -> Alphabet {
        Alphabet {
            events: self.events.difference(&other.events).copied().collect(),
        }
    }

    /// (Σ_A ∪ Σ_B) − (Σ_A ∩ Σ_B) — the interface of a composite, per the
    /// paper's definition of `‖`.
    pub fn symmetric_difference(&self, other: &Alphabet) -> Alphabet {
        Alphabet {
            events: self
                .events
                .symmetric_difference(&other.events)
                .copied()
                .collect(),
        }
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(&self, other: &Alphabet) -> bool {
        self.events.is_subset(&other.events)
    }

    /// True iff the two alphabets share no events.
    pub fn is_disjoint(&self, other: &Alphabet) -> bool {
        self.events.is_disjoint(&other.events)
    }

    /// Event names, sorted, for display and serialization.
    pub fn names(&self) -> Vec<String> {
        self.events.iter().map(|e| e.name()).collect()
    }
}

impl FromIterator<EventId> for Alphabet {
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        Alphabet {
            events: iter.into_iter().collect(),
        }
    }
}

impl<'a> FromIterator<&'a str> for Alphabet {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        iter.into_iter().map(EventId::new).collect()
    }
}

fn fmt_events(events: &BTreeSet<EventId>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{}", e.name())?;
    }
    write!(f, "}}")
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_events(&self.events, f)
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_events(&self.events, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = EventId::new("acc");
        let b = EventId::new("acc");
        let c = EventId::new("del");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "acc");
        assert_eq!(c.name(), "del");
    }

    #[test]
    fn from_str_interns() {
        let a: EventId = "evt_x".into();
        assert_eq!(a, EventId::new("evt_x"));
    }

    #[test]
    fn alphabet_set_operations() {
        let a = Alphabet::from_names(["x", "y", "z"]);
        let b = Alphabet::from_names(["y", "z", "w"]);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b), Alphabet::from_names(["y", "z"]));
        assert_eq!(a.difference(&b), Alphabet::from_names(["x"]));
        assert_eq!(a.symmetric_difference(&b), Alphabet::from_names(["x", "w"]));
    }

    #[test]
    fn alphabet_subset_and_disjoint() {
        let a = Alphabet::from_names(["x", "y"]);
        let b = Alphabet::from_names(["x", "y", "z"]);
        let c = Alphabet::from_names(["p", "q"]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn alphabet_insert_remove() {
        let mut a = Alphabet::new();
        assert!(a.is_empty());
        assert!(a.insert(EventId::new("e1")));
        assert!(!a.insert(EventId::new("e1")));
        assert!(a.contains(EventId::new("e1")));
        assert!(a.remove(EventId::new("e1")));
        assert!(!a.remove(EventId::new("e1")));
        assert!(a.is_empty());
    }

    #[test]
    fn alphabet_display_sorted_by_id() {
        let a = Alphabet::from_names(["one"]);
        assert_eq!(format!("{a}"), "{one}");
    }
}
