//! # protoquot-spec
//!
//! The finite-state specification formalism of *Calvert & Lam, "Deriving
//! a Protocol Converter: A Top-Down Method" (SIGCOMM 1989)*, §3.
//!
//! A specification is a tuple `(S, Σ, T, λ, s0)`:
//!
//! * `S` — finite states ([`Spec::states`]),
//! * `Σ` — the event interface ([`Alphabet`]),
//! * `T ⊆ S × Σ × S` — external transitions, which fire only when both
//!   sides of the interface enable them,
//! * `λ ⊆ S × S` — internal transitions, which fire unilaterally and
//!   unobserved,
//! * `s0` — the initial state.
//!
//! On top of the tuple, this crate provides everything the quotient
//! algorithm (in `protoquot-core`) needs:
//!
//! * [`fn@compose`] — the paper's `‖` operator (shared events
//!   synchronise and hide; interfaces combine by symmetric difference);
//! * [`Closures`] — `λ*`, `τ`, `τ*`;
//! * [`SinkInfo`]/[`collapse_sinks`] — sink sets and the Figure 4
//!   collapse;
//! * [`normalize`]/[`NormalSpec`] — the normal form required of service
//!   specifications, with the `ψ` trace tracker;
//! * [`satisfies`] — the two-part satisfaction relation (safety = trace
//!   inclusion, progress = sink-acceptance containment);
//! * [`fn@minimize`]/[`bisimilar`] — strong bisimulation tools;
//! * trace utilities, DOT export, serde support.
//!
//! ## Quick example
//!
//! ```
//! use protoquot_spec::{SpecBuilder, satisfies};
//!
//! // Service: strictly alternating accept/deliver.
//! let mut b = SpecBuilder::new("service");
//! let u0 = b.state("u0");
//! let u1 = b.state("u1");
//! b.ext(u0, "acc", u1);
//! b.ext(u1, "del", u0);
//! let service = b.build().unwrap();
//!
//! // An implementation with an internal step still satisfies it.
//! let mut b = SpecBuilder::new("impl");
//! let s0 = b.state("s0");
//! let mid = b.state("mid");
//! let s1 = b.state("s1");
//! b.ext(s0, "acc", mid);
//! b.int(mid, s1);
//! b.ext(s1, "del", s0);
//! let implementation = b.build().unwrap();
//!
//! assert!(satisfies(&implementation, &service).unwrap().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod compose;
pub mod dot;
pub mod engine;
pub mod error;
pub mod event;
pub mod failures;
pub mod graph;
pub mod lang;
pub mod minimize;
pub mod normal;
pub mod satisfy;
pub mod serde_impl;
pub mod sink;
pub mod spec;
pub mod stateset;
pub mod trace;

pub use closure::Closures;
pub use compose::{compose, compose_all, compose_full, hide, sync_product};
pub use dot::{to_dot, to_text};
pub use engine::{
    compile_composite, compose_all_nway, satisfies_engine, tau_star_rows, verify_system,
    CompiledComposite, EngineVerdict, EventTable, VerifyEngineStats,
};
pub use error::SpecError;
pub use event::{Alphabet, EventId};
pub use failures::Failures;
pub use graph::{prune_unreachable, reachable};
pub use lang::{all_minimal_violations, determinize, language_equal, MinimalViolation};
pub use minimize::{bisimilar, minimize};
pub use normal::{is_normal_form, normalize, NormalSpec};
pub use satisfy::{safety_with, satisfies, satisfies_safety, satisfies_with, Violation};
pub use serde_impl::SpecDoc;
pub use sink::{collapse_sinks, SinkInfo};
pub use spec::{spec_from_parts, Spec, SpecBuilder, StateId};
pub use stateset::StateSet;
pub use trace::{has_trace, project, trace_of, trace_string, Trace};
