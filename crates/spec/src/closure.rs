//! λ* closures and the τ/τ* enabled-event sets of §3.
//!
//! * `s λ* s'` — `s'` is reachable from `s` via zero or more internal
//!   transitions.
//! * `τ.s` — external events enabled directly in `s`.
//! * `τ*.s` — external events enabled in any state internally reachable
//!   from `s` ("all events that may occur next if the current state is
//!   `s`").

use crate::event::Alphabet;
use crate::spec::{Spec, StateId};
use crate::stateset::StateSet;

/// Precomputed λ* closure and τ* sets for every state of one spec.
#[derive(Clone, Debug)]
pub struct Closures {
    lambda_star: Vec<StateSet>,
    tau_star: Vec<Alphabet>,
}

impl Closures {
    /// Computes closures for `spec`.
    pub fn compute(spec: &Spec) -> Closures {
        let n = spec.num_states();
        let mut lambda_star = Vec::with_capacity(n);
        for s in spec.states() {
            lambda_star.push(lambda_closure_of(spec, s));
        }
        let tau_star = (0..n)
            .map(|i| {
                let mut acc = Alphabet::new();
                for t in lambda_star[i].iter() {
                    acc = acc.union(&spec.tau(t));
                }
                acc
            })
            .collect();
        Closures {
            lambda_star,
            tau_star,
        }
    }

    /// The set `{s' : s λ* s'}` (always contains `s` itself).
    pub fn lambda_star(&self, s: StateId) -> &StateSet {
        &self.lambda_star[s.index()]
    }

    /// True iff `s λ* t`.
    pub fn reaches(&self, s: StateId, t: StateId) -> bool {
        self.lambda_star[s.index()].contains(t)
    }

    /// τ*.s per the paper.
    pub fn tau_star(&self, s: StateId) -> &Alphabet {
        &self.tau_star[s.index()]
    }
}

/// Computes `{s' : start λ* s'}` by DFS over internal edges.
pub fn lambda_closure_of(spec: &Spec, start: StateId) -> StateSet {
    let mut set = StateSet::new(spec.num_states());
    let mut stack = vec![start];
    set.insert(start);
    while let Some(s) = stack.pop() {
        for &t in spec.internal_from(s) {
            if set.insert(t) {
                stack.push(t);
            }
        }
    }
    set
}

/// Extends a set of states to its λ* closure in place.
pub fn close_lambda(spec: &Spec, set: &mut StateSet) {
    let mut stack: Vec<StateId> = set.iter().collect();
    while let Some(s) = stack.pop() {
        for &t in spec.internal_from(s) {
            if set.insert(t) {
                stack.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::spec::SpecBuilder;

    /// a ~> b ~> c, with c --e--> a and b --f--> b.
    fn chain() -> Spec {
        let mut bld = SpecBuilder::new("chain");
        let a = bld.state("a");
        let b = bld.state("b");
        let c = bld.state("c");
        bld.int(a, b);
        bld.int(b, c);
        bld.ext(c, "e", a);
        bld.ext(b, "f", b);
        bld.build().unwrap()
    }

    #[test]
    fn lambda_star_is_reflexive_and_transitive() {
        let s = chain();
        let cl = Closures::compute(&s);
        let a = s.state_by_name("a").unwrap();
        let b = s.state_by_name("b").unwrap();
        let c = s.state_by_name("c").unwrap();
        assert!(cl.reaches(a, a));
        assert!(cl.reaches(a, b));
        assert!(cl.reaches(a, c));
        assert!(!cl.reaches(c, b));
        assert_eq!(cl.lambda_star(a).len(), 3);
        assert_eq!(cl.lambda_star(c).len(), 1);
    }

    #[test]
    fn tau_star_collects_enabled_events_along_internal_paths() {
        let s = chain();
        let cl = Closures::compute(&s);
        let a = s.state_by_name("a").unwrap();
        let c = s.state_by_name("c").unwrap();
        assert_eq!(cl.tau_star(a), &Alphabet::from_names(["e", "f"]));
        assert_eq!(cl.tau_star(c), &Alphabet::from_names(["e"]));
        // τ (direct) differs from τ* for `a`.
        assert!(s.tau(a).is_empty());
    }

    #[test]
    fn closure_handles_internal_cycles() {
        let mut bld = SpecBuilder::new("cycle");
        let a = bld.state("a");
        let b = bld.state("b");
        bld.int(a, b);
        bld.int(b, a);
        bld.ext(b, "g", a);
        let s = bld.build().unwrap();
        let cl = Closures::compute(&s);
        assert!(cl.reaches(a, b) && cl.reaches(b, a));
        assert_eq!(cl.tau_star(a), &Alphabet::from_names(["g"]));
        assert_eq!(cl.tau_star(b), &Alphabet::from_names(["g"]));
    }

    #[test]
    fn close_lambda_extends_in_place() {
        let s = chain();
        let mut set = StateSet::new(s.num_states());
        set.insert(s.state_by_name("a").unwrap());
        close_lambda(&s, &mut set);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn unused_event_never_in_tau_star() {
        let mut bld = SpecBuilder::new("iface");
        let a = bld.state("a");
        bld.ext(a, "used", a);
        bld.event("declared_only");
        let s = bld.build().unwrap();
        let cl = Closures::compute(&s);
        assert!(!cl.tau_star(a).contains(EventId::new("declared_only")));
    }
}
