//! Serde support: specifications serialize to a stable, name-based
//! document (event *names*, not interner ids), so serialized specs are
//! portable across processes.

use crate::event::{Alphabet, EventId};
use crate::spec::{spec_from_parts, Spec, StateId};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// The serialized form of a [`Spec`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpecDoc {
    /// Spec name.
    pub name: String,
    /// Alphabet as event names.
    pub alphabet: Vec<String>,
    /// State labels, index = state id.
    pub states: Vec<String>,
    /// Initial state index.
    pub initial: usize,
    /// External transitions as (from, event, to).
    pub external: Vec<(usize, String, usize)>,
    /// Internal transitions as (from, to).
    pub internal: Vec<(usize, usize)>,
}

impl From<&Spec> for SpecDoc {
    fn from(spec: &Spec) -> SpecDoc {
        SpecDoc {
            name: spec.name().to_owned(),
            alphabet: spec.alphabet().names(),
            states: spec
                .states()
                .map(|s| spec.state_name(s).to_owned())
                .collect(),
            initial: spec.initial().index(),
            external: spec
                .external_transitions()
                .map(|(s, e, t)| (s.index(), e.name(), t.index()))
                .collect(),
            internal: spec
                .internal_transitions()
                .map(|(s, t)| (s.index(), t.index()))
                .collect(),
        }
    }
}

impl TryFrom<SpecDoc> for Spec {
    type Error = crate::error::SpecError;

    fn try_from(doc: SpecDoc) -> Result<Spec, Self::Error> {
        let alphabet: Alphabet = doc.alphabet.iter().map(|n| EventId::new(n)).collect();
        spec_from_parts(
            doc.name,
            alphabet,
            doc.states,
            StateId(doc.initial as u32),
            doc.external
                .into_iter()
                .map(|(s, e, t)| (StateId(s as u32), EventId::new(&e), StateId(t as u32)))
                .collect(),
            doc.internal
                .into_iter()
                .map(|(s, t)| (StateId(s as u32), StateId(t as u32)))
                .collect(),
        )
    }
}

// The vendored serde shim has no derive macros, so SpecDoc's
// serialization is spelled out: an object with one entry per field.
impl Serialize for SpecDoc {
    fn to_value(&self) -> Value {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), self.name.to_value());
        obj.insert("alphabet".to_owned(), self.alphabet.to_value());
        obj.insert("states".to_owned(), self.states.to_value());
        obj.insert("initial".to_owned(), self.initial.to_value());
        obj.insert("external".to_owned(), self.external.to_value());
        obj.insert("internal".to_owned(), self.internal.to_value());
        Value::Obj(obj)
    }
}

impl Deserialize for SpecDoc {
    fn from_value(v: &Value) -> Result<SpecDoc, serde::Error> {
        let obj = v
            .as_obj()
            .ok_or_else(|| serde::de::Error::custom("SpecDoc: expected object"))?;
        let field = |name: &str| {
            obj.get(name)
                .ok_or_else(|| serde::de::Error::custom(format!("SpecDoc: missing field {name:?}")))
        };
        Ok(SpecDoc {
            name: String::from_value(field("name")?)?,
            alphabet: Vec::from_value(field("alphabet")?)?,
            states: Vec::from_value(field("states")?)?,
            initial: usize::from_value(field("initial")?)?,
            external: Vec::from_value(field("external")?)?,
            internal: Vec::from_value(field("internal")?)?,
        })
    }
}

impl Serialize for Spec {
    fn to_value(&self) -> Value {
        SpecDoc::from(self).to_value()
    }
}

impl Deserialize for Spec {
    fn from_value(v: &Value) -> Result<Spec, serde::Error> {
        let doc = SpecDoc::from_value(v)?;
        Spec::try_from(doc).map_err(serde::de::Error::custom)
    }
}

/// Renders a spec as a small JSON document (hand-rolled writer so the
/// core crates stay free of a JSON dependency; escaping covers the
/// characters event/state names can contain).
pub fn to_json(spec: &Spec) -> String {
    let doc = SpecDoc::from(spec);
    let esc = |s: &str| {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    };
    let strings = |v: &[String]| v.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",");
    let ext = doc
        .external
        .iter()
        .map(|(s, e, t)| format!("[{s},{},{t}]", esc(e)))
        .collect::<Vec<_>>()
        .join(",");
    let int = doc
        .internal
        .iter()
        .map(|(s, t)| format!("[{s},{t}]"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"name\":{},\"alphabet\":[{}],\"states\":[{}],\"initial\":{},\"external\":[{ext}],\"internal\":[{int}]}}\n",
        esc(&doc.name),
        strings(&doc.alphabet),
        strings(&doc.states),
        doc.initial
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn sample() -> Spec {
        let mut b = SpecBuilder::new("sample");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "go", c);
        b.int(c, a);
        b.event("declared");
        b.initial(c);
        b.build().unwrap()
    }

    #[test]
    fn doc_roundtrip() {
        let s = sample();
        let doc = SpecDoc::from(&s);
        let back = Spec::try_from(doc).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn doc_fields() {
        let doc = SpecDoc::from(&sample());
        assert_eq!(doc.name, "sample");
        assert!(doc.alphabet.contains(&"declared".to_owned()));
        assert_eq!(doc.initial, 1);
        assert_eq!(doc.external, vec![(0, "go".to_owned(), 1)]);
        assert_eq!(doc.internal, vec![(1, 0)]);
    }

    #[test]
    fn hand_rolled_json_structure() {
        let s = sample();
        let j = to_json(&s);
        assert!(j.starts_with("{\"name\":\"sample\""));
        assert!(j.contains("\"initial\":1"));
        assert!(j.contains("[0,\"go\",1]"));
        assert!(j.contains("\"internal\":[[1,0]]"));
        // Escaping: quotes and backslashes in names survive.
        let mut b = SpecBuilder::new("we\"ird\\name");
        b.state("st\"ate");
        let weird = b.build().unwrap();
        let j = to_json(&weird);
        assert!(j.contains("we\\\"ird\\\\name"), "{j}");
    }

    #[test]
    fn invalid_doc_rejected() {
        let doc = SpecDoc {
            name: "bad".into(),
            alphabet: vec![],
            states: vec!["a".into()],
            initial: 7,
            external: vec![],
            internal: vec![],
        };
        assert!(Spec::try_from(doc).is_err());
    }
}
