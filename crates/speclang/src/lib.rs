//! # protoquot-speclang
//!
//! A small textual language for finite-state protocol specifications,
//! so examples, docs and tests can define machines readably:
//!
//! ```text
//! spec N0 {
//!   initial n0;
//!   n0: acc -> n1;
//!   n1: -D -> n2;
//!   n2: +A -> n0 | t_N -> n1;   # timeout: retransmit
//! }
//! ```
//!
//! * [`parse_spec`]/[`parse_file`] — text → [`protoquot_spec::Spec`];
//! * [`print_spec`]/[`print_file`] — the exact inverse (round-trip
//!   tested);
//! * events keep the paper's channel convention: `-x` puts message `x`
//!   into a channel, `+x` takes it out.
//!
//! No external parser dependencies: a hand-rolled lexer and recursive-
//! descent parser with positioned errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod printer;

pub use parser::{parse_file, parse_source, parse_spec, ProblemDecl, SourceFile};
pub use printer::{print_file, print_problem, print_source, print_spec};
