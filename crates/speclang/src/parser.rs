//! Parser for the textual specification language.
//!
//! ```text
//! # The paper's NS sender, textually:
//! spec N0 {
//!   initial n0;
//!   alphabet acc, -D, +A, t_N;    # optional: events are also inferred
//!   n0: acc -> n1;
//!   n1: -D -> n2;
//!   n2: +A -> n0 | t_N -> n1;
//! }
//! ```
//!
//! * `spec NAME { … }` — one specification; a file may contain several.
//! * `STATE: t1 | t2 | …;` — transitions out of `STATE`. Each `t` is
//!   `EVENT -> STATE` (external) or `-> STATE` (internal). A bare
//!   `STATE: ;` declares a state with no transitions.
//! * `initial STATE;` — optional; default is the first state mentioned.
//! * `alphabet e1, e2, …;` — optional extra interface events.
//! * `states s0, s1, …;` — optional explicit declaration order (pins
//!   state numbering; used by the pretty-printer for exact
//!   round-trips).
//!
//! States are implicitly declared on first mention. `initial`,
//! `alphabet` and `states` are contextual keywords — usable as state
//! names everywhere except at the start of a declaration.

use crate::lexer::{lex, Token, TokenKind};
use protoquot_spec::{Spec, SpecBuilder, SpecError};

/// A declared quotient problem (see the grammar above): which specs
/// form `B`, which is the service, and the converter interface.
///
/// ```text
/// problem fig13 {
///   components A0, Ach, N1;
///   service S;
///   internal +d0, +d1, -a0, -a1, +D, -A;
/// }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProblemDecl {
    /// Problem name.
    pub name: String,
    /// Names of the specs composing the fixed components `B`.
    pub components: Vec<String>,
    /// Name of the service spec.
    pub service: String,
    /// The converter interface `Int`, as event names.
    pub internal: Vec<String>,
}

/// A parsed source file: specifications plus declared problems.
#[derive(Clone, Debug, Default)]
pub struct SourceFile {
    /// The specifications, in declaration order.
    pub specs: Vec<Spec>,
    /// The declared quotient problems, in declaration order.
    pub problems: Vec<ProblemDecl>,
}

impl SourceFile {
    /// Looks a spec up by name.
    pub fn spec(&self, name: &str) -> Option<&Spec> {
        self.specs.iter().find(|s| s.name() == name)
    }

    /// Looks a problem up by name.
    pub fn problem(&self, name: &str) -> Option<&ProblemDecl> {
        self.problems.iter().find(|p| p.name == name)
    }
}

/// Parses a whole source file: `spec` blocks plus optional `problem`
/// blocks.
pub fn parse_source(input: &str) -> Result<SourceFile, SpecError> {
    let tokens = lex(input).map_err(|e| SpecError::Parse(e.to_string()))?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = SourceFile::default();
    while p.peek() != &TokenKind::Eof {
        match p.peek() {
            TokenKind::Word(w) if w == "problem" => out.problems.push(p.problem()?),
            _ => out.specs.push(p.spec()?),
        }
    }
    if out.specs.is_empty() {
        return Err(SpecError::Parse("no `spec` blocks found".to_owned()));
    }
    // Validate problem references.
    for pr in &out.problems {
        for c in pr.components.iter().chain(std::iter::once(&pr.service)) {
            if out.spec(c).is_none() {
                return Err(SpecError::Parse(format!(
                    "problem `{}` references unknown spec `{c}`",
                    pr.name
                )));
            }
        }
        if pr.components.is_empty() {
            return Err(SpecError::Parse(format!(
                "problem `{}` declares no components",
                pr.name
            )));
        }
        if pr.internal.is_empty() {
            return Err(SpecError::Parse(format!(
                "problem `{}` declares no internal events",
                pr.name
            )));
        }
    }
    Ok(out)
}

/// Parses a whole source file and returns only the `spec` blocks
/// (problem declarations are allowed and skipped).
pub fn parse_file(input: &str) -> Result<Vec<Spec>, SpecError> {
    Ok(parse_source(input)?.specs)
}

/// Parses exactly one `spec` block (trailing input is an error).
///
/// ```
/// use protoquot_speclang::parse_spec;
/// let n0 = parse_spec("
///     spec N0 {
///       initial n0;
///       n0: acc -> n1;
///       n1: -D -> n2;
///       n2: +A -> n0 | t_N -> n1;
///     }
/// ").unwrap();
/// assert_eq!(n0.name(), "N0");
/// assert_eq!(n0.num_states(), 3);
/// ```
pub fn parse_spec(input: &str) -> Result<Spec, SpecError> {
    let specs = parse_file(input)?;
    if specs.len() != 1 {
        return Err(SpecError::Parse(format!(
            "expected exactly one spec, found {}",
            specs.len()
        )));
    }
    Ok(specs.into_iter().next().unwrap())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn here(&self) -> (usize, usize) {
        (self.tokens[self.pos].line, self.tokens[self.pos].col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: &str) -> SpecError {
        let (l, c) = self.here();
        SpecError::Parse(format!("{l}:{c}: {msg}, found {}", self.peek()))
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SpecError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected {kind}")))
        }
    }

    fn word(&mut self, what: &str) -> Result<String, SpecError> {
        match self.peek() {
            TokenKind::Word(w) => {
                let w = w.clone();
                self.bump();
                Ok(w)
            }
            _ => Err(self.err(&format!("expected {what}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), SpecError> {
        match self.peek() {
            TokenKind::Word(w) if w == kw => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err(&format!("expected `{kw}`"))),
        }
    }

    fn problem(&mut self) -> Result<ProblemDecl, SpecError> {
        self.keyword("problem")?;
        let name = self.word("a problem name")?;
        self.expect(TokenKind::LBrace)?;
        let mut components: Vec<String> = Vec::new();
        let mut service: Option<String> = None;
        let mut internal: Vec<String> = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            match self.peek().clone() {
                TokenKind::Word(w) if w == "components" => {
                    self.bump();
                    loop {
                        components.push(self.word("a spec name")?);
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Word(w) if w == "service" => {
                    self.bump();
                    let s = self.word("a spec name")?;
                    if service.replace(s).is_some() {
                        return Err(SpecError::Parse(
                            "`service` declared more than once".to_owned(),
                        ));
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Word(w) if w == "internal" => {
                    self.bump();
                    loop {
                        internal.push(self.word("an event name")?);
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                _ => return Err(self.err("expected `components`, `service` or `internal`")),
            }
        }
        self.expect(TokenKind::RBrace)?;
        let Some(service) = service else {
            return Err(SpecError::Parse(format!(
                "problem `{name}` has no `service` declaration"
            )));
        };
        Ok(ProblemDecl {
            name,
            components,
            service,
            internal,
        })
    }

    fn spec(&mut self) -> Result<Spec, SpecError> {
        self.keyword("spec")?;
        let name = self.word("a specification name")?;
        self.expect(TokenKind::LBrace)?;
        let mut b = SpecBuilder::new(&name);
        let mut initial: Option<String> = None;
        while self.peek() != &TokenKind::RBrace {
            match self.peek().clone() {
                TokenKind::Word(w) if w == "initial" => {
                    self.bump();
                    let s = self.word("a state name")?;
                    if initial.replace(s).is_some() {
                        return Err(SpecError::Parse(
                            "`initial` declared more than once".to_owned(),
                        ));
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Word(w) if w == "states" => {
                    self.bump();
                    loop {
                        let st = self.word("a state name")?;
                        b.state(&st);
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Word(w) if w == "alphabet" => {
                    self.bump();
                    loop {
                        let e = self.word("an event name")?;
                        b.event(&e);
                        if self.peek() == &TokenKind::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                TokenKind::Word(_) => {
                    let from = self.word("a state name")?;
                    let from = b.state(&from);
                    self.expect(TokenKind::Colon)?;
                    if self.peek() == &TokenKind::Semi {
                        self.bump(); // state with no transitions
                        continue;
                    }
                    loop {
                        if self.peek() == &TokenKind::Arrow {
                            // internal transition
                            self.bump();
                            let to = self.word("a state name")?;
                            let to = b.state(&to);
                            b.int(from, to);
                        } else {
                            let event = self.word("an event name or `->`")?;
                            self.expect(TokenKind::Arrow)?;
                            let to = self.word("a state name")?;
                            let to = b.state(&to);
                            b.ext(from, &event, to);
                        }
                        if self.peek() == &TokenKind::Pipe {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::Semi)?;
                }
                _ => return Err(self.err("expected a declaration or '}'")),
            }
        }
        self.expect(TokenKind::RBrace)?;
        if let Some(init) = initial {
            let id = b.state(&init);
            b.initial(id);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of, Alphabet, EventId};

    const NS_SENDER: &str = "
        # The paper's NS sender.
        spec N0 {
          initial n0;
          n0: acc -> n1;
          n1: -D -> n2;
          n2: +A -> n0 | t_N -> n1;
        }
    ";

    #[test]
    fn parses_ns_sender() {
        let s = parse_spec(NS_SENDER).unwrap();
        assert_eq!(s.name(), "N0");
        assert_eq!(s.num_states(), 3);
        assert_eq!(
            s.alphabet(),
            &Alphabet::from_names(["acc", "-D", "+A", "t_N"])
        );
        assert!(has_trace(&s, &trace_of(&["acc", "-D", "t_N", "-D", "+A"])));
        // Matches the hand-built machine.
        assert!(protoquot_spec::bisimilar(
            &s,
            &protoquot_protocols_free::ns_sender()
        ));
    }

    // Local copy to avoid a cyclic dev-dependency on protoquot-protocols.
    mod protoquot_protocols_free {
        use protoquot_spec::{Spec, SpecBuilder};
        pub fn ns_sender() -> Spec {
            let mut b = SpecBuilder::new("N0");
            let n0 = b.state("n0");
            let n1 = b.state("n1");
            let n2 = b.state("n2");
            b.ext(n0, "acc", n1);
            b.ext(n1, "-D", n2);
            b.ext(n2, "+A", n0);
            b.ext(n2, "t_N", n1);
            b.build().unwrap()
        }
    }

    #[test]
    fn internal_transitions_and_bare_states() {
        let s = parse_spec(
            "spec X {
               a: -> b | e -> c;
               b: ;
               c: -> a;
             }",
        )
        .unwrap();
        assert_eq!(s.num_states(), 3);
        assert_eq!(s.num_internal(), 2);
        assert_eq!(s.num_external(), 1);
    }

    #[test]
    fn alphabet_declares_extra_events() {
        let s = parse_spec("spec X { alphabet phantom, e2; a: ; }").unwrap();
        assert!(s.alphabet().contains(EventId::new("phantom")));
        assert!(s.alphabet().contains(EventId::new("e2")));
    }

    #[test]
    fn initial_overrides_first_state() {
        let s = parse_spec("spec X { initial b; a: e -> b; b: f -> a; }").unwrap();
        assert_eq!(s.state_name(s.initial()), "b");
    }

    #[test]
    fn multiple_specs_per_file() {
        let specs = parse_file("spec A { a: ; } spec B { b: ; }").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name(), "A");
        assert_eq!(specs[1].name(), "B");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_spec("spec X {\n  a: e -> ;\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:"), "message was: {msg}");
    }

    #[test]
    fn duplicate_initial_rejected() {
        let err = parse_spec("spec X { initial a; initial a; a: ; }").unwrap_err();
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn problem_blocks_parse_and_validate() {
        let src = "
            spec A { a: x -> a; }
            spec S { s: y -> s; }
            problem p1 {
              components A;
              service S;
              internal x;
            }
        ";
        let f = parse_source(src).unwrap();
        assert_eq!(f.specs.len(), 2);
        let p = f.problem("p1").unwrap();
        assert_eq!(p.components, vec!["A".to_owned()]);
        assert_eq!(p.service, "S");
        assert_eq!(p.internal, vec!["x".to_owned()]);
        assert!(f.problem("nope").is_none());
        assert!(f.spec("A").is_some());
        // parse_file skips problems.
        assert_eq!(parse_file(src).unwrap().len(), 2);
    }

    #[test]
    fn problem_validation_errors() {
        let unknown = "spec A { a: ; } problem p { components Z; service A; internal e; }";
        assert!(parse_source(unknown)
            .unwrap_err()
            .to_string()
            .contains("unknown spec"));
        let no_service = "spec A { a: ; } problem p { components A; internal e; }";
        assert!(parse_source(no_service)
            .unwrap_err()
            .to_string()
            .contains("no `service`"));
        let no_components = "spec A { a: ; } problem p { service A; internal e; }";
        assert!(parse_source(no_components)
            .unwrap_err()
            .to_string()
            .contains("no components"));
        let no_internal = "spec A { a: ; } problem p { components A; service A; }";
        assert!(parse_source(no_internal)
            .unwrap_err()
            .to_string()
            .contains("no internal"));
    }

    #[test]
    fn missing_spec_keyword_rejected() {
        assert!(parse_file("notspec X { }").is_err());
        assert!(parse_file("").is_err());
    }

    #[test]
    fn trailing_content_after_single_spec_rejected() {
        assert!(parse_spec("spec A { a: ; } spec B { b: ; }").is_err());
    }
}
