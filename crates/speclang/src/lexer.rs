//! Tokenizer for the textual specification language.
//!
//! Tokens are punctuation (`{ } : ; | , ->`) and words. A word is a run
//! of `[A-Za-z0-9_.]` optionally prefixed by `+` or `-` — the paper's
//! channel-event convention (`-d0` puts a message in, `+d0` takes it
//! out) is thus directly writable. `#` starts a comment to end of line.

use std::fmt;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `|`
    Pipe,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// A word: identifier or event name (possibly `+`/`-`-prefixed).
    Word(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Pipe => write!(f, "'|'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Arrow => write!(f, "'->'"),
            TokenKind::Word(w) => write!(f, "`{w}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error with position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes `input`; the final token is always [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        let mut bump = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let c = chars.next().unwrap();
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(&mut chars);
            }
            '#' => {
                while let Some(&c2) = chars.peek() {
                    if c2 == '\n' {
                        break;
                    }
                    bump(&mut chars);
                }
            }
            '{' => {
                bump(&mut chars);
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line: tl,
                    col: tc,
                });
            }
            '}' => {
                bump(&mut chars);
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line: tl,
                    col: tc,
                });
            }
            ':' => {
                bump(&mut chars);
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    line: tl,
                    col: tc,
                });
            }
            ';' => {
                bump(&mut chars);
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line: tl,
                    col: tc,
                });
            }
            '|' => {
                bump(&mut chars);
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    line: tl,
                    col: tc,
                });
            }
            ',' => {
                bump(&mut chars);
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line: tl,
                    col: tc,
                });
            }
            '-' | '+' => {
                let sign = bump(&mut chars);
                // `->` is the arrow; `-x`/`+x` are event names.
                if sign == '-' && chars.peek() == Some(&'>') {
                    bump(&mut chars);
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        line: tl,
                        col: tc,
                    });
                } else {
                    let mut w = String::new();
                    w.push(sign);
                    while let Some(&c2) = chars.peek() {
                        if is_word_char(c2) {
                            w.push(bump(&mut chars));
                        } else {
                            break;
                        }
                    }
                    if w.len() == 1 {
                        return Err(LexError {
                            message: format!("dangling `{sign}`"),
                            line: tl,
                            col: tc,
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::Word(w),
                        line: tl,
                        col: tc,
                    });
                }
            }
            c if is_word_char(c) => {
                let mut w = String::new();
                while let Some(&c2) = chars.peek() {
                    if is_word_char(c2) {
                        w.push(bump(&mut chars));
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Word(w),
                    line: tl,
                    col: tc,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line: tl,
                    col: tc,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_words() {
        assert_eq!(
            kinds("spec A { s0: e -> s1; }"),
            vec![
                TokenKind::Word("spec".into()),
                TokenKind::Word("A".into()),
                TokenKind::LBrace,
                TokenKind::Word("s0".into()),
                TokenKind::Colon,
                TokenKind::Word("e".into()),
                TokenKind::Arrow,
                TokenKind::Word("s1".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn signed_events_vs_arrow() {
        assert_eq!(
            kinds("-d0 -> +a1"),
            vec![
                TokenKind::Word("-d0".into()),
                TokenKind::Arrow,
                TokenKind::Word("+a1".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a # comment with | ; -> junk\nb"),
            vec![
                TokenKind::Word("a".into()),
                TokenKind::Word("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  bb").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn dangling_sign_is_error() {
        let err = lex("x + y").unwrap_err();
        assert!(err.message.contains("dangling"));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn unexpected_char_is_error() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn dotted_names_allowed() {
        assert_eq!(
            kinds("ch.data_0"),
            vec![TokenKind::Word("ch.data_0".into()), TokenKind::Eof]
        );
    }
}
