//! Pretty-printer: renders a [`Spec`] back into the textual language.
//! `parse_spec(print_spec(&s))` reconstructs a machine equal to `s` up
//! to state numbering (exactly equal when state names are unique, which
//! the builder guarantees).

use crate::parser::{ProblemDecl, SourceFile};
use protoquot_spec::Spec;

/// Renders one problem declaration.
pub fn print_problem(p: &ProblemDecl) -> String {
    format!(
        "problem {} {{\n  components {};\n  service {};\n  internal {};\n}}\n",
        p.name,
        p.components.join(", "),
        p.service,
        p.internal.join(", ")
    )
}

/// Renders a whole source file (specs then problems).
pub fn print_source(f: &SourceFile) -> String {
    let mut out = f
        .specs
        .iter()
        .map(print_spec)
        .collect::<Vec<_>>()
        .join("\n");
    for p in &f.problems {
        out.push('\n');
        out.push_str(&print_problem(p));
    }
    out
}

/// Renders one specification.
pub fn print_spec(spec: &Spec) -> String {
    let mut out = String::new();
    out.push_str(&format!("spec {} {{\n", spec.name()));
    // Pin the state numbering so the round trip is exact even when a
    // later state is first mentioned as a transition target.
    out.push_str(&format!(
        "  states {};\n",
        spec.states()
            .map(|s| spec.state_name(s).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  initial {};\n", spec.state_name(spec.initial())));
    // Declare the full alphabet explicitly so interface-only events
    // survive the round trip.
    if !spec.alphabet().is_empty() {
        out.push_str(&format!(
            "  alphabet {};\n",
            spec.alphabet().names().join(", ")
        ));
    }
    for s in spec.states() {
        let mut parts: Vec<String> = Vec::new();
        for &(e, t) in spec.external_from(s) {
            parts.push(format!("{} -> {}", e, spec.state_name(t)));
        }
        for &t in spec.internal_from(s) {
            parts.push(format!("-> {}", spec.state_name(t)));
        }
        if parts.is_empty() {
            out.push_str(&format!("  {}: ;\n", spec.state_name(s)));
        } else {
            out.push_str(&format!(
                "  {}: {};\n",
                spec.state_name(s),
                parts.join(" | ")
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders several specifications into one file.
pub fn print_file(specs: &[Spec]) -> String {
    specs.iter().map(print_spec).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_file, parse_spec};
    use protoquot_spec::SpecBuilder;

    fn sample() -> Spec {
        let mut b = SpecBuilder::new("sample");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "go", c);
        b.ext(a, "-d0", c);
        b.int(c, a);
        b.event("phantom");
        b.initial(c);
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_equality() {
        let s = sample();
        let text = print_spec(&s);
        let back = parse_spec(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn roundtrip_multiple() {
        let s1 = sample();
        let s2 = sample().with_name("other");
        let text = print_file(&[s1.clone(), s2.clone()]);
        let back = parse_file(&text).unwrap();
        assert_eq!(back, vec![s1, s2]);
    }

    #[test]
    fn roundtrip_with_forward_target_reference() {
        // s0's first transition targets s2, which would permute implicit
        // numbering without the `states` declaration.
        let mut b = SpecBuilder::new("fwd");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.ext(s0, "e", s2);
        b.ext(s1, "f", s0);
        b.ext(s2, "g", s1);
        let s = b.build().unwrap();
        let back = parse_spec(&print_spec(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn source_file_roundtrip_with_problems() {
        let src = "spec A { a: x -> a; } spec S { s: y -> s; }
                   problem p { components A; service S; internal x; }";
        let f = crate::parser::parse_source(src).unwrap();
        let printed = print_source(&f);
        let back = crate::parser::parse_source(&printed).unwrap();
        assert_eq!(back.specs, f.specs);
        assert_eq!(back.problems, f.problems);
        assert!(printed.contains("problem p {"));
    }

    #[test]
    fn stuck_state_printed_parsable() {
        let mut b = SpecBuilder::new("stuck");
        b.state("only");
        let s = b.build().unwrap();
        let back = parse_spec(&print_spec(&s)).unwrap();
        assert_eq!(back.num_states(), 1);
    }
}
