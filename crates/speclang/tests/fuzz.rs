//! Robustness: the lexer and parser must never panic, whatever bytes
//! arrive — errors only.

use proptest::prelude::*;
use protoquot_speclang::lexer::lex;
use protoquot_speclang::{parse_file, parse_spec, print_spec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = lex(&input);
    }

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse_file(&input);
        let _ = parse_spec(&input);
    }

    #[test]
    fn parser_never_panics_on_tokenish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("spec".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(";".to_owned()),
                Just("|".to_owned()),
                Just("->".to_owned()),
                Just(":".to_owned()),
                Just(",".to_owned()),
                Just("initial".to_owned()),
                Just("alphabet".to_owned()),
                Just("states".to_owned()),
                Just("problem".to_owned()),
                "[a-z]{1,4}",
            ],
            0..24,
        )
    ) {
        let input = words.join(" ");
        let _ = parse_file(&input);
    }

    /// Anything that parses round-trips through the printer.
    #[test]
    fn successful_parses_roundtrip(
        words in proptest::collection::vec("[a-z]{1,3}", 1..8)
    ) {
        // Build a tiny syntactically valid spec from random words.
        let mut body = String::new();
        for (i, w) in words.iter().enumerate() {
            body.push_str(&format!("s{i}: {w} -> s{};\n", (i + 1) % words.len()));
        }
        let input = format!("spec fuzzed {{\n{body}}}");
        let s = parse_spec(&input).unwrap();
        let back = parse_spec(&print_spec(&s)).unwrap();
        prop_assert_eq!(back, s);
    }
}
