//! The safety phase of the quotient algorithm (paper Figure 5).
//!
//! Builds `C0`, the specification over `Int` with the **largest** trace
//! set such that every trace of `B ‖ C0` projects to a trace of A:
//! a worklist construction over canonical pair sets, creating a state
//! for each distinct `h.r` whose `ok` predicate holds, and an
//! `r --e--> re` transition whenever `φ(h.r, e)` is `ok`.
//!
//! *Vacuous* states (empty pair sets — converter traces no trace of B
//! matches) are trivially safe and belong to the maximal solution, but
//! are useless in practice: B ‖ C never reaches them. They are included
//! only when requested, so that maximality (Theorem 1(ii)) can be
//! tested literally.
//!
//! Two implementations exist:
//!
//! * [`safety_phase`] — the production entry point, backed by the
//!   parallel interned engine in [`mod@crate::safety_engine`];
//! * [`safety_phase_reference`] — the direct Figure 5 transcription
//!   below, kept so the engine's equivalence is *tested*
//!   (`tests/safety_differential.rs`), not assumed. Its worklist is
//!   FIFO, so states are created (and named `c0, c1, …`) in
//!   breadth-first discovery order — the canonical order the engine's
//!   renumbering pass reproduces.

use crate::pairset::{h_epsilon, phi, OkViolation, PairSet};
use protoquot_spec::{spec_from_parts, Alphabet, EventId, NormalSpec, Spec, StateId};
use std::collections::{HashMap, VecDeque};

/// Output of the safety phase.
#[derive(Clone, Debug)]
pub struct SafetyPhase {
    /// `C0` — the maximal safe converter.
    pub c0: Spec,
    /// `f.c` for every state of `c0` (same indexing).
    pub f: Vec<PairSet>,
    /// Whether vacuous states were included.
    pub includes_vacuous: bool,
}

/// Why the safety phase produced nothing: `ok(h.ε)` failed, i.e. even
/// the empty converter lets B violate the service.
#[derive(Clone, Debug)]
pub struct SafetyFailure {
    /// The `ok` violation at the initial pair set.
    pub violation: OkViolation,
}

/// Limits for the construction (the problem is PSPACE-hard; the state
/// space of `C0` is bounded by `2^(|A|·|B|)`).
#[derive(Clone, Copy, Debug)]
pub struct SafetyLimits {
    /// Abort if more than this many converter states are created.
    pub max_states: usize,
}

impl Default for SafetyLimits {
    fn default() -> Self {
        SafetyLimits {
            max_states: 1_000_000,
        }
    }
}

/// Runs the Figure 5 construction via the parallel interned engine
/// (single-threaded here; see [`crate::safety_engine::safety_engine`]
/// for the multi-threaded entry point).
///
/// * `b` — the fixed components (e.g. `P0 ‖ channels ‖ Q1`), alphabet
///   `Int ∪ Ext`;
/// * `na` — the normalized service specification, alphabet `Ext`;
/// * `int` — the converter interface;
/// * `include_vacuous` — see module docs.
///
/// Returns `Err` iff no safe converter exists, `Ok(None)` if limits were
/// exceeded.
pub fn safety_phase(
    b: &Spec,
    na: &NormalSpec,
    int: &Alphabet,
    include_vacuous: bool,
    limits: SafetyLimits,
) -> Result<Option<SafetyPhase>, SafetyFailure> {
    crate::safety_engine::safety_engine(b, na, int, include_vacuous, limits, 1)
        .map(|out| out.map(|o| o.phase))
}

/// The direct Figure 5 worklist transcription (single-threaded, pair
/// sets cloned as `HashMap` keys). Kept verbatim as the oracle for
/// `tests/safety_differential.rs`; use [`safety_phase`] elsewhere.
pub fn safety_phase_reference(
    b: &Spec,
    na: &NormalSpec,
    int: &Alphabet,
    include_vacuous: bool,
    limits: SafetyLimits,
) -> Result<Option<SafetyPhase>, SafetyFailure> {
    let ext = b.alphabet().difference(int);
    let h0 = h_epsilon(na, b, &ext).map_err(|violation| SafetyFailure { violation })?;

    let mut index: HashMap<PairSet, StateId> = HashMap::new();
    let mut f: Vec<PairSet> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut transitions: Vec<(StateId, EventId, StateId)> = Vec::new();
    let mut work: VecDeque<StateId> = VecDeque::new();

    // The budget covers every state, including the initial one: check
    // it *before* any insertion so an exceeded budget never leaves a
    // phantom name/pair-set entry behind.
    if limits.max_states == 0 {
        return Ok(None);
    }
    index.insert(h0.clone(), StateId(0));
    names.push("c0".to_owned());
    f.push(h0);
    work.push_back(StateId(0));

    while let Some(c) = work.pop_front() {
        for e in int.iter() {
            let j = match phi(na, b, &ext, &f[c.index()], e) {
                Ok(j) => j,
                Err(_) => continue, // not ok: omit the transition
            };
            if j.is_empty() && !include_vacuous {
                continue;
            }
            let target = match index.get(&j) {
                Some(&t) => t,
                None => {
                    let t = StateId(names.len() as u32);
                    // Budget first, insertions after (see above).
                    if t.index() >= limits.max_states {
                        return Ok(None);
                    }
                    names.push(format!("c{}", t.index()));
                    index.insert(j.clone(), t);
                    f.push(j);
                    work.push_back(t);
                    t
                }
            };
            transitions.push((c, e, target));
        }
    }

    let c0 = spec_from_parts(
        "C0".to_owned(),
        int.clone(),
        names,
        StateId(0),
        transitions,
        Vec::new(),
    )
    .expect("safety phase constructs a valid spec");
    Ok(Some(SafetyPhase {
        c0,
        f,
        includes_vacuous: include_vacuous,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{compose, normalize, satisfies_safety, SpecBuilder};

    /// Service over {acc, del}; B is a relay that must be told (`fwd`)
    /// to move a message along: acc --> (needs fwd) --> del.
    fn relay_problem() -> (Spec, Spec, Alphabet) {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();

        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        // A disruptive option: the converter could also trigger `dup`
        // which makes B deliver without a new accept — unsafe.
        let b3 = bb.state("b3");
        bb.ext(b2, "dup", b3);
        bb.ext(b3, "del", b2);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["fwd", "dup"]);
        (service, b, int)
    }

    #[test]
    fn safety_phase_builds_safe_converter() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        let out = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        // The converter must allow fwd but never dup (dup leads to
        // del.del which the service forbids).
        let dup = EventId::new("dup");
        for (_, e, _) in out.c0.external_transitions() {
            assert_ne!(e, dup, "unsafe event admitted: {:?}", out.c0);
        }
        // And B ‖ C0 must satisfy the service w.r.t. safety.
        let composite = compose(&b, &out.c0);
        assert!(satisfies_safety(&composite, &service).unwrap().is_ok());
    }

    #[test]
    fn safety_phase_fails_when_b_unconstrained() {
        // B can `del` immediately regardless of the converter.
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        bb.ext(b0, "del", b0);
        bb.event("acc");
        bb.event("m");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m"]);
        let err = safety_phase(
            &b,
            &normalize(&service),
            &int,
            false,
            SafetyLimits::default(),
        )
        .unwrap_err();
        assert_eq!(err.violation.event, EventId::new("del"));
    }

    #[test]
    fn vacuous_states_appear_only_when_requested() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        let lean = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let full = safety_phase(&b, &na, &int, true, SafetyLimits::default())
            .unwrap()
            .unwrap();
        assert!(lean.f.iter().all(|j| !j.is_empty()));
        assert!(full.f.iter().any(|j| j.is_empty()));
        assert!(full.c0.num_states() > lean.c0.num_states());
        // The vacuous absorbing state self-loops on every Int event.
        let vac = full
            .f
            .iter()
            .position(|j| j.is_empty())
            .map(|i| StateId(i as u32))
            .unwrap();
        assert_eq!(full.c0.external_from(vac).len(), int.len());
        for &(_, t) in full.c0.external_from(vac) {
            assert_eq!(t, vac);
        }
    }

    #[test]
    fn state_budget_respected() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        let out = safety_phase(&b, &na, &int, false, SafetyLimits { max_states: 1 }).unwrap();
        assert!(out.is_none());
    }

    /// A zero budget admits no states at all — not even the initial
    /// one (regression: the initial insertion used to bypass the
    /// check).
    #[test]
    fn zero_state_budget_admits_nothing() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        let out = safety_phase(&b, &na, &int, false, SafetyLimits { max_states: 0 }).unwrap();
        assert!(out.is_none());
        let out =
            safety_phase_reference(&b, &na, &int, false, SafetyLimits { max_states: 0 }).unwrap();
        assert!(out.is_none());
    }

    /// The budget boundary is exact, for both implementations: a budget
    /// of exactly the reachable state count succeeds, one less fails —
    /// and the failing run performs no insertion for the over-budget
    /// state (regression: the budget must be checked before `names` or
    /// any other per-state structure grows).
    #[test]
    fn state_budget_boundary_is_exact() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        for include_vacuous in [false, true] {
            let full = safety_phase(&b, &na, &int, include_vacuous, SafetyLimits::default())
                .unwrap()
                .unwrap();
            let n = full.c0.num_states();
            for run in [safety_phase, safety_phase_reference] {
                let exact = run(
                    &b,
                    &na,
                    &int,
                    include_vacuous,
                    SafetyLimits { max_states: n },
                )
                .unwrap()
                .expect("budget == reachable states must succeed");
                assert_eq!(exact.c0.num_states(), n);
                assert_eq!(exact.f.len(), n, "no phantom pair-set entry");
                let over = run(
                    &b,
                    &na,
                    &int,
                    include_vacuous,
                    SafetyLimits { max_states: n - 1 },
                )
                .unwrap();
                assert!(over.is_none(), "budget == n-1 must be exceeded");
            }
        }
    }
}
