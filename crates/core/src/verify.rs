//! Independent verification that a candidate converter actually works:
//! composes `B ‖ C` and runs the full satisfaction check against `A`.
//!
//! The quotient algorithm is proven correct in the paper, but this crate
//! re-checks every derivation in tests and benches — the implementation,
//! not the theorem, is what could be wrong.

use protoquot_spec::{
    compose, satisfies, verify_system, Spec, SpecError, VerifyEngineStats, Violation,
};

/// Result of a verification: `Ok(())`, a counterexample, or a malformed
/// setup (alphabet mismatch between `B ‖ C` and `A`).
#[derive(Debug)]
pub enum VerifyError {
    /// The composite's interface differs from the service's — usually a
    /// wrong `Int` split.
    Setup(SpecError),
    /// `B ‖ C` does not satisfy `A`.
    Unsatisfied(Violation),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Setup(e) => write!(f, "verification setup error: {e}"),
            VerifyError::Unsatisfied(v) => write!(f, "converter does not work: {v}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks `B ‖ converter satisfies A`.
///
/// ```
/// use protoquot_core::{solve, verify_converter};
/// use protoquot_spec::{Alphabet, SpecBuilder};
/// let mut sb = SpecBuilder::new("S");
/// let u0 = sb.state("u0");
/// let u1 = sb.state("u1");
/// sb.ext(u0, "acc", u1);
/// sb.ext(u1, "del", u0);
/// let service = sb.build().unwrap();
/// let mut bb = SpecBuilder::new("B");
/// let b0 = bb.state("b0");
/// let b1 = bb.state("b1");
/// let b2 = bb.state("b2");
/// bb.ext(b0, "acc", b1);
/// bb.ext(b1, "fwd", b2);
/// bb.ext(b2, "del", b0);
/// let b = bb.build().unwrap();
/// let int = Alphabet::from_names(["fwd"]);
/// let q = solve(&b, &service, &int).unwrap();
/// verify_converter(&b, &service, &q.converter).unwrap();
/// ```
pub fn verify_converter(b: &Spec, a: &Spec, converter: &Spec) -> Result<(), VerifyError> {
    match converter_verdict(b, a, converter) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(v)) => Err(VerifyError::Unsatisfied(v)),
        Err(e) => Err(VerifyError::Setup(e)),
    }
}

/// Like [`verify_converter`], but mirrors the shape of
/// [`protoquot_spec::satisfies`]: the outer error is a malformed setup,
/// the inner result is the verdict with its counterexample. Used by the
/// soak machinery to compare the *static* verdict against dynamic runs
/// without collapsing the violation details into a display-only error.
pub fn converter_verdict(
    b: &Spec,
    a: &Spec,
    converter: &Spec,
) -> Result<Result<(), Violation>, SpecError> {
    converter_verdict_with(b, a, converter, 1).map(|(verdict, _)| verdict)
}

/// [`converter_verdict`] on the compiled verification engine with an
/// explicit worker-thread count, also returning the engine counters.
/// The verdict (and any witness inside it) is bit identical to the
/// reference at every thread count.
pub fn converter_verdict_with(
    b: &Spec,
    a: &Spec,
    converter: &Spec,
    threads: usize,
) -> Result<(Result<(), Violation>, VerifyEngineStats), SpecError> {
    let out = verify_system(&[b, converter], a, threads)?;
    Ok((out.verdict, out.stats))
}

/// The retained reference oracle: materialize `B ‖ C` with the pairwise
/// [`protoquot_spec::compose()`] and run the interpreted
/// [`protoquot_spec::satisfies`]. `tests/verify_differential.rs` holds
/// [`converter_verdict`] to this bit for bit.
pub fn converter_verdict_reference(
    b: &Spec,
    a: &Spec,
    converter: &Spec,
) -> Result<Result<(), Violation>, SpecError> {
    let composite = compose(b, converter);
    satisfies(&composite, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use protoquot_spec::{Alphabet, SpecBuilder};

    fn service() -> Spec {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        sb.build().unwrap()
    }

    fn relay() -> Spec {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        bb.build().unwrap()
    }

    #[test]
    fn derived_converter_verifies() {
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["fwd"]);
        let q = solve(&b, &a, &int).unwrap();
        verify_converter(&b, &a, &q.converter).unwrap();
    }

    #[test]
    fn broken_converter_rejected() {
        let b = relay();
        let a = service();
        // A converter that never forwards: deadlock after acc.
        let mut cb = SpecBuilder::new("stuck");
        cb.state("c0");
        cb.event("fwd");
        let stuck = cb.build().unwrap();
        match verify_converter(&b, &a, &stuck) {
            Err(VerifyError::Unsatisfied(Violation::Progress { .. })) => {}
            other => panic!("expected progress violation, got {other:?}"),
        }
    }

    #[test]
    fn wrong_interface_rejected() {
        let b = relay();
        let a = service();
        // Converter whose alphabet leaves `fwd` exposed.
        let mut cb = SpecBuilder::new("noop");
        cb.state("c0");
        cb.event("unrelated");
        let noop = cb.build().unwrap();
        match verify_converter(&b, &a, &noop) {
            Err(VerifyError::Setup(_)) => {}
            other => panic!("expected setup error, got {other:?}"),
        }
    }

    #[test]
    fn engine_verdict_matches_reference_oracle() {
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["fwd"]);
        let q = solve(&b, &a, &int).unwrap();
        let mut cb = SpecBuilder::new("stuck");
        cb.state("c0");
        cb.event("fwd");
        let stuck = cb.build().unwrap();
        for converter in [&q.converter, &stuck] {
            let reference = converter_verdict_reference(&b, &a, converter);
            for threads in [1, 2, 8] {
                let engine =
                    converter_verdict_with(&b, &a, converter, threads).map(|(verdict, _)| verdict);
                assert_eq!(format!("{reference:?}"), format!("{engine:?}"));
            }
        }
    }

    #[test]
    fn error_display() {
        let e = VerifyError::Unsatisfied(Violation::Safety {
            trace: protoquot_spec::trace_of(&["x"]),
        });
        assert!(e.to_string().contains("does not work"));
    }
}
