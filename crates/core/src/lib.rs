//! # protoquot-core
//!
//! The quotient algorithm of *Calvert & Lam, "Deriving a Protocol
//! Converter: A Top-Down Method" (SIGCOMM 1989)*, §4 — the paper's
//! primary contribution.
//!
//! Given
//!
//! * `B` — the specification of the fixed components of a conversion
//!   system (e.g. `P0 ‖ channels ‖ Q1`), with alphabet `Int ∪ Ext`, and
//! * `A` — a service specification with alphabet `Ext`,
//!
//! [`solve`] produces the **maximal** converter `C` over `Int` such that
//! `B ‖ C` satisfies `A` (both safety and progress), or proves that no
//! converter exists. The construction runs in two phases:
//!
//! 1. **safety** ([`safety::safety_phase`], paper Fig. 5) — a worklist
//!    construction over canonical sets of `(a, b)` pairs guarded by the
//!    `ok` predicate; the result `C0` has the largest trace set that is
//!    safe;
//! 2. **progress** ([`progress::progress_phase`], paper Fig. 6) — a
//!    fixpoint deletion of *bad* states whose composite `τ*` cannot
//!    cover any service acceptance set.
//!
//! Extras beyond the bare algorithm:
//!
//! * [`verify_converter`] — independent re-check of any derivation;
//! * [`prune_useless`] — automated removal of the "superfluous"
//!   maximal-converter behaviour the paper trims by hand (Fig. 14's
//!   dotted boxes);
//! * full diagnostics on failure ([`QuotientError`]), distinguishing a
//!   safety-impossible problem from a safety/progress conflict.
//!
//! ## Example
//!
//! ```
//! use protoquot_spec::{Alphabet, SpecBuilder, compose, satisfies};
//! use protoquot_core::solve;
//!
//! // Service: strictly alternating accept/deliver.
//! let mut sb = SpecBuilder::new("service");
//! let u0 = sb.state("u0");
//! let u1 = sb.state("u1");
//! sb.ext(u0, "acc", u1);
//! sb.ext(u1, "del", u0);
//! let service = sb.build().unwrap();
//!
//! // Fixed components: a relay that needs a `fwd` nudge to deliver.
//! let mut bb = SpecBuilder::new("relay");
//! let b0 = bb.state("b0");
//! let b1 = bb.state("b1");
//! let b2 = bb.state("b2");
//! bb.ext(b0, "acc", b1);
//! bb.ext(b1, "fwd", b2);
//! bb.ext(b2, "del", b0);
//! let relay = bb.build().unwrap();
//!
//! let int = Alphabet::from_names(["fwd"]);
//! let quotient = solve(&relay, &service, &int).unwrap();
//! let composite = compose(&relay, &quotient.converter);
//! assert!(satisfies(&composite, &service).unwrap().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pairset;
pub mod progress;
pub mod prune;
pub mod safety;
pub mod safety_engine;
pub mod solver;
pub mod verify;

pub use pairset::{close, h_epsilon, phi, OkViolation, Pair, PairSet};
pub use progress::{
    progress_phase, progress_phase_reference, progress_phase_reference_with, progress_phase_with,
    ProgressEngineStats, ProgressPhase, ProgressStrategy, ProgressWitness,
};
pub use prune::prune_useless;
pub use safety::{safety_phase, safety_phase_reference, SafetyFailure, SafetyLimits, SafetyPhase};
pub use safety_engine::{safety_engine, SafetyEngineOutput, SafetyEngineStats};
pub use solver::{
    solve, solve_constrained, solve_normalized, solve_with, validate_problem, Quotient,
    QuotientError, QuotientOptions, QuotientStats,
};
pub use verify::{
    converter_verdict, converter_verdict_reference, converter_verdict_with, verify_converter,
    VerifyError,
};
