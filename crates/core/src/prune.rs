//! Removal of "superfluous" converter behaviour.
//!
//! The quotient algorithm returns the *maximal* converter, which — as
//! the paper notes for its Figure 14 (the dotted boxes) — may contain
//! cycles that are harmless but contribute nothing to progress,
//! decreasing efficiency. The paper observes that removing them is
//! "computationally expensive and best done by hand"; this module
//! automates the hand-procedure greedily: tentatively delete a
//! transition, re-verify `B ‖ C satisfies A`, and keep the deletion if
//! verification still passes. Quadratic in the number of transitions
//! times the cost of verification — fine at paper scale, and exactly
//! the expense the paper predicted.

use crate::verify::verify_converter;
use protoquot_spec::{prune_unreachable, spec_from_parts, EventId, Spec, StateId};

/// Greedily removes converter transitions (and then unreachable states)
/// while `B ‖ C` still satisfies `A`. The input converter must verify;
/// the result verifies and is transition-minimal w.r.t. single
/// deletions in the order tried.
pub fn prune_useless(b: &Spec, a: &Spec, converter: &Spec) -> Spec {
    debug_assert!(verify_converter(b, a, converter).is_ok());
    let mut transitions: Vec<(StateId, EventId, StateId)> =
        converter.external_transitions().collect();
    // Try removing later transitions first: the construction order puts
    // the "core" behaviour near the initial state.
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = transitions.len();
        while i > 0 {
            i -= 1;
            let mut candidate = transitions.clone();
            candidate.remove(i);
            let trial = rebuild(converter, &candidate);
            if verify_converter(b, a, &trial).is_ok() {
                transitions = candidate;
                changed = true;
            }
        }
    }
    prune_unreachable(&rebuild(converter, &transitions))
}

fn rebuild(template: &Spec, transitions: &[(StateId, EventId, StateId)]) -> Spec {
    spec_from_parts(
        format!("{}/pruned", template.name()),
        template.alphabet().clone(),
        template
            .states()
            .map(|s| template.state_name(s).to_owned())
            .collect(),
        template.initial(),
        transitions.to_vec(),
        Vec::new(),
    )
    .expect("pruning preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use protoquot_spec::{Alphabet, SpecBuilder};

    /// B offers a useless detour: after acc the converter may bounce
    /// `ping`/`pong` any number of times before `fwd`. The maximal
    /// converter includes the bounce cycle; pruning removes it.
    #[test]
    fn prune_removes_useless_cycle() {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let a = sb.build().unwrap();

        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b1b = bb.state("b1b");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "ping", b1b);
        bb.ext(b1b, "pong", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b1b, "fwd", b2);
        bb.ext(b2, "del", b0);
        let b = bb.build().unwrap();

        let int = Alphabet::from_names(["ping", "pong", "fwd"]);
        let q = solve(&b, &a, &int).unwrap();
        let ping = protoquot_spec::EventId::new("ping");
        assert!(
            q.converter
                .external_transitions()
                .any(|(_, e, _)| e == ping),
            "maximal converter should include the detour"
        );
        let pruned = prune_useless(&b, &a, &q.converter);
        assert!(
            pruned.external_transitions().all(|(_, e, _)| e != ping),
            "pruned converter should drop the detour: {:?}",
            pruned
        );
        assert!(pruned.num_external() < q.converter.num_external());
        crate::verify::verify_converter(&b, &a, &pruned).unwrap();
    }

    /// Pruning a minimal converter changes nothing.
    #[test]
    fn prune_is_identity_on_minimal() {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let a = sb.build().unwrap();
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["fwd"]);
        let q = solve(&b, &a, &int).unwrap();
        let pruned = prune_useless(&b, &a, &q.converter);
        assert_eq!(pruned.num_external(), q.converter.num_external());
        assert_eq!(pruned.num_states(), q.converter.num_states());
    }
}
