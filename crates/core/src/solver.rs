//! The public quotient API: problem statement, options, diagnostics.
//!
//! `solve(B, A, Int)` answers the paper's §4 problem: given `B` over
//! `Int ∪ Ext` and a service `A` over `Ext`, produce `C` over `Int` with
//! `B ‖ C satisfies A`, or report that none exists — with which phase
//! ruled it out and a witness.

use crate::pairset::OkViolation;
use crate::progress::{
    progress_phase_with, ProgressEngineStats, ProgressStrategy, ProgressWitness,
};
use crate::safety::{SafetyLimits, SafetyPhase};
use crate::safety_engine::{safety_engine, SafetyEngineStats};
use protoquot_spec::{normalize, Alphabet, NormalSpec, Spec, SpecError};
use std::time::{Duration, Instant};

/// Options controlling [`solve_with`].
#[derive(Clone, Debug)]
pub struct QuotientOptions {
    /// Include vacuous converter states (traces of C no trace of B
    /// matches). Required for literal maximality; useless in practice.
    pub include_vacuous: bool,
    /// Safety-phase state budget.
    pub max_states: usize,
    /// Progress fixpoint strategy (paper-exact full product by
    /// default; see [`ProgressStrategy`]).
    pub strategy: ProgressStrategy,
    /// Worker threads for the safety-phase engine (clamped to ≥ 1).
    /// The result is bit-identical at every thread count.
    pub safety_threads: usize,
}

impl Default for QuotientOptions {
    fn default() -> Self {
        QuotientOptions {
            include_vacuous: false,
            max_states: 1_000_000,
            strategy: ProgressStrategy::FullProduct,
            safety_threads: 1,
        }
    }
}

/// A successful derivation.
#[derive(Clone, Debug)]
pub struct Quotient {
    /// The derived converter (maximal solution, unreachable states
    /// pruned).
    pub converter: Spec,
    /// The raw safety-phase output `C0` (before progress pruning).
    pub safety_output: Spec,
    /// Statistics about the run.
    pub stats: QuotientStats,
}

/// Run statistics.
#[derive(Clone, Debug, Default)]
pub struct QuotientStats {
    /// States of `C0`.
    pub safety_states: usize,
    /// Transitions of `C0`.
    pub safety_transitions: usize,
    /// Progress fixpoint iterations.
    pub progress_iterations: usize,
    /// States removed by the progress phase.
    pub removed_states: usize,
    /// Wall time of the safety phase.
    pub safety_time: Duration,
    /// Wall time of the progress phase.
    pub progress_time: Duration,
    /// Work counters from the incremental progress engine.
    pub progress_engine: ProgressEngineStats,
    /// Work counters from the interned safety engine.
    pub safety_engine: SafetyEngineStats,
}

/// Why no converter was produced.
#[derive(Debug)]
pub enum QuotientError {
    /// The problem statement is malformed (alphabet mismatches).
    BadProblem(SpecError),
    /// `ok(h.ε)` fails: B violates the service no matter what the
    /// converter does. No converter exists even w.r.t. safety.
    NoSafeConverter {
        /// The initial `ok` violation.
        violation: OkViolation,
    },
    /// A maximal safe converter exists but every candidate admits a
    /// progress violation: safety and progress requirements conflict
    /// (the paper's §5 symmetric configuration). No converter exists.
    NoProgressingConverter {
        /// The safety-phase output, for diagnosis (boxed: the error
        /// path should not weigh down every `Result`).
        safety_output: Box<Spec>,
        /// Progress iterations performed before emptying.
        iterations: usize,
        /// Why the first bad state was bad.
        witness: Option<ProgressWitness>,
    },
    /// The safety-phase state budget was exceeded.
    StateBudgetExceeded {
        /// The budget that was exceeded.
        max_states: usize,
    },
}

impl std::fmt::Display for QuotientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuotientError::BadProblem(e) => write!(f, "malformed quotient problem: {e}"),
            QuotientError::NoSafeConverter { violation } => write!(
                f,
                "no converter exists (safety): B can perform external event `{}` \
                 from state {} which the service cannot accept",
                violation.event, violation.b_state
            ),
            QuotientError::NoProgressingConverter { iterations, .. } => write!(
                f,
                "no converter exists (progress): every safe converter admits a \
                 deadlock the service forbids (fixpoint after {iterations} iterations)"
            ),
            QuotientError::StateBudgetExceeded { max_states } => {
                write!(f, "safety phase exceeded the {max_states}-state budget")
            }
        }
    }
}

impl std::error::Error for QuotientError {}

/// Solves the quotient problem with default options.
pub fn solve(b: &Spec, a: &Spec, int: &Alphabet) -> Result<Quotient, QuotientError> {
    solve_with(b, a, int, &QuotientOptions::default())
}

/// Solves the quotient problem.
pub fn solve_with(
    b: &Spec,
    a: &Spec,
    int: &Alphabet,
    options: &QuotientOptions,
) -> Result<Quotient, QuotientError> {
    validate_problem(b, a, int).map_err(QuotientError::BadProblem)?;
    let na = normalize(a);
    solve_normalized(b, &na, int, options)
}

/// Solves against an already-normalized service (used by benches to
/// exclude normalization cost, and by callers deriving several
/// converters against one service).
pub fn solve_normalized(
    b: &Spec,
    na: &NormalSpec,
    int: &Alphabet,
    options: &QuotientOptions,
) -> Result<Quotient, QuotientError> {
    let t0 = Instant::now();
    let (safety, engine_stats): (SafetyPhase, SafetyEngineStats) = match safety_engine(
        b,
        na,
        int,
        options.include_vacuous,
        SafetyLimits {
            max_states: options.max_states,
        },
        options.safety_threads,
    ) {
        Ok(Some(out)) => (out.phase, out.stats),
        Ok(None) => {
            return Err(QuotientError::StateBudgetExceeded {
                max_states: options.max_states,
            })
        }
        Err(fail) => {
            return Err(QuotientError::NoSafeConverter {
                violation: fail.violation,
            })
        }
    };
    let safety_time = t0.elapsed();

    let t1 = Instant::now();
    let progress = progress_phase_with(b, na, &safety, options.strategy);
    let progress_time = t1.elapsed();

    let stats = QuotientStats {
        safety_states: safety.c0.num_states(),
        safety_transitions: safety.c0.num_external(),
        progress_iterations: progress.iterations,
        removed_states: progress.removed,
        safety_time,
        progress_time,
        progress_engine: progress.stats,
        safety_engine: engine_stats,
    };
    match progress.converter {
        Some(converter) => Ok(Quotient {
            converter,
            safety_output: safety.c0,
            stats,
        }),
        None => Err(QuotientError::NoProgressingConverter {
            safety_output: Box::new(safety.c0),
            iterations: progress.iterations,
            witness: progress.first_witness,
        }),
    }
}

/// Solves a *constrained* quotient: derive the maximal converter whose
/// trace set is additionally contained in the constraint `K` (alphabet
/// ⊆ `Int`). This folds Okumura's "conversion seed" idea into the
/// top-down method — but with the top-down guarantee intact: if this
/// returns an error, **no** converter compatible with the constraint
/// exists for the given service.
///
/// Implementation: constrain `B` by the synchronous product `B ⊗ K`
/// (shared events stay visible, so `K` gates when `Int` events can
/// happen) and run the ordinary quotient. Vacuous states are forced
/// off so every converter state is realisable — hence inside `K`.
///
/// ```
/// use protoquot_spec::{Alphabet, SpecBuilder};
/// use protoquot_core::{solve, solve_constrained};
///
/// // Service and a two-path relay: the converter may use fast or slow.
/// let mut sb = SpecBuilder::new("S");
/// let u0 = sb.state("u0");
/// let u1 = sb.state("u1");
/// sb.ext(u0, "acc", u1);
/// sb.ext(u1, "del", u0);
/// let service = sb.build().unwrap();
/// let mut bb = SpecBuilder::new("B");
/// let b0 = bb.state("b0");
/// let b1 = bb.state("b1");
/// let b2 = bb.state("b2");
/// bb.ext(b0, "acc", b1);
/// bb.ext(b1, "fast", b2);
/// bb.ext(b1, "slow", b2);
/// bb.ext(b2, "del", b0);
/// let b = bb.build().unwrap();
/// let int = Alphabet::from_names(["fast", "slow"]);
///
/// // Constraint: never use the slow path.
/// let mut kb = SpecBuilder::new("K");
/// let k0 = kb.state("k0");
/// kb.ext(k0, "fast", k0);
/// kb.event("slow");
/// let k = kb.build().unwrap();
///
/// let unconstrained = solve(&b, &service, &int).unwrap();
/// let constrained = solve_constrained(&b, &k, &service, &int).unwrap();
/// let slow = protoquot_spec::EventId::new("slow");
/// assert!(unconstrained.converter.external_transitions().any(|(_, e, _)| e == slow));
/// assert!(constrained.converter.external_transitions().all(|(_, e, _)| e != slow));
/// ```
pub fn solve_constrained(
    b: &Spec,
    constraint: &Spec,
    a: &Spec,
    int: &Alphabet,
) -> Result<Quotient, QuotientError> {
    if !constraint.alphabet().is_subset(int) {
        return Err(QuotientError::BadProblem(SpecError::InterfaceMismatch {
            left: format!("Σ_K {}", constraint.alphabet()),
            right: format!("Int {}", int),
        }));
    }
    let constrained_b = protoquot_spec::sync_product(b, constraint);
    let options = QuotientOptions {
        include_vacuous: false,
        ..Default::default()
    };
    solve_with(&constrained_b, a, int, &options)
}

/// Checks the §4 interface conditions: `Int ⊆ Σ_B`, `Σ_A = Σ_B − Int`,
/// and `Int ∩ Σ_A = ∅`.
pub fn validate_problem(b: &Spec, a: &Spec, int: &Alphabet) -> Result<(), SpecError> {
    if !int.is_subset(b.alphabet()) {
        return Err(SpecError::InterfaceMismatch {
            left: format!("Int {}", int),
            right: format!("Σ_B {}", b.alphabet()),
        });
    }
    let ext = b.alphabet().difference(int);
    if &ext != a.alphabet() {
        return Err(SpecError::InterfaceMismatch {
            left: format!("Σ_B − Int {}", ext),
            right: format!("Σ_A {}", a.alphabet()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{compose, satisfies, SpecBuilder};

    fn service() -> Spec {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        sb.build().unwrap()
    }

    fn relay() -> Spec {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        bb.build().unwrap()
    }

    #[test]
    fn end_to_end_solve_and_verify() {
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["fwd"]);
        let q = solve(&b, &a, &int).unwrap();
        assert_eq!(q.converter.alphabet(), &int);
        assert!(q.converter.is_internal_free());
        assert!(satisfies(&compose(&b, &q.converter), &a).unwrap().is_ok());
        assert!(q.stats.safety_states >= q.converter.num_states());
    }

    #[test]
    fn bad_problem_int_not_subset() {
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["not_in_b"]);
        assert!(matches!(
            solve(&b, &a, &int),
            Err(QuotientError::BadProblem(_))
        ));
    }

    #[test]
    fn bad_problem_ext_mismatch() {
        let b = relay();
        let mut sb = SpecBuilder::new("S2");
        let u0 = sb.state("u0");
        sb.ext(u0, "something_else", u0);
        let a = sb.build().unwrap();
        let int = Alphabet::from_names(["fwd"]);
        assert!(matches!(
            solve(&b, &a, &int),
            Err(QuotientError::BadProblem(_))
        ));
    }

    #[test]
    fn no_safe_converter_reported() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        bb.ext(b0, "del", b0);
        bb.event("acc");
        bb.event("m");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m"]);
        match solve(&b, &service(), &int) {
            Err(QuotientError::NoSafeConverter { violation }) => {
                assert_eq!(violation.event.name(), "del");
            }
            other => panic!("expected NoSafeConverter, got {other:?}"),
        }
    }

    #[test]
    fn no_progressing_converter_reported() {
        // B deadlocks after acc; the only Int event is a decoy B never
        // enables usefully.
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        bb.ext(b0, "acc", b1);
        bb.event("decoy");
        bb.event("del");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["decoy"]);
        match solve(&b, &service(), &int) {
            Err(QuotientError::NoProgressingConverter { safety_output, .. }) => {
                assert!(safety_output.num_states() >= 1);
            }
            other => panic!("expected NoProgressingConverter, got {other:?}"),
        }
    }

    #[test]
    fn budget_error_reported() {
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["fwd"]);
        let opts = QuotientOptions {
            max_states: 1,
            ..Default::default()
        };
        assert!(matches!(
            solve_with(&b, &a, &int, &opts),
            Err(QuotientError::StateBudgetExceeded { max_states: 1 })
        ));
    }

    #[test]
    fn constrained_solve_respects_and_reports() {
        // Constraint that forbids the only useful event: no converter.
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["fwd"]);
        let mut kb = SpecBuilder::new("K");
        kb.state("k0");
        kb.event("fwd");
        let no_fwd = kb.build().unwrap();
        assert!(solve_constrained(&b, &no_fwd, &a, &int).is_err());

        // Permissive constraint: same answer as unconstrained (the
        // composite still verifies against the original B).
        let mut kb = SpecBuilder::new("K");
        let k0 = kb.state("k0");
        kb.ext(k0, "fwd", k0);
        let any = kb.build().unwrap();
        let q = solve_constrained(&b, &any, &a, &int).unwrap();
        assert!(satisfies(&compose(&b, &q.converter), &a).unwrap().is_ok());
    }

    #[test]
    fn constrained_solve_rejects_oversized_constraint_alphabet() {
        let b = relay();
        let a = service();
        let int = Alphabet::from_names(["fwd"]);
        let mut kb = SpecBuilder::new("K");
        let k0 = kb.state("k0");
        kb.ext(k0, "not_in_int", k0);
        let k = kb.build().unwrap();
        assert!(matches!(
            solve_constrained(&b, &k, &a, &int),
            Err(QuotientError::BadProblem(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = QuotientError::StateBudgetExceeded { max_states: 7 };
        assert!(e.to_string().contains('7'));
    }
}
