//! The `(a, b)` pair-set machinery of §4.
//!
//! Each state `c` of the derived converter carries `f.c` — a set of
//! pairs `(a, b)` recording, for every trace `t` of B that matches the
//! converter trace `r` leading to `c` (`i.t = r`), the B-state `b`
//! reached and the service tracker state `a = ψ_A.(o.t)`.
//!
//! Pair sets are kept closed under:
//!
//! * internal moves of B (`b λ b'` keeps `a`), and
//! * environment moves (`b --g--> b'` with `g ∈ Ext` advances `a` by the
//!   ψ-step on `g`),
//!
//! because the paper's `h.r` is closed under both (the `↦` relation
//! absorbs them between `Int` events). The paper's `ok` predicate —
//! every `Ext` event enabled in `b` is allowed by `a` — is exactly the
//! condition that this closure never needs an undefined ψ-step, so the
//! closure computation *is* the `ok` check.

use protoquot_spec::{Alphabet, EventId, NormalSpec, Spec, StateId};
use std::collections::HashSet;

/// One `(a, b)` pair: the service hub (ψ-state index in the
/// [`NormalSpec`]) and the B-state.
pub type Pair = (usize, StateId);

/// A canonical (sorted, deduplicated) set of `(a, b)` pairs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PairSet(Vec<Pair>);

impl PairSet {
    /// The empty pair set (the `f.c` of a *vacuous* converter state — no
    /// trace of B matches the trace leading here).
    pub fn empty() -> PairSet {
        PairSet(Vec::new())
    }

    /// Canonicalises an arbitrary collection of pairs.
    pub fn from_pairs<I: IntoIterator<Item = Pair>>(pairs: I) -> PairSet {
        let mut v: Vec<Pair> = pairs.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        PairSet(v)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the vacuous set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Pair> + '_ {
        self.0.iter().copied()
    }

    /// Membership test.
    pub fn contains(&self, p: Pair) -> bool {
        self.0.binary_search(&p).is_ok()
    }
}

/// Why a pair-set closure failed the `ok` predicate: B can perform an
/// external event the service cannot accept here.
#[derive(Clone, Debug)]
pub struct OkViolation {
    /// The service hub at the violation.
    pub hub: usize,
    /// The B-state enabling the forbidden event.
    pub b_state: StateId,
    /// The forbidden external event.
    pub event: EventId,
}

/// Closes `seed` under internal B-moves and tracked `Ext` moves,
/// checking `ok` along the way (see module docs).
pub fn close(
    na: &NormalSpec,
    b: &Spec,
    ext: &Alphabet,
    seed: impl IntoIterator<Item = Pair>,
) -> Result<PairSet, OkViolation> {
    let mut seen: HashSet<Pair> = HashSet::new();
    let mut work: Vec<Pair> = Vec::new();
    for p in seed {
        if seen.insert(p) {
            work.push(p);
        }
    }
    while let Some((hub, bs)) = work.pop() {
        for &t in b.internal_from(bs) {
            let p = (hub, t);
            if seen.insert(p) {
                work.push(p);
            }
        }
        for &(e, t) in b.external_from(bs) {
            if !ext.contains(e) {
                continue; // an Int event: the converter's move, not ours
            }
            match na.step(hub, e) {
                Some(hub2) => {
                    let p = (hub2, t);
                    if seen.insert(p) {
                        work.push(p);
                    }
                }
                None => {
                    return Err(OkViolation {
                        hub,
                        b_state: bs,
                        event: e,
                    })
                }
            }
        }
    }
    Ok(PairSet::from_pairs(seen))
}

/// The paper's `h.ε`: the closure of `(ψ_A.ε, b0)`.
pub fn h_epsilon(na: &NormalSpec, b: &Spec, ext: &Alphabet) -> Result<PairSet, OkViolation> {
    close(na, b, ext, [(na.initial_hub(), b.initial())])
}

/// The paper's step function `φ(J, e)` for `e ∈ Int`: all pairs
/// reachable from `J` by B performing exactly one `e`, then closure.
/// Returns `Ok(empty)` when no pair of `J` can perform `e` — the
/// *vacuous* case (`r·e` is trivially safe because no trace of B matches
/// it).
pub fn phi(
    na: &NormalSpec,
    b: &Spec,
    ext: &Alphabet,
    j: &PairSet,
    e: EventId,
) -> Result<PairSet, OkViolation> {
    let stepped = j
        .iter()
        .flat_map(|(hub, bs)| b.ext_successors(bs, e).map(move |t| (hub, t)));
    close(na, b, ext, stepped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{normalize, SpecBuilder};

    /// Service over {acc, del}; B over {acc, del, m} where m is Int.
    fn setup() -> (NormalSpec, Spec, Alphabet, Alphabet) {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();

        // B: b0 --acc--> b1 --m--> b2 --del--> b0, with b1 ~> b1x (idle).
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b1x = bb.state("b1x");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.int(b1, b1x);
        bb.ext(b1x, "m", b2);
        bb.ext(b1, "m", b2);
        bb.ext(b2, "del", b0);
        let b = bb.build().unwrap();

        let ext = Alphabet::from_names(["acc", "del"]);
        let int = Alphabet::from_names(["m"]);
        (normalize(&service), b, ext, int)
    }

    #[test]
    fn h_epsilon_closes_over_ext_and_internal() {
        let (na, b, ext, _) = setup();
        let h0 = h_epsilon(&na, &b, &ext).unwrap();
        // (hub0,b0), then acc => (hub1,b1), internal => (hub1,b1x).
        assert_eq!(h0.len(), 3);
    }

    #[test]
    fn phi_steps_on_int_event() {
        let (na, b, ext, _) = setup();
        let m = EventId::new("m");
        let h0 = h_epsilon(&na, &b, &ext).unwrap();
        let h1 = phi(&na, &b, &ext, &h0, m).unwrap();
        // After m: (hub1, b2); closure adds del => (hub0, b0), then acc
        // => (hub1, b1), internal => (hub1, b1x).
        assert_eq!(h1.len(), 4);
        let b2 = b.state_by_name("b2").unwrap();
        assert!(h1.iter().any(|(_, bs)| bs == b2));
    }

    #[test]
    fn phi_vacuous_when_event_not_enabled() {
        let (na, b, ext, _) = setup();
        let other = EventId::new("unused_int_event");
        let h0 = h_epsilon(&na, &b, &ext).unwrap();
        let empty = phi(&na, &b, &ext, &h0, other).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn ok_violation_detected() {
        // B can `del` immediately, which the service forbids at u0.
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();
        let mut bb = SpecBuilder::new("Bad");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        bb.ext(b0, "del", b1);
        bb.event("acc");
        let bad = bb.build().unwrap();
        let ext = Alphabet::from_names(["acc", "del"]);
        let err = h_epsilon(&normalize(&service), &bad, &ext).unwrap_err();
        assert_eq!(err.event, EventId::new("del"));
    }

    #[test]
    fn pairset_canonicalisation() {
        let p1 = PairSet::from_pairs([(1, StateId(2)), (0, StateId(1)), (1, StateId(2))]);
        let p2 = PairSet::from_pairs([(0, StateId(1)), (1, StateId(2))]);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 2);
        assert!(p1.contains((0, StateId(1))));
        assert!(!p1.contains((9, StateId(9))));
        assert!(PairSet::empty().is_empty());
    }
}
